//! Live mode: every module on its own server thread.
//!
//! On the physical platform each instrument is driven by its own computer;
//! the engine sends commands over the network. [`LiveExecutor`] reproduces
//! that topology with threads and channels, running 5000× faster than real
//! time. Watch a plate get fetched, filled, mixed and imaged by message
//! passing between module servers.
//!
//! ```text
//! cargo run --release --example live_lab
//! ```

use sdl_lab::color::{DyeSet, MixKind};
use sdl_lab::desim::RngHub;
use sdl_lab::instruments::{ActionArgs, ActionData, ProtocolSpec, WellDispense, WellIndex};
use sdl_lab::wei::{LiveExecutor, Payload, Workcell, WorkcellConfig, Workflow, RPL_WORKCELL_YAML};

fn main() {
    let cfg = WorkcellConfig::from_yaml(RPL_WORKCELL_YAML).expect("workcell parses");
    let cell =
        Workcell::instantiate(cfg, DyeSet::cmyk(), MixKind::BeerLambert).expect("instantiates");
    // 1 simulated second = 0.2 real milliseconds.
    let exec = LiveExecutor::start(cell, RngHub::new(7), 0.0002);

    println!("module servers up; staging a plate...");
    exec.send("sciclops", "get_plate", ActionArgs::none()).expect("get_plate");
    exec.send(
        "pf400",
        "transfer",
        ActionArgs::none().with("source", "sciclops.exchange").with("target", "camera.nest"),
    )
    .expect("stage plate");
    exec.send("barty", "fill_colors", ActionArgs::none()).expect("fill reservoirs");

    // One mix-and-measure workflow, exactly as the engine would run it.
    let wf = Workflow::from_yaml(sdl_lab::core::WF_MIXCOLOR).expect("workflow parses");
    let protocol = ProtocolSpec {
        name: "combine_colors.yaml".into(),
        dispenses: vec![
            WellDispense { well: WellIndex::new(0, 0), volumes_ul: vec![7.4, 6.2, 6.4, 25.0] },
            WellDispense { well: WellIndex::new(0, 1), volumes_ul: vec![0.0, 0.0, 0.0, 36.0] },
        ],
    };
    let payload =
        Payload::with_protocol(protocol).var("nest", "camera.nest").var("deck", "ot2.deck");
    let (log, data) = exec.run_workflow(&wf, &payload).expect("workflow runs");

    println!("{}", log.render());
    for (step, d) in &data {
        if let ActionData::Image(img) = d {
            println!("{step}: captured a {}x{} frame", img.width(), img.height());
            let reading = sdl_lab::vision::Detector::default().detect(img).expect("pipeline");
            let a1 = reading.well(0, 0).expect("A1 read");
            println!(
                "  A1 (calibration recipe) measured {} — target {}",
                a1.color,
                sdl_lab::color::Rgb8::PAPER_TARGET
            );
        }
    }
    exec.shutdown();
    println!("module servers stopped.");
}
