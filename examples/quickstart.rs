//! Quickstart: run one small closed-loop color-matching experiment on the
//! simulated RPL workcell and inspect the results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sdl_lab::prelude::*;

fn main() {
    // 32 samples in batches of 4, everything else as in the paper
    // (target RGB (120,120,120), genetic solver, Beer–Lambert chemistry).
    let config = AppConfig {
        sample_budget: 32,
        batch: 4,
        match_threshold: Some(8.0), // stop early if we get this close
        ..AppConfig::default()
    };

    let mut app = ColorPickerApp::new(config).expect("workcell instantiates");
    let outcome: ExperimentOutcome = app.run().expect("experiment completes");

    println!("experiment:  {}", outcome.experiment_id);
    println!("termination: {}", outcome.termination);
    println!("samples:     {}", outcome.samples_measured);
    println!("virtual time: {} (wall time: milliseconds)", outcome.duration);
    println!("best score:  {:.2} at ratios {:?}", outcome.best_score, outcome.best_ratios);
    println!();
    println!("{}", outcome.metrics.render_table1());

    // Every sample was published to the in-process ACDC portal.
    println!("{}", outcome.portal.summary_view(&outcome.experiment_id));

    // The trajectory is the raw material of the paper's Figure 4.
    println!("best-so-far trajectory:");
    for p in outcome.trajectory.iter().filter(|p| p.sample % 4 == 0 || p.sample == 1) {
        println!(
            "  sample {:>3}  t = {:>6.1} min  best = {:>6.2}",
            p.sample, p.elapsed_min, p.best
        );
    }
}
