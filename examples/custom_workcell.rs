//! Portability: the same application on a different workcell.
//!
//! The WEI architecture's central claim (§2.2) is that workflows "can be
//! retargeted to different modules and workcells that provide comparable
//! capabilities". This example defines a workcell with entirely different
//! module names, slot names, tower inventory and camera optics — and runs
//! the unmodified color-picker application on it.
//!
//! ```text
//! cargo run --release --example custom_workcell
//! ```

use sdl_lab::core::{AppConfig, ColorPickerApp};

/// A hypothetical teaching lab: one tower, a slower cheap webcam with more
/// noise, smaller reservoirs (more replenish cycles).
const TEACHING_CELL: &str = r#"
name: teaching_cell
modules:
  - name: plate_hotel
    type: plate_crane
    config:
      towers: [6]
      exchange: hotel.out
  - name: ur5e
    type: manipulator
  - name: pipettor
    type: liquid_handler
    config:
      deck: pipettor.tray
      reservoir_capacity_ul: 3000
      tips: 480
  - name: pumpbot
    type: liquid_replenisher
    config:
      feeds: pipettor
      stock_ul: 500000
  - name: webcam
    type: camera
    config:
      nest: webcam.stage
      noise_sigma: 0.009
      vignette: 0.12
"#;

fn main() {
    let config = AppConfig {
        sample_budget: 24,
        batch: 4,
        workcell_yaml: TEACHING_CELL.to_string(),
        publish_images: false,
        ..AppConfig::default()
    };

    // The application discovers modules by *kind*, retargets the four
    // cp_wf_* workflows onto the local names, and runs unchanged.
    let outcome = ColorPickerApp::new(config)
        .expect("teaching cell instantiates")
        .run()
        .expect("experiment completes");

    println!("workcell:    teaching_cell (plate_hotel/ur5e/pipettor/pumpbot/webcam)");
    println!("termination: {}", outcome.termination);
    println!("best score:  {:.2}", outcome.best_score);
    println!("plates used: {}", outcome.plates_used);
    println!();
    println!("{}", outcome.metrics.render_table1());
    println!("note the noisier webcam: the score floor is higher than on the RPL cell.");
}
