//! Failure injection and the CCWH resiliency metric.
//!
//! "In our experience, most failures occur during reception and processing
//! of commands, making CCWH a good measure of the resiliency of the SDL's
//! communications" (§4). This example injects command faults on one flaky
//! module and shows retries, simulated human interventions, and the effect
//! on TWH/CCWH.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use sdl_lab::core::{run_one, AppConfig};
use sdl_lab::desim::{FaultPlan, FaultRates};

fn main() {
    println!(
        "{:<28} {:>6} {:>12} {:>8} {:>8} {:>12}",
        "scenario", "CCWH", "TWH", "faults", "humans", "duration"
    );
    for (label, plan) in [
        ("healthy lab", FaultPlan::none()),
        (
            "flaky ot2 (10% rx, 5% act)",
            FaultPlan::none().with_module("ot2", FaultRates::new(0.10, 0.05)),
        ),
        ("everything 2% flaky", FaultPlan::uniform(FaultRates::new(0.02, 0.01))),
    ] {
        let config = AppConfig {
            sample_budget: 48,
            batch: 1,
            faults: plan,
            publish_images: false,
            ..AppConfig::default()
        };
        let out = run_one(config).expect("run completes despite faults");
        println!(
            "{:<28} {:>6} {:>12} {:>8} {:>8} {:>12}",
            label,
            out.metrics.ccwh,
            out.metrics.twh.to_string(),
            out.counters.reception_faults + out.counters.action_faults,
            out.counters.human_interventions,
            out.duration.to_string(),
        );
    }
    println!("\nretries absorb most faults (time cost only); repeated faults on one");
    println!("command summon the simulated operator, resetting the CCWH streak.");
}
