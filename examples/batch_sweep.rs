//! Batch-size sweep — a scaled-down Figure 4.
//!
//! Runs the color picker at several batch sizes in parallel (one simulated
//! lab per thread) and prints the time/quality trade-off the paper reports:
//! "experiments with smaller batch sizes achieve lower scores, but take
//! longer to run."
//!
//! ```text
//! cargo run --release --example batch_sweep
//! ```

use sdl_lab::core::{batch_sweep, run_sweep, AppConfig};

fn main() {
    let base = AppConfig {
        sample_budget: 64,
        publish_images: false,
        ..AppConfig::default()
    };
    let batches = [1u32, 4, 16, 64];
    println!("running {} experiments of {} samples each...", batches.len(), base.sample_budget);

    let results = run_sweep(batch_sweep(&base, &batches));

    println!("\n{:<6} {:>12} {:>12} {:>10} {:>8}", "batch", "duration", "min/color", "best", "plates");
    for (label, result) in results {
        let out = result.expect("sweep member succeeds");
        println!(
            "{:<6} {:>12} {:>12.2} {:>10.2} {:>8}",
            label,
            out.duration.to_string(),
            out.duration.as_minutes() / out.samples_measured as f64,
            out.best_score,
            out.plates_used,
        );
    }
    println!("\nsmaller batches: more feedback per sample, better color, much longer runs.");
}
