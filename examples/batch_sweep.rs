//! Batch-size sweep — a scaled-down Figure 4 on the campaign engine.
//!
//! Runs the color picker at several batch sizes in parallel (one simulated
//! lab per worker thread) and prints the time/quality trade-off the paper
//! reports: "experiments with smaller batch sizes achieve lower scores,
//! but take longer to run."
//!
//! ```text
//! cargo run --release --example batch_sweep
//! ```

use sdl_lab::core::{batch_sweep, AppConfig, CampaignRunner};

fn main() {
    let base = AppConfig { sample_budget: 64, publish_images: false, ..AppConfig::default() };
    let batches = [1u32, 4, 16, 64];
    println!("running {} experiments of {} samples each...", batches.len(), base.sample_budget);

    let report = CampaignRunner::new().run(batch_sweep(&base, &batches));

    println!(
        "\n{:<6} {:>12} {:>12} {:>10} {:>8}",
        "batch", "duration", "min/color", "best", "plates"
    );
    for result in &report.results {
        let out = result.expect_single();
        println!(
            "{:<6} {:>12} {:>12.2} {:>10.2} {:>8}",
            result.label(),
            out.duration.to_string(),
            out.duration.as_minutes() / out.samples_measured as f64,
            out.best_score,
            out.plates_used,
        );
    }
    println!("\nsmaller batches: more feedback per sample, better color, much longer runs.");
}
