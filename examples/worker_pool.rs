//! Distributed campaign over a worker pool, with graceful degradation:
//! fan one campaign across several `sdl-lab serve` processes, kill one
//! mid-flight, and show the merged result is still bit-identical to the
//! single-process run.
//!
//! ```text
//! cargo build --release
//! cargo run --release --example worker_pool
//! ```
//!
//! The scheduler shards the scenario matrix across the pool with work
//! stealing; when a worker dies its queued and in-flight scenarios re-enter
//! the shared retry lane and the survivors absorb them. Killed workers
//! degrade throughput, never correctness.

use sdl_lab::prelude::*;
use std::io::BufRead as _;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// One spawned `sdl-lab serve` worker, killed on drop.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn(bin: &std::path::Path) -> Result<Worker, String> {
        let mut child = Command::new(bin)
            .args(["serve", "--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn sdl-lab serve: {e}"))?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut banner = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut banner)
            .map_err(|e| format!("read serve banner: {e}"))?;
        let addr = banner
            .trim()
            .strip_prefix("serving on http://")
            .ok_or_else(|| format!("unexpected banner: {banner:?}"))?
            .to_string();
        Ok(Worker { child, addr })
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn scenarios() -> Vec<ScenarioSpec> {
    let config =
        AppConfig { sample_budget: 12, batch: 4, publish_images: false, ..AppConfig::default() };
    [SolverKind::Genetic, SolverKind::Random, SolverKind::Bayesian]
        .into_iter()
        .flat_map(|solver| {
            let config = config.clone();
            (0..3).map(move |i| {
                let mut c = config.clone();
                c.solver = solver;
                c.seed = 40 + i;
                ScenarioSpec::new(format!("{}/s{}", solver.name(), c.seed), c)
            })
        })
        .collect()
}

fn main() -> Result<(), String> {
    // target/release/examples/worker_pool → target/release/sdl-lab
    let bin = std::env::current_exe()
        .ok()
        .and_then(|p| Some(p.parent()?.parent()?.join("sdl-lab")))
        .filter(|p| p.exists())
        .ok_or("sdl-lab binary not found next to this example — run `cargo build --release`")?;

    // The single-process golden run every distributed merge must match.
    let golden = CampaignRunner::new().run(scenarios());
    println!("golden: {} scenarios, single process", golden.len());

    let mut workers = (0..3).map(|_| Worker::spawn(&bin)).collect::<Result<Vec<_>, _>>()?;
    let urls: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    println!("worker pool: {}", urls.join(", "));

    // Fail over quickly so the kill below is absorbed without long stalls.
    let scheduler =
        CampaignScheduler::new(urls).shard_size(1).retry(RetryPolicy::failover()).probe_budget(2);

    // Kill one worker shortly after the campaign starts fanning out.
    let doomed = workers.remove(2);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        println!("killing worker {} mid-campaign", doomed.addr);
        drop(doomed);
    });

    let (report, sched) = scheduler.run(scenarios());
    killer.join().expect("killer thread");

    for line in sched.summary_lines() {
        println!("{line}");
    }
    assert_eq!(
        golden.fingerprint(),
        report.fingerprint(),
        "distributed merge must be bit-identical to the single-process run"
    );
    println!(
        "bit-identical merge across {} scenarios despite {} eviction(s) ✓",
        report.len(),
        sched.total_evictions()
    );
    Ok(())
}
