//! Solver shootout — §2.5's claim in miniature.
//!
//! The paper implemented a Bayesian optimizer alongside the genetic solver
//! but found it "does not yield a systematic improvement". This example
//! races all five decision procedures (including the analytic oracle and
//! the random floor) on identical budgets and seeds.
//!
//! ```text
//! cargo run --release --example solver_shootout
//! ```

use sdl_lab::core::{run_sweep, solver_sweep, AppConfig};
use sdl_lab::solvers::SolverKind;

fn main() {
    let base = AppConfig {
        sample_budget: 48,
        batch: 4,
        publish_images: false,
        ..AppConfig::default()
    };
    let solvers = SolverKind::all();
    let seeds = [11u64, 22, 33];
    println!(
        "racing {} solvers x {} seeds (N={}, B={})...",
        solvers.len(),
        seeds.len(),
        base.sample_budget,
        base.batch
    );
    let results = run_sweep(solver_sweep(&base, &solvers, &seeds));

    println!("\n{:<22} {:>10} {:>14}", "solver/seed", "best", "sample@best");
    for (label, result) in &results {
        let out = result.as_ref().expect("run succeeds");
        let best_at = out
            .trajectory
            .iter()
            .find(|p| p.best == out.best_score)
            .map(|p| p.sample)
            .unwrap_or(0);
        println!("{label:<22} {:>10.2} {:>14}", out.best_score, best_at);
    }

    println!("\nper-solver mean best:");
    for solver in solvers {
        let scores: Vec<f64> = results
            .iter()
            .filter(|(l, _)| l.starts_with(solver.name()))
            .map(|(_, r)| r.as_ref().unwrap().best_score)
            .collect();
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        println!("  {:<10} {:>7.2}", solver.name(), mean);
    }
    println!("\nexpect: analytic < genetic ≈ bayesian < random.");
}
