//! Solver shootout — §2.5's claim in miniature, as one campaign.
//!
//! The paper implemented a Bayesian optimizer alongside the genetic solver
//! but found it "does not yield a systematic improvement". This example
//! races all six decision procedures (including the analytic oracle and
//! the random floor) on identical budgets and seeds.
//!
//! ```text
//! cargo run --release --example solver_shootout
//! ```

use sdl_lab::core::{solver_sweep, AppConfig, CampaignRunner};
use sdl_lab::solvers::SolverKind;

fn main() {
    let base =
        AppConfig { sample_budget: 48, batch: 4, publish_images: false, ..AppConfig::default() };
    let solvers = SolverKind::all();
    let seeds = [11u64, 22, 33];
    println!(
        "racing {} solvers x {} seeds (N={}, B={})...",
        solvers.len(),
        seeds.len(),
        base.sample_budget,
        base.batch
    );
    let report = CampaignRunner::new().run(solver_sweep(&base, &solvers, &seeds));

    println!("\n{:<22} {:>10} {:>14}", "solver/seed", "best", "sample@best");
    for result in &report.results {
        let out = result.expect_single();
        let best_at =
            out.trajectory.iter().find(|p| p.best == out.best_score).map(|p| p.sample).unwrap_or(0);
        println!("{:<22} {:>10.2} {:>14}", result.label(), out.best_score, best_at);
    }

    println!("\nper-solver mean best:");
    for solver in solvers {
        let scores = report.best_scores_with_prefix(solver.name());
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        println!("  {:<10} {:>7.2}", solver.name(), mean);
    }
    println!("\nexpect: analytic < genetic ≈ bayesian < random.");
}
