//! Solver shootout — §2.5's claim in miniature, now as a stress suite.
//!
//! The paper implemented a Bayesian optimizer alongside the genetic solver
//! but found it "does not yield a systematic improvement". This example
//! races the search strategies on identical budgets and seeds — not just
//! on the clean RGB objective, but across the full stress matrix:
//! perceptual objectives (CIEDE2000, CAM16-UCS) crossed with camera
//! drift, multi-target and moving-target conditions. The leaderboard
//! ranks solvers within each cell, where every solver faced identical
//! conditions, so no single easy cell can carry a solver.
//!
//! ```text
//! cargo run --release --example solver_shootout
//! ```
//!
//! The same matrix is available from the CLI as `sdl-lab stress`.

use sdl_lab::core::{AppConfig, CampaignRunner, Leaderboard, StressSuite};

fn main() {
    let base =
        AppConfig { sample_budget: 48, batch: 4, publish_images: false, ..AppConfig::default() };
    let suite = StressSuite::new(base);
    println!(
        "racing {} solvers x {} objectives x {} conditions x {} seeds (N={}, B={})...",
        suite.solvers.len(),
        suite.objectives.len(),
        suite.kinds.len(),
        suite.seeds.len(),
        suite.base.sample_budget,
        suite.base.batch
    );
    let report = CampaignRunner::new().run(suite.scenarios());

    let board = Leaderboard::from_report(&report);
    println!("\n{}", board.render_table());

    // The per-cell detail behind the ranks: each solver's best score per
    // (objective, condition) pair, averaged over seeds and normalized by
    // the objective's scale so the columns are comparable.
    println!("\nmean normalized best per condition:");
    print!("{:<12}", "solver");
    for kind in &suite.kinds {
        print!(" {:>13}", kind.name());
    }
    println!();
    for &solver in &suite.solvers {
        print!("{:<12}", solver.name());
        for &kind in &suite.kinds {
            let mut scores = Vec::new();
            for &objective in &suite.objectives {
                for &seed in &suite.seeds {
                    let label = format!(
                        "stress/{}/{}/{}/s{seed}",
                        objective.name(),
                        kind.name(),
                        solver.name()
                    );
                    if let Some(result) = report.by_label(&label) {
                        if let Ok(out) = &result.outcome {
                            scores.push(out.best_score() / objective.scale());
                        }
                    }
                }
            }
            let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
            print!(" {:>13.2}", mean);
        }
        println!();
    }
    println!("\nexpect: genetic ≈ bayesian ahead of annealing and random overall, with");
    println!("the gap narrowing under drift (noisy scores) and moving targets (stale");
    println!("early observations).");
}
