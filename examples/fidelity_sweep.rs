//! Fidelity sweep — the camera's cost/accuracy axis as one scenario matrix.
//!
//! DriveNetBench-style camera benchmarks make resolution a *configurable*
//! axis so a sweep stays affordable; this example does the same for the
//! simulated rig. One declarative campaign races the three camera
//! fidelity profiles (the frozen `full` reference renderer, the
//! counter-based `fast` default, and quarter-resolution `lowres`) over a
//! seed axis, then reports what each profile costs in wall-clock time and
//! what it pays in solver-visible accuracy.
//!
//! ```text
//! cargo run --release --example fidelity_sweep
//! ```

use sdl_lab::core::{CampaignConfig, CampaignRunner};
use sdl_lab::vision::Fidelity;
use std::time::Instant;

/// The same declarative document `sdl-lab campaign --config` would take:
/// a `fidelities:` axis over a small genetic-solver base config.
const MATRIX: &str = "\
name: fidelity-sweep
samples: 32
batch: 4
solver: genetic
seed: 7
seeds: 3
fidelities: [full, fast, lowres]
publish_images: false
";

fn main() {
    let config = CampaignConfig::from_yaml(MATRIX).expect("matrix parses");
    let scenarios = config.scenarios();
    println!("running {} scenarios (3 fidelity profiles x 3 seeds)...\n", scenarios.len());

    let mut rows = Vec::new();
    for profile in Fidelity::ALL {
        let subset: Vec<_> =
            scenarios.iter().filter(|s| s.config.fidelity == profile).cloned().collect();
        let n = subset.len();
        let t = Instant::now();
        let report = CampaignRunner::new().threads(1).run(subset);
        let wall = t.elapsed().as_secs_f64();
        let scores: Vec<f64> =
            report.results.iter().map(|r| r.expect_outcome().best_score()).collect();
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        rows.push((profile, wall, n, mean));
    }

    println!("{:<8} {:>12} {:>16} {:>12}", "profile", "wall (s)", "samples/s", "mean best");
    let full_wall = rows[0].1;
    for (profile, wall, n, mean) in &rows {
        println!(
            "{:<8} {:>12.2} {:>16.1} {:>12.2}   ({:.1}x vs full)",
            profile.name(),
            wall,
            (*n as f64 * 32.0) / wall,
            mean,
            full_wall / wall
        );
    }
    println!(
        "\nSame seeds, same solver, same chemistry — only the camera changed. \
         The fast profile keeps full-resolution accuracy; lowres trades a little \
         accuracy for another big step in throughput."
    );
}
