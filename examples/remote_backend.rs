//! Two-process lab execution: serve a simulated lab with `sdl-lab serve`
//! and drive it from this (second) process over HTTP.
//!
//! ```text
//! cargo build --release
//! cargo run --release --example remote_backend
//! ```
//!
//! The example spawns the real `sdl-lab` binary in worker mode (an empty
//! portal whose `POST /v1/*` routes host simulated labs), then runs the
//! same experiment twice — once on the in-process `SimBackend`, once on a
//! `RemoteBackend` speaking to the worker — and shows the results are
//! bit-identical. Point `SDL_LAB_WORKER` at an already-running
//! `sdl-lab serve` address to skip the spawn and drive that instead.

use sdl_lab::prelude::*;
use std::io::BufRead as _;
use std::process::{Child, Command, Stdio};

/// The spawned worker, killed on drop.
struct Worker {
    child: Option<Child>,
    addr: String,
}

impl Drop for Worker {
    fn drop(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Find a worker: `$SDL_LAB_WORKER`, or spawn the sibling `sdl-lab` binary
/// in worker mode on an ephemeral port.
fn worker() -> Result<Worker, String> {
    if let Ok(addr) = std::env::var("SDL_LAB_WORKER") {
        return Ok(Worker { child: None, addr });
    }
    // target/release/examples/remote_backend → target/release/sdl-lab
    let bin = std::env::current_exe()
        .ok()
        .and_then(|p| Some(p.parent()?.parent()?.join("sdl-lab")))
        .filter(|p| p.exists())
        .ok_or(
            "sdl-lab binary not found next to this example — run `cargo build --release` \
                first, or set SDL_LAB_WORKER=host:port",
        )?;
    let mut child = Command::new(bin)
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn sdl-lab serve: {e}"))?;
    // The worker prints `serving on http://ADDR` once bound.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut banner = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut banner)
        .map_err(|e| format!("read serve banner: {e}"))?;
    let addr = banner
        .trim()
        .strip_prefix("serving on http://")
        .ok_or_else(|| format!("unexpected banner: {banner:?}"))?
        .to_string();
    Ok(Worker { child: Some(child), addr })
}

fn main() -> Result<(), String> {
    let worker = worker()?;
    println!("lab worker at {}", worker.addr);

    let config = AppConfig {
        sample_budget: 16,
        batch: 4,
        solver: SolverKind::Genetic,
        publish_images: false,
        ..AppConfig::default()
    };

    // Local execution: session + in-process simulated workcell.
    let mut local_session = Experiment::new(config.clone()).map_err(|e| e.to_string())?;
    let mut local_lab = SimBackend::new(&config).map_err(|e| e.to_string())?;
    let local = local_session.run_on(&mut local_lab).map_err(|e| e.to_string())?;

    // Remote execution: same session logic, batches farmed out over HTTP.
    let mut remote_session = Experiment::new(config.clone()).map_err(|e| e.to_string())?;
    let mut remote_lab = RemoteBackend::new(&worker.addr, config);
    let remote = remote_session.run_on(&mut remote_lab).map_err(|e| e.to_string())?;

    println!(
        "local  ({}): best {:.3} in {}",
        local.samples_measured, local.best_score, local.duration
    );
    println!(
        "remote ({}): best {:.3} in {}",
        remote.samples_measured, remote.best_score, remote.duration
    );
    assert_eq!(
        local.best_score.to_bits(),
        remote.best_score.to_bits(),
        "remote execution must be bit-identical"
    );
    assert_eq!(local.duration, remote.duration);
    assert_eq!(local.metrics, remote.metrics, "full Table-1 telemetry survives the wire");
    println!("bit-identical across process boundaries ✓");
    Ok(())
}
