//! A deterministic time-ordered event queue.
//!
//! Events scheduled for the same instant fire in insertion order (FIFO),
//! which keeps simulations reproducible regardless of how ties arise.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of `(SimTime, payload)` with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Construct a new instance.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `payload` at `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(30), "late");
        q.push(SimTime::from_secs(10), "early");
        q.push(SimTime::from_secs(20), "mid");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["early", "mid", "late"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
