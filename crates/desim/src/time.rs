//! Virtual time for the simulation kernel.
//!
//! Simulated time is tracked as an integer number of microseconds so that
//! event ordering is exact and runs are bit-for-bit reproducible. Durations
//! and instants are distinct types to keep the arithmetic honest.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, measured from the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

impl SimTime {
    /// The instant the simulation starts at.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Minutes since simulation start as a float (the unit of Figure 4's x-axis).
    pub fn as_minutes(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero value.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds; negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Minutes as a float.
    pub fn as_minutes(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// True for the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor (used for timing jitter).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

fn fmt_hms(us: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let total_secs = us / MICROS_PER_SEC;
    let h = total_secs / 3600;
    let m = (total_secs % 3600) / 60;
    let s = total_secs % 60;
    if h > 0 {
        write!(f, "{h}h {m:02}m {s:02}s")
    } else if m > 0 {
        write!(f, "{m}m {s:02}s")
    } else {
        let frac = us % MICROS_PER_SEC;
        if frac == 0 {
            write!(f, "{s}s")
        } else {
            write!(f, "{:.3}s", us as f64 / MICROS_PER_SEC as f64)
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_hms(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_hms(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_secs(90);
        assert_eq!(t.as_secs_f64(), 90.0);
        assert_eq!(t.as_minutes(), 1.5);
        let d = t - SimTime::from_secs(30);
        assert_eq!(d, SimDuration::from_secs(60));
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(20);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(8 * 3600 + 12 * 60).to_string(), "8h 12m 00s");
        assert_eq!(SimDuration::from_secs(65).to_string(), "1m 05s");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration::from_millis(1500));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 2, SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
