//! Fault injection for reliability experiments.
//!
//! The paper observes that "most failures occur during reception and
//! processing of commands", and proposes commands-completed-without-humans
//! (CCWH) as a resiliency metric. A [`FaultPlan`] decides, per dispatched
//! command, whether the command is dropped at reception, fails mid-action,
//! or succeeds — with independent per-module rates so experiments can model
//! one flaky instrument.

use rand::Rng;
use std::collections::HashMap;

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The module never acknowledged the command (the paper's dominant mode).
    ReceptionDropped,
    /// The module started the action but reported failure.
    ActionFailed,
}

/// Per-module failure probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a command is dropped at reception.
    pub reception: f64,
    /// Probability an accepted command fails during execution.
    pub action: f64,
}

impl FaultRates {
    /// Never fault.
    pub const NONE: FaultRates = FaultRates { reception: 0.0, action: 0.0 };

    /// Rates for reception drops and mid-action failures (each 0–1).
    pub fn new(reception: f64, action: f64) -> Self {
        assert!((0.0..=1.0).contains(&reception) && (0.0..=1.0).contains(&action));
        FaultRates { reception, action }
    }
}

/// A plan mapping module names to fault rates, with a default for modules
/// not explicitly listed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    default: Option<FaultRates>,
    per_module: HashMap<String, FaultRates>,
}

impl FaultPlan {
    /// A plan that never injects faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan applying `rates` to every module.
    pub fn uniform(rates: FaultRates) -> Self {
        FaultPlan { default: Some(rates), per_module: HashMap::new() }
    }

    /// Override the rates for one module.
    pub fn with_module(mut self, module: impl Into<String>, rates: FaultRates) -> Self {
        self.per_module.insert(module.into(), rates);
        self
    }

    /// Rates in effect for `module`.
    pub fn rates_for(&self, module: &str) -> FaultRates {
        self.per_module.get(module).copied().or(self.default).unwrap_or(FaultRates::NONE)
    }

    /// Draw the fate of one command dispatched to `module`.
    pub fn draw(&self, module: &str, rng: &mut impl Rng) -> Option<FaultKind> {
        let rates = self.rates_for(module);
        if rates.reception > 0.0 && rng.gen::<f64>() < rates.reception {
            return Some(FaultKind::ReceptionDropped);
        }
        if rates.action > 0.0 && rng.gen::<f64>() < rates.action {
            return Some(FaultKind::ActionFailed);
        }
        None
    }

    /// True if the plan can never produce a fault.
    pub fn is_null(&self) -> bool {
        self.default.is_none_or(|r| r.reception == 0.0 && r.action == 0.0)
            && self.per_module.values().all(|r| r.reception == 0.0 && r.action == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn null_plan_never_faults() {
        let plan = FaultPlan::none();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(plan.is_null());
        for _ in 0..1000 {
            assert_eq!(plan.draw("ot2", &mut rng), None);
        }
    }

    #[test]
    fn uniform_rates_apply_to_all_modules() {
        let plan = FaultPlan::uniform(FaultRates::new(1.0, 0.0));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(plan.draw("pf400", &mut rng), Some(FaultKind::ReceptionDropped));
        assert_eq!(plan.draw("camera", &mut rng), Some(FaultKind::ReceptionDropped));
        assert!(!plan.is_null());
    }

    #[test]
    fn per_module_override_wins() {
        let plan =
            FaultPlan::uniform(FaultRates::NONE).with_module("ot2", FaultRates::new(0.0, 1.0));
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(plan.draw("pf400", &mut rng), None);
        assert_eq!(plan.draw("ot2", &mut rng), Some(FaultKind::ActionFailed));
    }

    #[test]
    fn rates_are_statistically_respected() {
        let plan = FaultPlan::uniform(FaultRates::new(0.2, 0.0));
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let faults = (0..n).filter(|_| plan.draw("m", &mut rng).is_some()).count();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn rejects_invalid_probability() {
        let r = std::panic::catch_unwind(|| FaultRates::new(1.5, 0.0));
        assert!(r.is_err());
    }
}
