//! Chronological trace of simulation activity.
//!
//! The trace is the simulator's equivalent of the paper's per-workflow log
//! files ("a file is created that details the step names run, their start
//! time, end time and total duration"): every scheduler decision and every
//! user-emitted event, timestamped on the virtual clock.

use crate::time::SimTime;
use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A process was started.
    ProcStart,
    /// A process finished.
    ProcEnd,
    /// A process began a timed hold; detail is the duration.
    Hold,
    /// A process requested a resource; detail is the resource name.
    Acquire,
    /// A resource unit was granted; detail is the resource name.
    Grant,
    /// A resource unit was returned; detail is the resource name.
    Release,
    /// A user event; the payload names the event class.
    User(String),
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::ProcStart => write!(f, "start"),
            TraceKind::ProcEnd => write!(f, "end"),
            TraceKind::Hold => write!(f, "hold"),
            TraceKind::Acquire => write!(f, "acquire"),
            TraceKind::Grant => write!(f, "grant"),
            TraceKind::Release => write!(f, "release"),
            TraceKind::User(k) => write!(f, "{k}"),
        }
    }
}

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// Which process emitted it.
    pub process: String,
    /// What kind of event.
    pub kind: TraceKind,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.detail.is_empty() {
            write!(f, "[{}] {} {}", self.at, self.process, self.kind)
        } else {
            write!(f, "[{}] {} {}: {}", self.at, self.process, self.kind, self.detail)
        }
    }
}

/// Append-only event log, ordered by emission (and therefore by time).
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Construct a new instance.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Append an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events emitted by a given process.
    pub fn by_process<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.process == name)
    }

    /// User events of a given class.
    pub fn user_events<'a>(&'a self, class: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| matches!(&e.kind, TraceKind::User(k) if k == class))
    }

    /// Render the whole trace, one event per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_s: u64, process: &str, kind: TraceKind, detail: &str) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_secs(at_s),
            process: process.into(),
            kind,
            detail: detail.into(),
        }
    }

    #[test]
    fn filters_by_process_and_class() {
        let mut t = Trace::new();
        t.push(ev(0, "a", TraceKind::ProcStart, ""));
        t.push(ev(1, "a", TraceKind::User("mix".into()), "well A1"));
        t.push(ev(2, "b", TraceKind::User("mix".into()), "well A2"));
        t.push(ev(3, "a", TraceKind::User("image".into()), "plate"));
        assert_eq!(t.by_process("a").count(), 3);
        assert_eq!(t.user_events("mix").count(), 2);
        assert_eq!(t.user_events("image").count(), 1);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::new();
        t.push(ev(0, "p", TraceKind::ProcStart, ""));
        t.push(ev(5, "p", TraceKind::Hold, "5s"));
        let r = t.render();
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains("[5s] p hold: 5s"));
    }
}
