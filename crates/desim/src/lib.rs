//! `sdl-desim` — deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate that lets the color-picker benchmark replay
//! the paper's eight-hour robotic runs in milliseconds of wall time:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond virtual time;
//! * [`EventQueue`] — a time-ordered queue with FIFO tie-breaking;
//! * [`Simulation`] / [`ProcCtx`] — a *process executive*: workflows are
//!   imperative closures on coordinated threads that `hold` virtual time and
//!   `acquire`/`release` shared resources (the robot arm, instrument decks);
//! * [`RngHub`] — named deterministic RNG streams, so every stochastic
//!   component is reproducible and independent of event interleaving;
//! * [`FaultPlan`] — per-module command-fault injection for the CCWH
//!   reliability experiments.
//!
//! # Example
//!
//! ```
//! use sdl_desim::{RngHub, SimDuration, Simulation};
//!
//! let mut sim = Simulation::new(RngHub::new(1));
//! let arm = sim.resource("pf400", 1);
//! for i in 0..2 {
//!     sim.process(format!("flow-{i}"), move |ctx| {
//!         ctx.acquire(arm);
//!         ctx.hold(SimDuration::from_secs(30));
//!         ctx.release(arm);
//!     });
//! }
//! let outcome = sim.run().unwrap();
//! assert_eq!(outcome.end, sdl_desim::SimTime::from_secs(60));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod fault;
mod queue;
mod rng;
mod time;
mod trace;

pub use exec::{ProcCtx, ProcId, ResourceId, SimError, SimOutcome, Simulation};
pub use fault::{FaultKind, FaultPlan, FaultRates};
pub use queue::EventQueue;
pub use rng::RngHub;
pub use time::{SimDuration, SimTime, MICROS_PER_SEC};
pub use trace::{Trace, TraceEvent, TraceKind};
