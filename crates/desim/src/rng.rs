//! Deterministic, named random-number streams.
//!
//! Every stochastic component of the simulator (timing jitter, sensor noise,
//! solver randomness, fault draws) pulls from its own named stream derived
//! from a single master seed. Streams are independent of event interleaving,
//! so adding a consumer of one stream never perturbs another — a property the
//! reproducibility integration tests rely on.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a hash of a byte string; stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer; decorrelates seeds that differ in few bits.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Factory for named deterministic RNG streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngHub {
    master_seed: u64,
}

impl RngHub {
    /// A hub deriving all streams from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        RngHub { master_seed }
    }

    /// The master seed this hub derives streams from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The RNG for a named stream. Calling twice with the same name yields
    /// identical generators.
    pub fn stream(&self, name: &str) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.master_seed ^ fnv1a(name.as_bytes())))
    }

    /// A numbered sub-stream, e.g. one per iteration or per module instance.
    pub fn substream(&self, name: &str, index: u64) -> StdRng {
        let mixed = splitmix64(self.master_seed ^ fnv1a(name.as_bytes())).wrapping_add(splitmix64(
            index.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd6e8_feb8_6659_fd93,
        ));
        StdRng::seed_from_u64(splitmix64(mixed))
    }

    /// Derive a child hub (e.g. one per experiment in a sweep).
    pub fn child(&self, name: &str, index: u64) -> RngHub {
        let mixed = splitmix64(self.master_seed ^ fnv1a(name.as_bytes()))
            ^ splitmix64(index ^ 0xa076_1d64_78bd_642f);
        RngHub::new(splitmix64(mixed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_name_same_stream() {
        let hub = RngHub::new(42);
        let a: Vec<u32> =
            hub.stream("ot2.jitter").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> =
            hub.stream("ot2.jitter").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let hub = RngHub::new(42);
        let a: u64 = hub.stream("alpha").gen();
        let b: u64 = hub.stream("beta").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngHub::new(1).stream("s").gen();
        let b: u64 = RngHub::new(2).stream("s").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn substreams_are_independent() {
        let hub = RngHub::new(7);
        let a: u64 = hub.substream("iter", 0).gen();
        let b: u64 = hub.substream("iter", 1).gen();
        let a2: u64 = hub.substream("iter", 0).gen();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn child_hubs_are_deterministic() {
        let hub = RngHub::new(99);
        let c1 = hub.child("experiment", 3);
        let c2 = hub.child("experiment", 3);
        let c3 = hub.child("experiment", 4);
        assert_eq!(c1.master_seed(), c2.master_seed());
        assert_ne!(c1.master_seed(), c3.master_seed());
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(super::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
