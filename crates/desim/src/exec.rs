//! Deterministic process executive.
//!
//! Simulation *processes* are ordinary imperative closures that run on their
//! own OS threads but never execute concurrently: a central coordinator wakes
//! exactly one process at a time and advances the virtual clock between
//! wakes. Processes block on [`ProcCtx::hold`] (let simulated time pass) and
//! [`ProcCtx::acquire`] (wait for a shared resource such as a robot arm), so
//! workcell workflows read as straight-line code while the kernel still
//! models real concurrency — two workflows contending for the `pf400` arm
//! queue exactly as they would on the physical rail.
//!
//! Determinism: wake events are ordered by `(time, sequence)`, resource
//! queues are FIFO, and only one process runs at any real instant, so a run
//! is a pure function of the master seed and the scheduled work.

use crate::queue::EventQueue;
use crate::rng::RngHub;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent, TraceKind};
use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Identifier of a spawned process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(usize);

/// Handle to a declared resource (capacity-limited, FIFO-granted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

type ProcFn = Box<dyn FnOnce(&mut ProcCtx) + Send + 'static>;

enum Request {
    /// Blocking: sleep for a duration of virtual time.
    Hold { proc: ProcId, dur: SimDuration },
    /// Blocking: wait for one unit of the resource.
    Acquire { proc: ProcId, res: ResourceId },
    /// Non-blocking: return one unit of the resource.
    Release { proc: ProcId, res: ResourceId },
    /// Non-blocking: start a new process at the current instant.
    Spawn { name: String, f: ProcFn },
    /// Non-blocking: record a user trace event.
    Trace { proc: ProcId, kind: TraceKind, detail: String },
    /// Blocking (terminal): the process body returned or panicked.
    Finished { proc: ProcId, panicked: bool },
}

/// Per-process context handed to each process closure.
pub struct ProcCtx {
    id: ProcId,
    name: String,
    now: SimTime,
    tx: Sender<Request>,
    wake_rx: Receiver<SimTime>,
    hub: RngHub,
}

impl ProcCtx {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's name (for logs and traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulation's RNG hub; derive named streams from it.
    pub fn hub(&self) -> RngHub {
        self.hub
    }

    /// Let `dur` of virtual time pass.
    pub fn hold(&mut self, dur: SimDuration) {
        self.tx.send(Request::Hold { proc: self.id, dur }).expect("coordinator alive");
        self.now = self.wake_rx.recv().expect("coordinator alive");
    }

    /// Wait until one unit of `res` is available and take it. Units are
    /// granted in request order. Pair with [`ProcCtx::release`]; units still
    /// held when the process ends are returned automatically.
    pub fn acquire(&mut self, res: ResourceId) {
        self.tx.send(Request::Acquire { proc: self.id, res }).expect("coordinator alive");
        self.now = self.wake_rx.recv().expect("coordinator alive");
    }

    /// Return one unit of `res`.
    pub fn release(&mut self, res: ResourceId) {
        self.tx.send(Request::Release { proc: self.id, res }).expect("coordinator alive");
    }

    /// Run `body` while holding `res`.
    pub fn with_resource<R>(&mut self, res: ResourceId, body: impl FnOnce(&mut ProcCtx) -> R) -> R {
        self.acquire(res);
        let out = body(self);
        self.release(res);
        out
    }

    /// Start a sibling process at the current virtual instant.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut ProcCtx) + Send + 'static,
    ) {
        self.tx
            .send(Request::Spawn { name: name.into(), f: Box::new(f) })
            .expect("coordinator alive");
    }

    /// Record a user-level trace event at the current instant.
    pub fn trace(&mut self, kind: impl Into<String>, detail: impl Into<String>) {
        self.tx
            .send(Request::Trace {
                proc: self.id,
                kind: TraceKind::User(kind.into()),
                detail: detail.into(),
            })
            .expect("coordinator alive");
    }
}

struct ResourceState {
    name: String,
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<ProcId>,
}

struct ProcSlot {
    name: String,
    wake_tx: Sender<SimTime>,
    join: Option<JoinHandle<()>>,
    alive: bool,
    held: Vec<ResourceId>,
}

/// Errors surfaced by [`Simulation::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// All remaining processes are blocked on resources nobody will release.
    Deadlock {
        /// Names of the blocked processes.
        blocked: Vec<String>,
    },
    /// A process body panicked; the panic message is in the thread output.
    ProcessPanicked {
        /// Name of the panicked process.
        name: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlocked; blocked processes: {}", blocked.join(", "))
            }
            SimError::ProcessPanicked { name } => write!(f, "process '{name}' panicked"),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a completed simulation.
#[derive(Debug)]
pub struct SimOutcome {
    /// Instant at which the last process finished.
    pub end: SimTime,
    /// Chronological trace of scheduler and user events.
    pub trace: Trace,
}

/// A configured simulation: declare resources and root processes, then
/// [`Simulation::run`].
pub struct Simulation {
    hub: RngHub,
    resources: Vec<(String, usize)>,
    roots: Vec<(String, ProcFn)>,
    trace_enabled: bool,
}

impl Simulation {
    /// An empty simulation drawing randomness from `hub`.
    pub fn new(hub: RngHub) -> Self {
        Simulation { hub, resources: Vec::new(), roots: Vec::new(), trace_enabled: true }
    }

    /// Disable trace collection (saves memory on very long runs).
    pub fn without_trace(mut self) -> Self {
        self.trace_enabled = false;
        self
    }

    /// Declare a resource with `capacity` concurrent units.
    pub fn resource(&mut self, name: impl Into<String>, capacity: usize) -> ResourceId {
        assert!(capacity > 0, "resource capacity must be positive");
        let id = ResourceId(self.resources.len());
        self.resources.push((name.into(), capacity));
        id
    }

    /// Declare a root process started at t = 0.
    pub fn process(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut ProcCtx) + Send + 'static,
    ) {
        self.roots.push((name.into(), Box::new(f)));
    }

    /// Run to completion.
    pub fn run(self) -> Result<SimOutcome, SimError> {
        Coordinator::new(self).run()
    }
}

struct Coordinator {
    hub: RngHub,
    req_tx: Sender<Request>,
    req_rx: Receiver<Request>,
    procs: Vec<ProcSlot>,
    resources: Vec<ResourceState>,
    wakes: EventQueue<ProcId>,
    now: SimTime,
    alive: usize,
    trace: Trace,
    trace_enabled: bool,
    panicked: Option<String>,
}

impl Coordinator {
    fn new(sim: Simulation) -> Self {
        let (req_tx, req_rx) = channel();
        let mut coord = Coordinator {
            hub: sim.hub,
            req_tx,
            req_rx,
            procs: Vec::new(),
            resources: sim
                .resources
                .into_iter()
                .map(|(name, capacity)| ResourceState {
                    name,
                    capacity,
                    in_use: 0,
                    waiters: VecDeque::new(),
                })
                .collect(),
            wakes: EventQueue::new(),
            now: SimTime::ZERO,
            alive: 0,
            trace: Trace::new(),
            trace_enabled: sim.trace_enabled,
            panicked: None,
        };
        for (name, f) in sim.roots {
            coord.spawn_process(name, f);
        }
        coord
    }

    fn spawn_process(&mut self, name: String, f: ProcFn) {
        let id = ProcId(self.procs.len());
        let (wake_tx, wake_rx) = channel();
        let mut ctx = ProcCtx {
            id,
            name: name.clone(),
            now: self.now,
            tx: self.req_tx.clone(),
            wake_rx,
            hub: self.hub,
        };
        let thread_name = name.clone();
        let join = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                // Guard notifies the coordinator even if `f` unwinds.
                struct FinishGuard {
                    tx: Sender<Request>,
                    id: ProcId,
                    clean: bool,
                }
                impl Drop for FinishGuard {
                    fn drop(&mut self) {
                        let _ = self
                            .tx
                            .send(Request::Finished { proc: self.id, panicked: !self.clean });
                    }
                }
                let mut guard = FinishGuard { tx: ctx.tx.clone(), id: ctx.id, clean: false };
                // First wake delivers the start time.
                ctx.now = match ctx.wake_rx.recv() {
                    Ok(t) => t,
                    Err(_) => return, // coordinator dropped before start
                };
                f(&mut ctx);
                guard.clean = true;
            })
            .expect("spawn simulation process thread");
        self.procs.push(ProcSlot {
            name,
            wake_tx,
            join: Some(join),
            alive: true,
            held: Vec::new(),
        });
        self.alive += 1;
        self.wakes.push(self.now, id);
        self.record(id, TraceKind::ProcStart, String::new());
    }

    fn record(&mut self, proc: ProcId, kind: TraceKind, detail: String) {
        if self.trace_enabled {
            self.trace.push(TraceEvent {
                at: self.now,
                process: self.procs[proc.0].name.clone(),
                kind,
                detail,
            });
        }
    }

    fn grant(&mut self, proc: ProcId, res: ResourceId) {
        self.resources[res.0].in_use += 1;
        self.procs[proc.0].held.push(res);
        let name = self.resources[res.0].name.clone();
        self.record(proc, TraceKind::Grant, name);
        // Resume at the current instant, after already-queued same-time wakes.
        self.wakes.push(self.now, proc);
    }

    fn do_release(&mut self, proc: ProcId, res: ResourceId) {
        let slot = &mut self.procs[proc.0];
        if let Some(pos) = slot.held.iter().position(|r| *r == res) {
            slot.held.swap_remove(pos);
        }
        let name = self.resources[res.0].name.clone();
        self.record(proc, TraceKind::Release, name);
        let state = &mut self.resources[res.0];
        state.in_use = state.in_use.saturating_sub(1);
        if let Some(waiter) = self.resources[res.0].waiters.pop_front() {
            self.grant(waiter, res);
        }
    }

    /// Handle requests from the currently-running process until it blocks.
    fn drain_until_blocked(&mut self) {
        loop {
            let req = self.req_rx.recv().expect("at least one process alive");
            match req {
                Request::Hold { proc, dur } => {
                    self.record(proc, TraceKind::Hold, dur.to_string());
                    self.wakes.push(self.now + dur, proc);
                    return;
                }
                Request::Acquire { proc, res } => {
                    let state = &self.resources[res.0];
                    self.record(proc, TraceKind::Acquire, state.name.clone());
                    if self.resources[res.0].in_use < self.resources[res.0].capacity {
                        self.grant(proc, res);
                    } else {
                        self.resources[res.0].waiters.push_back(proc);
                    }
                    return;
                }
                Request::Release { proc, res } => {
                    self.do_release(proc, res);
                }
                Request::Spawn { name, f } => {
                    self.spawn_process(name, f);
                }
                Request::Trace { proc, kind, detail } => {
                    self.record(proc, kind, detail);
                }
                Request::Finished { proc, panicked } => {
                    self.record(proc, TraceKind::ProcEnd, String::new());
                    if panicked {
                        self.panicked = Some(self.procs[proc.0].name.clone());
                    }
                    // Return any units the process still holds.
                    let held: Vec<ResourceId> = self.procs[proc.0].held.clone();
                    for res in held {
                        self.do_release(proc, res);
                    }
                    self.procs[proc.0].alive = false;
                    self.alive -= 1;
                    if let Some(join) = self.procs[proc.0].join.take() {
                        let _ = join.join();
                    }
                    return;
                }
            }
        }
    }

    fn run(mut self) -> Result<SimOutcome, SimError> {
        while let Some((at, proc)) = self.wakes.pop() {
            self.now = at;
            if !self.procs[proc.0].alive {
                continue;
            }
            if self.procs[proc.0].wake_tx.send(self.now).is_err() {
                // Thread already gone; its Finished request is still queued.
            }
            self.drain_until_blocked();
            if let Some(name) = self.panicked.take() {
                return Err(SimError::ProcessPanicked { name });
            }
        }
        if self.alive > 0 {
            let blocked: Vec<String> = self
                .resources
                .iter()
                .flat_map(|r| r.waiters.iter().map(|p| self.procs[p.0].name.clone()))
                .collect();
            return Err(SimError::Deadlock { blocked });
        }
        Ok(SimOutcome { end: self.now, trace: self.trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn hub() -> RngHub {
        RngHub::new(7)
    }

    #[test]
    fn single_process_advances_clock() {
        let mut sim = Simulation::new(hub());
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = log.clone();
        sim.process("p", move |ctx| {
            ctx.hold(SimDuration::from_secs(10));
            l.lock().unwrap().push(ctx.now());
            ctx.hold(SimDuration::from_secs(5));
            l.lock().unwrap().push(ctx.now());
        });
        let out = sim.run().unwrap();
        assert_eq!(out.end, SimTime::from_secs(15));
        let log = log.lock().unwrap();
        assert_eq!(*log, vec![SimTime::from_secs(10), SimTime::from_secs(15)]);
    }

    #[test]
    fn resource_contention_serializes() {
        let mut sim = Simulation::new(hub());
        let arm = sim.resource("arm", 1);
        let spans = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let spans = spans.clone();
            sim.process(format!("flow-{i}"), move |ctx| {
                ctx.acquire(arm);
                let start = ctx.now();
                ctx.hold(SimDuration::from_secs(10));
                spans.lock().unwrap().push((start, ctx.now()));
                ctx.release(arm);
            });
        }
        let out = sim.run().unwrap();
        assert_eq!(out.end, SimTime::from_secs(30));
        let spans = spans.lock().unwrap();
        // Non-overlapping, FIFO order.
        assert_eq!(
            *spans,
            vec![
                (SimTime::ZERO, SimTime::from_secs(10)),
                (SimTime::from_secs(10), SimTime::from_secs(20)),
                (SimTime::from_secs(20), SimTime::from_secs(30)),
            ]
        );
    }

    #[test]
    fn capacity_two_allows_overlap() {
        let mut sim = Simulation::new(hub());
        let bay = sim.resource("bay", 2);
        sim.process("a", move |ctx| ctx.with_resource(bay, |c| c.hold(SimDuration::from_secs(10))));
        sim.process("b", move |ctx| ctx.with_resource(bay, |c| c.hold(SimDuration::from_secs(10))));
        sim.process("c", move |ctx| ctx.with_resource(bay, |c| c.hold(SimDuration::from_secs(10))));
        let out = sim.run().unwrap();
        // Two run together, the third queues: 10 + 10.
        assert_eq!(out.end, SimTime::from_secs(20));
    }

    #[test]
    fn spawned_children_run() {
        let mut sim = Simulation::new(hub());
        let total = Arc::new(Mutex::new(0u32));
        let t = total.clone();
        sim.process("parent", move |ctx| {
            ctx.hold(SimDuration::from_secs(1));
            for i in 0..4 {
                let t = t.clone();
                ctx.spawn(format!("child-{i}"), move |c| {
                    c.hold(SimDuration::from_secs(2));
                    *t.lock().unwrap() += 1;
                });
            }
        });
        let out = sim.run().unwrap();
        assert_eq!(*total.lock().unwrap(), 4);
        assert_eq!(out.end, SimTime::from_secs(3));
    }

    #[test]
    fn deadlock_is_reported() {
        let mut sim = Simulation::new(hub());
        let a = sim.resource("a", 1);
        let b = sim.resource("b", 1);
        sim.process("p1", move |ctx| {
            ctx.acquire(a);
            ctx.hold(SimDuration::from_secs(1));
            ctx.acquire(b);
            ctx.release(b);
            ctx.release(a);
        });
        sim.process("p2", move |ctx| {
            ctx.acquire(b);
            ctx.hold(SimDuration::from_secs(1));
            ctx.acquire(a);
            ctx.release(a);
            ctx.release(b);
        });
        match sim.run() {
            Err(SimError::Deadlock { blocked }) => {
                assert_eq!(blocked.len(), 2);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn panic_in_process_is_reported() {
        let mut sim = Simulation::new(hub());
        sim.process("bad", |ctx| {
            ctx.hold(SimDuration::from_secs(1));
            panic!("boom");
        });
        match sim.run() {
            Err(SimError::ProcessPanicked { name }) => assert_eq!(name, "bad"),
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn held_resources_released_on_finish() {
        let mut sim = Simulation::new(hub());
        let r = sim.resource("r", 1);
        sim.process("holder", move |ctx| {
            ctx.acquire(r);
            ctx.hold(SimDuration::from_secs(5));
            // Never releases explicitly.
        });
        sim.process("waiter", move |ctx| {
            ctx.hold(SimDuration::from_secs(1));
            ctx.acquire(r);
            ctx.release(r);
        });
        let out = sim.run().unwrap();
        assert_eq!(out.end, SimTime::from_secs(5));
    }

    #[test]
    fn trace_records_events_in_order() {
        let mut sim = Simulation::new(hub());
        sim.process("p", |ctx| {
            ctx.trace("step", "one");
            ctx.hold(SimDuration::from_secs(2));
            ctx.trace("step", "two");
        });
        let out = sim.run().unwrap();
        let user: Vec<_> = out
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::User(_)))
            .map(|e| (e.at, e.detail.clone()))
            .collect();
        assert_eq!(
            user,
            vec![(SimTime::ZERO, "one".into()), (SimTime::from_secs(2), "two".into())]
        );
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<(SimTime, String)> {
            let mut sim = Simulation::new(RngHub::new(11));
            let arm = sim.resource("arm", 1);
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..5 {
                let log = log.clone();
                sim.process(format!("f{i}"), move |ctx| {
                    use rand::Rng;
                    let mut rng = ctx.hub().substream("dur", i);
                    let d = SimDuration::from_millis(rng.gen_range(100..2_000));
                    ctx.acquire(arm);
                    ctx.hold(d);
                    log.lock().unwrap().push((ctx.now(), ctx.name().to_string()));
                    ctx.release(arm);
                });
            }
            sim.run().unwrap();
            let v = log.lock().unwrap().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }
}
