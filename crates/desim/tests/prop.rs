//! Property tests for the simulation kernel.

use proptest::prelude::*;
use sdl_desim::{EventQueue, RngHub, SimDuration, SimTime, Simulation};
use std::sync::{Arc, Mutex};

proptest! {
    /// Popping the event queue always yields non-decreasing times, and
    /// same-time payloads come out in insertion order.
    #[test]
    fn event_queue_is_stable_ordered(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for equal times");
                }
            }
            last = Some((t, i));
        }
    }

    /// Time arithmetic: (t + d) - t == d for all representable values.
    #[test]
    fn add_then_subtract_roundtrips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(t);
        let d = SimDuration::from_micros(d);
        prop_assert_eq!((t + d) - t, d);
    }

    /// Named streams are a pure function of (seed, name).
    #[test]
    fn rng_streams_are_pure(seed in any::<u64>(), name in "[a-z]{1,12}") {
        use rand::Rng;
        let a: u64 = RngHub::new(seed).stream(&name).gen();
        let b: u64 = RngHub::new(seed).stream(&name).gen();
        prop_assert_eq!(a, b);
    }

    /// A pipeline of processes contending for one resource always ends at
    /// the sum of their hold times, no matter the individual durations.
    #[test]
    fn serialized_holds_sum(durs in proptest::collection::vec(1u64..5_000u64, 1..12)) {
        let mut sim = Simulation::new(RngHub::new(5)).without_trace();
        let arm = sim.resource("arm", 1);
        for (i, &ms) in durs.iter().enumerate() {
            sim.process(format!("p{i}"), move |ctx| {
                ctx.acquire(arm);
                ctx.hold(SimDuration::from_millis(ms));
                ctx.release(arm);
            });
        }
        let out = sim.run().unwrap();
        let total: u64 = durs.iter().sum();
        prop_assert_eq!(out.end, SimTime::ZERO + SimDuration::from_millis(total));
    }

    /// With capacity >= number of processes there is no queueing: the end
    /// time equals the maximum hold, not the sum.
    #[test]
    fn parallel_holds_max(durs in proptest::collection::vec(1u64..5_000u64, 1..10)) {
        let n = durs.len();
        let mut sim = Simulation::new(RngHub::new(5)).without_trace();
        let bay = sim.resource("bay", n);
        for (i, &ms) in durs.iter().enumerate() {
            sim.process(format!("p{i}"), move |ctx| {
                ctx.acquire(bay);
                ctx.hold(SimDuration::from_millis(ms));
                ctx.release(bay);
            });
        }
        let out = sim.run().unwrap();
        let max = *durs.iter().max().unwrap();
        prop_assert_eq!(out.end, SimTime::ZERO + SimDuration::from_millis(max));
    }
}

/// Same seed, same program → identical traces; guard against accidental
/// nondeterminism from thread scheduling.
#[test]
fn full_trace_determinism() {
    fn run() -> String {
        let mut sim = Simulation::new(RngHub::new(123));
        let arm = sim.resource("arm", 1);
        let deck = sim.resource("deck", 2);
        let log = Arc::new(Mutex::new(String::new()));
        for i in 0..6u64 {
            let log = log.clone();
            sim.process(format!("wf{i}"), move |ctx| {
                use rand::Rng;
                let mut rng = ctx.hub().substream("d", i);
                ctx.acquire(arm);
                ctx.hold(SimDuration::from_millis(rng.gen_range(10..500)));
                ctx.release(arm);
                ctx.acquire(deck);
                ctx.hold(SimDuration::from_millis(rng.gen_range(10..500)));
                ctx.release(deck);
                log.lock().unwrap().push_str(&format!("{} {}\n", ctx.name(), ctx.now()));
            });
        }
        let out = sim.run().unwrap();
        let mut s = log.lock().unwrap().clone();
        s.push_str(&out.trace.render());
        s
    }
    assert_eq!(run(), run());
}
