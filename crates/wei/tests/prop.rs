//! Property tests: the engine's run logs and accounting are internally
//! consistent on randomized plate-logistics workloads.

use proptest::prelude::*;
use sdl_color::{DyeSet, MixKind};
use sdl_desim::{FaultPlan, FaultRates, RngHub, SimTime};
use sdl_wei::{
    Clock, Engine, Payload, SeqClock, Workcell, WorkcellConfig, Workflow, RPL_WORKCELL_YAML,
};

fn engine(seed: u64, plan: FaultPlan) -> Engine {
    let cfg = WorkcellConfig::from_yaml(RPL_WORKCELL_YAML).unwrap();
    let cell = Workcell::instantiate(cfg, DyeSet::cmyk(), MixKind::BeerLambert).unwrap();
    Engine::new(cell, RngHub::new(seed)).with_faults(plan)
}

/// A plate round trip: fetch, stage, trash. Safe to repeat indefinitely.
fn roundtrip_wf() -> Workflow {
    Workflow::from_yaml(
        "name: roundtrip\nmodules: [sciclops, pf400, barty]\nsteps:\n  - name: Get\n    module: sciclops\n    action: get_plate\n  - name: Stage\n    module: pf400\n    action: transfer\n    args: {source: sciclops.exchange, target: camera.nest}\n  - name: Refill\n    module: barty\n    action: fill_colors\n  - name: Trash\n    module: pf400\n    action: transfer\n    args: {source: camera.nest, target: trash}\n",
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// However many times the workflow runs and whatever the fault rate,
    /// the accounting invariants hold: monotone non-overlapping steps,
    /// attempts >= completions, counters match history.
    #[test]
    fn engine_accounting_invariants(
        runs in 1usize..6,
        fault_pct in 0u32..30,
        seed in 0u64..50,
    ) {
        let rate = fault_pct as f64 / 100.0;
        let mut e = engine(seed, FaultPlan::uniform(FaultRates::new(rate, rate / 2.0)));
        let mut clock = SeqClock::new();
        let wf = roundtrip_wf();
        let mut completed_runs = 0u64;
        for _ in 0..runs {
            if e.run_workflow(&mut clock, &wf, &Payload::none()).is_err() {
                break; // heavy faults can exhaust even the human's patience
            }
            completed_runs += 1;
        }

        // History contains exactly the completed runs.
        prop_assert_eq!(e.history.len() as u64, completed_runs);
        let mut last_end = SimTime::ZERO;
        let mut steps = 0u64;
        for log in &e.history {
            prop_assert!(log.start >= last_end);
            let mut cursor = log.start;
            for r in &log.records {
                prop_assert!(r.start >= cursor, "steps overlap");
                prop_assert!(r.end >= r.start);
                prop_assert!(r.attempts >= 1);
                cursor = r.end;
                steps += 1;
            }
            prop_assert_eq!(cursor, log.end);
            last_end = log.end;
        }
        // Every completed step is a completed command; attempts cover them.
        prop_assert_eq!(e.counters.completed, steps);
        prop_assert!(e.counters.attempts >= e.counters.completed);
        // All four steps are robotic in this workflow.
        prop_assert_eq!(e.counters.robotic_completed, steps);
        // CCWH streak can never exceed total robotic completions.
        prop_assert!(e.reliability.commands_without_humans() <= e.counters.robotic_completed);
        // The clock only moves forward and matches history.
        prop_assert_eq!(Clock::now(&clock), last_end);
    }

    /// Fault-free runs have exactly one attempt per command and no humans.
    #[test]
    fn clean_runs_have_clean_counters(runs in 1usize..5, seed in 0u64..50) {
        let mut e = engine(seed, FaultPlan::none());
        let mut clock = SeqClock::new();
        let wf = roundtrip_wf();
        for _ in 0..runs {
            e.run_workflow(&mut clock, &wf, &Payload::none()).unwrap();
        }
        prop_assert_eq!(e.counters.attempts, e.counters.completed);
        prop_assert_eq!(e.counters.human_interventions, 0);
        prop_assert_eq!(e.reliability.commands_without_humans(), e.counters.robotic_completed);
        prop_assert!(e.history.iter().all(|l| l.records.iter().all(|r| r.attempts == 1)));
    }

    /// Workflow retargeting is name-complete: every module reference is
    /// renamed, nothing else changes.
    #[test]
    fn retarget_renames_consistently(suffix in "[a-z]{1,6}") {
        let wf = roundtrip_wf();
        let map: std::collections::BTreeMap<String, String> = wf
            .modules
            .iter()
            .map(|m| (m.clone(), format!("{m}_{suffix}")))
            .collect();
        let renamed = wf.retarget(&map);
        prop_assert_eq!(renamed.steps.len(), wf.steps.len());
        for (old, new) in wf.steps.iter().zip(&renamed.steps) {
            prop_assert_eq!(&new.module, &map[&old.module]);
            prop_assert_eq!(&new.action, &old.action);
            prop_assert_eq!(&new.args, &old.args);
        }
        let tail = format!("_{suffix}");
        for m in &renamed.modules {
            prop_assert!(m.ends_with(&tail), "{} lacks suffix {}", m, tail);
        }
    }
}
