//! The live executor: module servers on real threads.
//!
//! On the physical platform, "commands [are] sent to computers connected to
//! devices" — every module is its own server process. This executor
//! reproduces that architecture: each instrument runs on its own thread
//! behind a crossbeam channel, commands are dispatched as messages, and
//! action durations elapse as (scaled) wall-clock time. It exists to
//! demonstrate architectural fidelity and to drive the `live_lab` example;
//! experiments use the virtual-time engine, which is millions of times
//! faster.

use crate::error::WeiError;
use crate::runlog::{StepRecord, WorkflowRunLog};
use crate::workcell::Workcell;
use crate::workflow::{Payload, Workflow};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use sdl_desim::{RngHub, SimTime};
use sdl_instruments::{ActionArgs, ActionData, ActionOutcome, InstrumentError, World};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

struct LiveCommand {
    action: String,
    args: ActionArgs,
    reply: Sender<Result<ActionOutcome, InstrumentError>>,
}

/// A running fleet of module servers.
pub struct LiveExecutor {
    senders: BTreeMap<String, Sender<LiveCommand>>,
    handles: Vec<JoinHandle<()>>,
    /// Shared world, observable from outside between commands.
    pub world: Arc<Mutex<World>>,
    started: Instant,
    /// Real seconds per simulated second (e.g. 0.001 = 1000× speedup).
    pub time_scale: f64,
}

impl LiveExecutor {
    /// Move each instrument of `workcell` onto its own server thread.
    pub fn start(workcell: Workcell, hub: RngHub, time_scale: f64) -> LiveExecutor {
        let (config, world, timing, mut instruments) = workcell.into_parts();
        let module_names = config.modules.iter().map(|m| m.name.clone()).collect::<Vec<_>>();
        let world = Arc::new(Mutex::new(world));
        let timing = Arc::new(timing);

        let mut senders = BTreeMap::new();
        let mut handles = Vec::new();
        for name in module_names {
            let Some(instrument) = instruments.remove(&name) else {
                continue;
            };
            let (tx, rx) = unbounded::<LiveCommand>();
            let world = Arc::clone(&world);
            let timing = Arc::clone(&timing);
            let mut rng = hub.stream(&format!("live.module.{name}"));
            let scale = time_scale;
            let handle = std::thread::Builder::new()
                .name(format!("module-{name}"))
                .spawn(move || {
                    let mut instrument = instrument;
                    while let Ok(cmd) = rx.recv() {
                        let result = {
                            let mut w = world.lock();
                            instrument.execute(&cmd.action, &cmd.args, &mut w, &timing, &mut rng)
                        };
                        if let Ok(outcome) = &result {
                            let sleep_s = outcome.duration.as_secs_f64() * scale;
                            if sleep_s > 0.0 {
                                std::thread::sleep(std::time::Duration::from_secs_f64(sleep_s));
                            }
                        }
                        let _ = cmd.reply.send(result);
                    }
                })
                .expect("spawn module server");
            senders.insert(name, tx);
            handles.push(handle);
        }
        LiveExecutor { senders, handles, world, started: Instant::now(), time_scale }
    }

    /// Send one command and wait for the module server's reply.
    pub fn send(
        &self,
        module: &str,
        action: &str,
        args: ActionArgs,
    ) -> Result<ActionOutcome, WeiError> {
        let tx =
            self.senders.get(module).ok_or_else(|| WeiError::UnknownModule(module.to_string()))?;
        let (reply_tx, reply_rx) = unbounded();
        tx.send(LiveCommand { action: action.to_string(), args, reply: reply_tx })
            .map_err(|_| WeiError::Invalid(format!("module server '{module}' is down")))?;
        reply_rx
            .recv()
            .map_err(|_| WeiError::Invalid(format!("module server '{module}' died mid-command")))?
            .map_err(WeiError::Instrument)
    }

    /// Current virtual time (wall time un-scaled).
    pub fn now(&self) -> SimTime {
        SimTime::from_micros((self.started.elapsed().as_secs_f64() / self.time_scale * 1e6) as u64)
    }

    /// Run a workflow against the live fleet.
    pub fn run_workflow(
        &self,
        wf: &Workflow,
        payload: &Payload,
    ) -> Result<(WorkflowRunLog, Vec<(String, ActionData)>), WeiError> {
        let start = self.now();
        let mut records = Vec::new();
        let mut data = Vec::new();
        for step in &wf.steps {
            let args = Workflow::resolve_args(step, payload)?;
            let t0 = self.now();
            let outcome = self.send(&step.module, &step.action, args)?;
            records.push(StepRecord {
                name: step.name.clone(),
                module: step.module.clone(),
                action: step.action.clone(),
                start: t0,
                end: self.now(),
                attempts: 1,
                human_intervened: false,
            });
            if !matches!(outcome.data, ActionData::None) {
                data.push((step.name.clone(), outcome.data));
            }
        }
        Ok((WorkflowRunLog { workflow: wf.name.clone(), start, end: self.now(), records }, data))
    }

    /// Stop all module servers and join their threads.
    pub fn shutdown(mut self) {
        self.senders.clear(); // closes channels; servers exit their loops
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workcell::{WorkcellConfig, RPL_WORKCELL_YAML};
    use sdl_color::{DyeSet, MixKind};

    fn live() -> LiveExecutor {
        let cfg = WorkcellConfig::from_yaml(RPL_WORKCELL_YAML).unwrap();
        let cell = Workcell::instantiate(cfg, DyeSet::cmyk(), MixKind::BeerLambert).unwrap();
        // 100 000× faster than real time: a 34 s transfer sleeps 0.34 ms.
        LiveExecutor::start(cell, RngHub::new(21), 1e-5)
    }

    #[test]
    fn live_fleet_executes_commands() {
        let exec = live();
        let out = exec.send("sciclops", "get_plate", ActionArgs::none()).unwrap();
        assert!(matches!(out.data, ActionData::Plate(_)));
        assert!(exec.world.lock().plate_at("sciclops.exchange").unwrap().is_some());
        exec.send(
            "pf400",
            "transfer",
            ActionArgs::none().with("source", "sciclops.exchange").with("target", "camera.nest"),
        )
        .unwrap();
        assert!(exec.world.lock().plate_at("camera.nest").unwrap().is_some());
        exec.shutdown();
    }

    #[test]
    fn live_workflow_produces_log_and_image() {
        let exec = live();
        exec.send("sciclops", "get_plate", ActionArgs::none()).unwrap();
        exec.send(
            "pf400",
            "transfer",
            ActionArgs::none().with("source", "sciclops.exchange").with("target", "camera.nest"),
        )
        .unwrap();
        let wf = Workflow::from_yaml(
            "name: snap\nmodules: [camera]\nsteps:\n  - name: Take picture\n    module: camera\n    action: take_picture\n",
        )
        .unwrap();
        let (log, data) = exec.run_workflow(&wf, &Payload::none()).unwrap();
        assert_eq!(log.records.len(), 1);
        assert!(log.records[0].end >= log.records[0].start);
        assert_eq!(data.len(), 1);
        exec.shutdown();
    }

    #[test]
    fn unknown_module_is_rejected() {
        let exec = live();
        assert!(matches!(
            exec.send("ghost", "boo", ActionArgs::none()),
            Err(WeiError::UnknownModule(_))
        ));
        exec.shutdown();
    }
}
