//! Errors surfaced by the workflow engine.

use sdl_conf::{AccessError, ParseError};
use sdl_instruments::InstrumentError;
use std::fmt;

/// Engine and configuration errors.
#[derive(Debug, Clone, PartialEq)]
pub enum WeiError {
    /// The workcell or workflow document failed to parse.
    Parse(ParseError),
    /// A required config field was missing or mistyped.
    Config(AccessError),
    /// Free-form configuration problem.
    Invalid(String),
    /// Workflow references a module the workcell does not have.
    UnknownModule(String),
    /// Workflow step names an action the module does not expose.
    UnsupportedAction {
        /// Module name.
        module: String,
        /// Action requested.
        action: String,
    },
    /// A command exhausted its retries and the simulated operator budget.
    CommandAborted {
        /// Step name.
        step: String,
        /// Module name.
        module: String,
        /// Attempts made.
        attempts: u32,
        /// Final instrument error.
        cause: InstrumentError,
    },
    /// Underlying instrument failure outside the retry machinery.
    Instrument(InstrumentError),
}

impl fmt::Display for WeiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeiError::Parse(e) => write!(f, "{e}"),
            WeiError::Config(e) => write!(f, "{e}"),
            WeiError::Invalid(m) => write!(f, "invalid configuration: {m}"),
            WeiError::UnknownModule(m) => write!(f, "workflow references unknown module '{m}'"),
            WeiError::UnsupportedAction { module, action } => {
                write!(f, "module '{module}' does not support action '{action}'")
            }
            WeiError::CommandAborted { step, module, attempts, cause } => {
                write!(f, "step '{step}' on '{module}' aborted after {attempts} attempts: {cause}")
            }
            WeiError::Instrument(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WeiError {}

impl From<ParseError> for WeiError {
    fn from(e: ParseError) -> Self {
        WeiError::Parse(e)
    }
}

impl From<AccessError> for WeiError {
    fn from(e: AccessError) -> Self {
        WeiError::Config(e)
    }
}

impl From<InstrumentError> for WeiError {
    fn from(e: InstrumentError) -> Self {
        WeiError::Instrument(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = WeiError::UnknownModule("ot3".into());
        assert!(e.to_string().contains("ot3"));
        let e = WeiError::UnsupportedAction { module: "camera".into(), action: "transfer".into() };
        assert!(e.to_string().contains("camera") && e.to_string().contains("transfer"));
        let e = WeiError::CommandAborted {
            step: "Mix".into(),
            module: "ot2".into(),
            attempts: 3,
            cause: InstrumentError::OutOfTips,
        };
        assert!(e.to_string().contains("3 attempts"));
    }
}
