//! The workflow engine: step dispatch, retries, fault recovery, command
//! accounting.
//!
//! "Workflow steps are translated into commands sent to computers connected
//! to devices, which then call driver functions specific to their attached
//! device" (§2.2). The engine is that translation layer, plus the
//! reliability machinery behind the paper's CCWH metric: commands can be
//! dropped at reception or fail mid-action (per the [`FaultPlan`]), are
//! retried automatically, and fall back to a simulated human operator when
//! retries are exhausted.

use crate::error::WeiError;
use crate::runlog::{StepRecord, WorkflowRunLog};
use crate::workcell::Workcell;
use crate::workflow::{Payload, Workflow};
use rand::rngs::StdRng;
use sdl_desim::{FaultKind, FaultPlan, ProcCtx, RngHub, SimDuration, SimTime};
use sdl_instruments::{ActionArgs, ActionData};
use std::collections::BTreeMap;

/// A source of virtual time the engine can wait on. Implemented by
/// [`SeqClock`] for plain sequential runs and by [`ProcCtx`] for runs inside
/// the `sdl-desim` process executive (where waiting can overlap with other
/// workflows).
pub trait Clock {
    /// Current virtual time.
    fn now(&self) -> SimTime;
    /// Let time pass.
    fn wait(&mut self, d: SimDuration);
}

/// A free-running sequential clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqClock(SimTime);

impl SeqClock {
    /// Start at t = 0.
    pub fn new() -> SeqClock {
        SeqClock(SimTime::ZERO)
    }
}

impl Clock for SeqClock {
    fn now(&self) -> SimTime {
        self.0
    }
    fn wait(&mut self, d: SimDuration) {
        self.0 += d;
    }
}

impl Clock for ProcCtx {
    fn now(&self) -> SimTime {
        ProcCtx::now(self)
    }
    fn wait(&mut self, d: SimDuration) {
        self.hold(d);
    }
}

/// Retry and recovery policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Automatic attempts per command before calling a human.
    pub max_attempts: u32,
    /// Time lost when a command is dropped at reception (watchdog timeout).
    pub reception_timeout: SimDuration,
    /// Time lost when an action fails mid-execution before the retry.
    pub action_recovery: SimDuration,
    /// Time a simulated human needs to walk over and fix the module.
    pub human_delay: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            reception_timeout: SimDuration::from_secs(20),
            action_recovery: SimDuration::from_secs(30),
            human_delay: SimDuration::from_mins(5),
        }
    }
}

/// Lifetime command counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Individual dispatch attempts (including faulted ones).
    pub attempts: u64,
    /// Commands completed successfully.
    pub completed: u64,
    /// Completed commands on robotic modules (CCWH numerator).
    pub robotic_completed: u64,
    /// Injected reception drops observed.
    pub reception_faults: u64,
    /// Injected mid-action failures observed.
    pub action_faults: u64,
    /// Times the simulated human was called.
    pub human_interventions: u64,
}

/// Reliability bookkeeping for TWH / CCWH.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Reliability {
    /// Times at which a human intervened.
    pub human_times: Vec<SimTime>,
    /// Robotic commands completed since the last intervention.
    pub robotic_streak: u64,
    /// Longest robotic-command streak seen.
    pub max_robotic_streak: u64,
}

impl Reliability {
    /// Record a human intervention at `at` (finalizes the current robotic
    /// streak). Public so recorded runs can rebuild reliability accounting
    /// offline with the engine's exact bookkeeping.
    pub fn human(&mut self, at: SimTime) {
        self.human_times.push(at);
        self.max_robotic_streak = self.max_robotic_streak.max(self.robotic_streak);
        self.robotic_streak = 0;
    }

    /// Record one completed robotic command.
    pub fn robotic_ok(&mut self) {
        self.robotic_streak += 1;
        self.max_robotic_streak = self.max_robotic_streak.max(self.robotic_streak);
    }

    /// Longest stretch of the run without a human, given start and end.
    pub fn time_without_humans(&self, start: SimTime, end: SimTime) -> SimDuration {
        let mut best = SimDuration::ZERO;
        let mut prev = start;
        for &t in &self.human_times {
            best = best.max(t - prev);
            prev = t;
        }
        best.max(end - prev)
    }

    /// CCWH: the longest streak of robotic commands without intervention.
    pub fn commands_without_humans(&self) -> u64 {
        self.max_robotic_streak
    }
}

/// Result of one dispatched command.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandResult {
    /// How long the module (and any recovery) was busy.
    pub busy: SimDuration,
    /// Attempts made.
    pub attempts: u32,
    /// Whether the human had to step in.
    pub human_intervened: bool,
    /// Data returned by the action.
    pub data: ActionData,
}

/// Output of a full workflow run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Timing log (one record per step).
    pub log: WorkflowRunLog,
    /// Non-trivial data returned by steps, keyed by step name.
    pub data: Vec<(String, ActionData)>,
}

/// The engine.
pub struct Engine {
    /// The live workcell (instruments + world).
    pub workcell: Workcell,
    /// Fault injection plan.
    pub fault_plan: FaultPlan,
    /// Retry policy.
    pub retry: RetryPolicy,
    /// Lifetime counters.
    pub counters: Counters,
    /// TWH/CCWH bookkeeping.
    pub reliability: Reliability,
    /// Completed workflow logs (timings only; data is returned, not stored).
    pub history: Vec<WorkflowRunLog>,
    module_rngs: BTreeMap<String, StdRng>,
    fault_rng: StdRng,
    hub: RngHub,
}

impl Engine {
    /// Build an engine over a workcell.
    pub fn new(workcell: Workcell, hub: RngHub) -> Engine {
        Engine {
            workcell,
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            counters: Counters::default(),
            reliability: Reliability::default(),
            history: Vec::new(),
            module_rngs: BTreeMap::new(),
            fault_rng: hub.stream("wei.faults"),
            hub,
        }
    }

    /// Set the fault plan (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Engine {
        self.fault_plan = plan;
        self
    }

    /// Validate that a workflow only references modules and actions this
    /// workcell provides.
    pub fn validate(&self, wf: &Workflow) -> Result<(), WeiError> {
        for m in &wf.modules {
            if !self.workcell.has_module(m) {
                return Err(WeiError::UnknownModule(m.clone()));
            }
        }
        for step in &wf.steps {
            let inst = self
                .workcell
                .instrument(&step.module)
                .ok_or_else(|| WeiError::UnknownModule(step.module.clone()))?;
            if !inst.actions().contains(&step.action.as_str()) {
                return Err(WeiError::UnsupportedAction {
                    module: step.module.clone(),
                    action: step.action.clone(),
                });
            }
        }
        Ok(())
    }

    /// Dispatch one command with retries. Does not wait: the caller advances
    /// its clock by `busy` afterwards (this keeps the engine lock short in
    /// concurrent runs).
    pub fn dispatch(
        &mut self,
        now: SimTime,
        module: &str,
        action: &str,
        args: &ActionArgs,
    ) -> Result<CommandResult, WeiError> {
        if self.workcell.instrument(module).is_none() {
            return Err(WeiError::UnknownModule(module.to_string()));
        }
        let robotic =
            self.workcell.instrument(module).map(|i| i.kind().is_robotic()).unwrap_or(false);
        if !self.module_rngs.contains_key(module) {
            let stream = self.hub.stream(&format!("wei.module.{module}"));
            self.module_rngs.insert(module.to_string(), stream);
        }

        let mut busy = SimDuration::ZERO;
        let mut attempts = 0u32;
        let mut human = false;
        let mut last_err = None;

        loop {
            // A human steps in once automatic retries are exhausted.
            if attempts >= self.retry.max_attempts {
                if human {
                    // Even the human could not fix it.
                    return Err(WeiError::CommandAborted {
                        step: action.to_string(),
                        module: module.to_string(),
                        attempts,
                        cause: last_err.unwrap_or(sdl_instruments::InstrumentError::InjectedFault),
                    });
                }
                human = true;
                busy += self.retry.human_delay;
                self.counters.human_interventions += 1;
                self.reliability.human(now + busy);
                if let Some(inst) = self.workcell.instrument_mut(module) {
                    inst.reset();
                }
                attempts = 0;
            }
            attempts += 1;
            self.counters.attempts += 1;

            // Fault draw (humans supervise their attempt, so no fault then).
            let fault =
                if human { None } else { self.fault_plan.draw(module, &mut self.fault_rng) };
            match fault {
                Some(FaultKind::ReceptionDropped) => {
                    self.counters.reception_faults += 1;
                    busy += self.retry.reception_timeout;
                    last_err = Some(sdl_instruments::InstrumentError::InjectedFault);
                    continue;
                }
                Some(FaultKind::ActionFailed) => {
                    self.counters.action_faults += 1;
                    busy += self.retry.action_recovery;
                    if let Some(inst) = self.workcell.instrument_mut(module) {
                        inst.mark_error();
                        inst.reset(); // automated recovery before the retry
                    }
                    last_err = Some(sdl_instruments::InstrumentError::InjectedFault);
                    continue;
                }
                None => {}
            }

            let rng = self.module_rngs.get_mut(module).expect("inserted above");
            let (inst, world, timing) =
                self.workcell.dispatch_parts(module).expect("module checked above");
            match inst.execute(action, args, world, timing, rng) {
                Ok(outcome) => {
                    busy += outcome.duration;
                    self.counters.completed += 1;
                    if robotic {
                        self.counters.robotic_completed += 1;
                        self.reliability.robotic_ok();
                    }
                    return Ok(CommandResult {
                        busy,
                        attempts,
                        human_intervened: human,
                        data: outcome.data,
                    });
                }
                Err(e) => {
                    // Logical errors (empty towers, reused wells…) will not
                    // heal by retrying; surface them to the application.
                    return Err(WeiError::CommandAborted {
                        step: action.to_string(),
                        module: module.to_string(),
                        attempts,
                        cause: e,
                    });
                }
            }
        }
    }

    /// Write every run log in history to `dir`, one text file per workflow
    /// run ("these files are saved locally to the machine running the
    /// workflow manager", §2.3). Returns the number of files written.
    pub fn export_runlogs(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        for (i, log) in self.history.iter().enumerate() {
            let name = format!("{:04}_{}.log", i + 1, log.workflow);
            std::fs::write(dir.join(name), log.render())?;
        }
        Ok(self.history.len())
    }

    /// Run a whole workflow on the given clock, appending to history.
    pub fn run_workflow(
        &mut self,
        clock: &mut impl Clock,
        wf: &Workflow,
        payload: &Payload,
    ) -> Result<RunOutput, WeiError> {
        self.validate(wf)?;
        let start = clock.now();
        let mut records = Vec::with_capacity(wf.steps.len());
        let mut data = Vec::new();
        for step in &wf.steps {
            let args = Workflow::resolve_args(step, payload)?;
            let t0 = clock.now();
            let result = self.dispatch(t0, &step.module, &step.action, &args)?;
            clock.wait(result.busy);
            records.push(StepRecord {
                name: step.name.clone(),
                module: step.module.clone(),
                action: step.action.clone(),
                start: t0,
                end: clock.now(),
                attempts: result.attempts,
                human_intervened: result.human_intervened,
            });
            if !matches!(result.data, ActionData::None) {
                data.push((step.name.clone(), result.data));
            }
        }
        let log = WorkflowRunLog { workflow: wf.name.clone(), start, end: clock.now(), records };
        self.history.push(log.clone());
        Ok(RunOutput { log, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workcell::{Workcell, WorkcellConfig, RPL_WORKCELL_YAML};
    use sdl_color::{DyeSet, MixKind};
    use sdl_desim::FaultRates;
    use sdl_instruments::{ProtocolSpec, WellDispense, WellIndex};

    fn engine() -> Engine {
        let cfg = WorkcellConfig::from_yaml(RPL_WORKCELL_YAML).unwrap();
        let cell = Workcell::instantiate(cfg, DyeSet::cmyk(), MixKind::BeerLambert).unwrap();
        Engine::new(cell, RngHub::new(11))
    }

    fn newplate_wf() -> Workflow {
        Workflow::from_yaml(
            r#"
name: cp_wf_newplate
modules: [sciclops, pf400, barty]
steps:
  - name: Get plate
    module: sciclops
    action: get_plate
  - name: Stage at camera
    module: pf400
    action: transfer
    args: {source: sciclops.exchange, target: camera.nest}
  - name: Fill reservoirs
    module: barty
    action: fill_colors
"#,
        )
        .unwrap()
    }

    fn mix_wf() -> Workflow {
        Workflow::from_yaml(
            r#"
name: cp_wf_mixcolor
modules: [pf400, ot2, camera]
steps:
  - name: To ot2
    module: pf400
    action: transfer
    args: {source: camera.nest, target: ot2.deck}
  - name: Mix colors
    module: ot2
    action: run_protocol
    args: {protocol: $payload}
  - name: Back to camera
    module: pf400
    action: transfer
    args: {source: ot2.deck, target: camera.nest}
  - name: Take picture
    module: camera
    action: take_picture
"#,
        )
        .unwrap()
    }

    fn one_well_protocol() -> Payload {
        Payload::with_protocol(ProtocolSpec {
            name: "mix_colors".into(),
            dispenses: vec![WellDispense {
                well: WellIndex::new(0, 0),
                volumes_ul: vec![5.0, 5.0, 5.0, 20.0],
            }],
        })
    }

    #[test]
    fn full_iteration_advances_clock_and_counts() {
        let mut e = engine();
        let mut clock = SeqClock::new();
        e.run_workflow(&mut clock, &newplate_wf(), &Payload::none()).unwrap();
        let out = e.run_workflow(&mut clock, &mix_wf(), &one_well_protocol()).unwrap();

        // The mix iteration should take ~228 s (Table 1 calibration).
        let d = out.log.duration().as_secs_f64();
        assert!((d - 228.0).abs() < 12.0, "iteration took {d}");
        // Camera image came back.
        assert_eq!(out.data.len(), 1);
        assert!(matches!(out.data[0].1, ActionData::Image(_)));
        // 3 + 4 commands completed; 6 robotic (camera excluded).
        assert_eq!(e.counters.completed, 7);
        assert_eq!(e.counters.robotic_completed, 6);
        assert_eq!(e.reliability.commands_without_humans(), 6);
        assert_eq!(e.history.len(), 2);
    }

    #[test]
    fn validation_catches_unknown_modules_and_actions() {
        let e = engine();
        let wf = Workflow::from_yaml(
            "name: bad\nmodules: [ot3]\nsteps:\n  - module: ot3\n    action: x\n",
        )
        .unwrap();
        assert_eq!(e.validate(&wf), Err(WeiError::UnknownModule("ot3".into())));
        let wf = Workflow::from_yaml(
            "name: bad\nmodules: [camera]\nsteps:\n  - module: camera\n    action: transfer\n",
        )
        .unwrap();
        assert!(matches!(e.validate(&wf), Err(WeiError::UnsupportedAction { .. })));
    }

    #[test]
    fn reception_faults_cost_time_and_are_retried() {
        let mut e = engine();
        // Fault only the sciclops; always dropped at reception on the first
        // draws, then clean (rate 1.0 would never succeed — use the retry
        // budget: 2 drops then human). Use rate 1.0 to force the human path.
        e.fault_plan = FaultPlan::none().with_module("sciclops", FaultRates::new(1.0, 0.0));
        let mut clock = SeqClock::new();
        let out = e.run_workflow(&mut clock, &newplate_wf(), &Payload::none());
        // Human fixes it after max_attempts drops.
        let out = out.unwrap();
        let first = &out.log.records[0];
        assert!(first.human_intervened);
        assert_eq!(e.counters.human_interventions, 1);
        assert_eq!(e.counters.reception_faults, 3);
        // Time cost: 3 timeouts + human delay + the action itself.
        let d = first.duration().as_secs_f64();
        assert!(d > 3.0 * 20.0 + 300.0, "recovery took {d}");
        // Streak was reset by the human, then counted again.
        assert!(e.reliability.commands_without_humans() >= 2);
        assert_eq!(e.reliability.human_times.len(), 1);
    }

    #[test]
    fn action_faults_mark_module_and_recover() {
        let mut e = engine();
        let mut clock = SeqClock::new();
        // 50% action-failure on the pf400: with 3 attempts the run should
        // still complete (probability of triple failure is 12.5% per
        // command; seed 11 happens to pass — determinism makes this stable).
        e.fault_plan = FaultPlan::none().with_module("pf400", FaultRates::new(0.0, 0.5));
        let result = e.run_workflow(&mut clock, &newplate_wf(), &Payload::none());
        assert!(result.is_ok(), "{result:?}");
        assert!(e.counters.action_faults > 0 || e.counters.attempts == e.counters.completed);
    }

    #[test]
    fn logical_errors_abort_without_retry() {
        let mut e = engine();
        let mut clock = SeqClock::new();
        // Mix without a plate at the camera nest: pf400 transfer fails
        // logically, no retry can help.
        let err = e.run_workflow(&mut clock, &mix_wf(), &one_well_protocol());
        match err {
            Err(WeiError::CommandAborted { attempts, .. }) => assert_eq!(attempts, 1),
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(e.counters.completed, 0);
    }

    #[test]
    fn dispatch_unknown_module_errors() {
        let mut e = engine();
        assert!(matches!(
            e.dispatch(SimTime::ZERO, "ghost", "transfer", &ActionArgs::none()),
            Err(WeiError::UnknownModule(_))
        ));
    }

    #[test]
    fn seq_clock_accumulates() {
        let mut c = SeqClock::new();
        assert_eq!(Clock::now(&c), SimTime::ZERO);
        c.wait(SimDuration::from_secs(5));
        c.wait(SimDuration::from_secs(7));
        assert_eq!(Clock::now(&c), SimTime::from_secs(12));
    }
}
