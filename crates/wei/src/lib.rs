//! `sdl-wei` — the workflow-execution framework (the WEI platform
//! substitute, paper §2.2).
//!
//! * [`WorkcellConfig`] / [`Workcell`] — declarative YAML workcells
//!   instantiated into live instrument fleets over a shared world;
//! * [`Workflow`] / [`Payload`] — declarative workflows with `${var}`
//!   substitution and protocol payload attachment;
//! * [`Engine`] — step dispatch with fault injection, automatic retries,
//!   simulated human recovery, run logs and the command accounting behind
//!   the paper's TWH / CCWH metrics;
//! * [`LiveExecutor`] — the same workcell with every module on its own
//!   server thread (architectural fidelity / demos);
//! * [`RPL_WORKCELL_YAML`] — the default five-module RPL cell (Figure 1).
//!
//! Workflows are portable: the same document runs on any workcell providing
//! the referenced module names and actions, which is the paper's central
//! platform claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod live;
mod runlog;
mod workcell;
mod workflow;

pub use engine::{
    Clock, CommandResult, Counters, Engine, Reliability, RetryPolicy, RunOutput, SeqClock,
};
pub use error::WeiError;
pub use live::LiveExecutor;
pub use runlog::{StepRecord, WorkflowRunLog};
pub use workcell::{workcell_diagram, ModuleConfig, Workcell, WorkcellConfig, RPL_WORKCELL_YAML};
pub use workflow::{Payload, Workflow, WorkflowStep};
