//! Workcell configuration and instantiation.
//!
//! "A declarative YAML notation is used to specify how a workcell is
//! configured from a set of modules" (§2.2). [`WorkcellConfig`] is the
//! parsed document; [`Workcell`] is the live thing: instrument simulators
//! plus the shared [`World`].

use crate::error::WeiError;
use sdl_color::{DyeSet, MixKind};
use sdl_conf::{from_yaml, Value, ValueExt};
use sdl_instruments::{
    Barty, CameraGeometry, CameraSim, DriftSpec, Fidelity, Instrument, ModuleKind, Ot2, Pf400,
    ReservoirBank, SciClops, TimingModel, World,
};
use std::collections::BTreeMap;

/// One module entry of a workcell document.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleConfig {
    /// Instance name (unique in the workcell).
    pub name: String,
    /// Device class.
    pub kind: ModuleKind,
    /// Class-specific configuration subtree.
    pub config: Value,
}

/// A parsed workcell document.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkcellConfig {
    /// Workcell name.
    pub name: String,
    /// Modules in declaration order.
    pub modules: Vec<ModuleConfig>,
}

impl WorkcellConfig {
    /// Parse a workcell YAML document.
    pub fn from_yaml(src: &str) -> Result<WorkcellConfig, WeiError> {
        let doc = from_yaml(src)?;
        let name = doc.req_str("name")?.to_string();
        let mut modules = Vec::new();
        for m in doc.req_seq("modules")? {
            let mod_name = m.req_str("name")?.to_string();
            let type_name = m.req_str("type")?;
            let kind = ModuleKind::parse(type_name)
                .ok_or_else(|| WeiError::Invalid(format!("unknown module type '{type_name}'")))?;
            if modules.iter().any(|mc: &ModuleConfig| mc.name == mod_name) {
                return Err(WeiError::Invalid(format!("duplicate module name '{mod_name}'")));
            }
            modules.push(ModuleConfig {
                name: mod_name,
                kind,
                config: m.get("config").cloned().unwrap_or_else(Value::map),
            });
        }
        if modules.is_empty() {
            return Err(WeiError::Invalid(format!("workcell '{name}' has no modules")));
        }
        Ok(WorkcellConfig { name, modules })
    }

    /// Names of modules of a given kind.
    pub fn modules_of(&self, kind: ModuleKind) -> Vec<&str> {
        self.modules.iter().filter(|m| m.kind == kind).map(|m| m.name.as_str()).collect()
    }

    /// Default every camera module that does not specify its own
    /// `fidelity` to the given profile name. This is how an application
    /// config's camera-fidelity axis reaches the instantiated workcell: an
    /// explicit per-camera setting in the workcell document stays
    /// authoritative.
    pub fn default_camera_fidelity(&mut self, fidelity: &str) {
        use sdl_conf::ValueExt as _;
        for m in &mut self.modules {
            if m.kind == ModuleKind::Camera && m.config.opt_str("fidelity").is_none() {
                m.config.set("fidelity", fidelity);
            }
        }
    }

    /// Default every camera module that does not specify its own `drift`
    /// to the given drift profile and random-walk seed. The application
    /// config's illumination-drift axis reaches the instantiated workcell
    /// through here, mirroring [`WorkcellConfig::default_camera_fidelity`];
    /// an explicit per-camera setting in the workcell document stays
    /// authoritative.
    pub fn default_camera_drift(&mut self, drift: &str, seed: u64) {
        use sdl_conf::ValueExt as _;
        for m in &mut self.modules {
            if m.kind == ModuleKind::Camera && m.config.opt_str("drift").is_none() {
                m.config.set("drift", drift);
                m.config.set("drift_seed", seed as i64);
            }
        }
    }
}

/// A live workcell: instrument simulators over a shared world.
pub struct Workcell {
    /// The parsed configuration this cell was built from.
    pub config: WorkcellConfig,
    /// Shared physical state.
    pub world: World,
    /// Calibrated action timings.
    pub timing: TimingModel,
    instruments: BTreeMap<String, Box<dyn Instrument>>,
}

impl Workcell {
    /// Instantiate every module of `config` with the given dye set and
    /// mixing model.
    pub fn instantiate(
        config: WorkcellConfig,
        dyes: DyeSet,
        mix: MixKind,
    ) -> Result<Workcell, WeiError> {
        let mut world = World::new(dyes.clone(), mix);
        world.add_slot("trash");
        let mut instruments: BTreeMap<String, Box<dyn Instrument>> = BTreeMap::new();

        for m in &config.modules {
            let c = &m.config;
            match m.kind {
                ModuleKind::PlateCrane => {
                    let exchange = c
                        .opt_str("exchange")
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("{}.exchange", m.name));
                    let towers: Vec<u32> = match c.get("towers").and_then(Value::as_seq) {
                        Some(seq) => seq
                            .iter()
                            .map(|v| {
                                v.as_i64().map(|n| n.max(0) as u32).ok_or_else(|| {
                                    WeiError::Invalid(format!(
                                        "{}: towers must be integers",
                                        m.name
                                    ))
                                })
                            })
                            .collect::<Result<_, _>>()?,
                        None => vec![10, 10, 10, 10],
                    };
                    world.add_slot(exchange.clone());
                    instruments
                        .insert(m.name.clone(), Box::new(SciClops::new(&m.name, towers, exchange)));
                }
                ModuleKind::Manipulator => {
                    instruments.insert(m.name.clone(), Box::new(Pf400::new(&m.name)));
                }
                ModuleKind::LiquidHandler => {
                    let deck = c
                        .opt_str("deck")
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("{}.deck", m.name));
                    let capacity = c.opt_f64("reservoir_capacity_ul").unwrap_or(4000.0);
                    let tips = c.opt_i64("tips").unwrap_or(960).max(0) as u32;
                    world.add_slot(deck.clone());
                    world.add_bank(m.name.clone(), ReservoirBank::full(&dyes, capacity));
                    instruments.insert(
                        m.name.clone(),
                        Box::new(Ot2::new(&m.name, deck, m.name.clone(), tips)),
                    );
                }
                ModuleKind::LiquidReplenisher => {
                    let feeds = c
                        .opt_str("feeds")
                        .ok_or_else(|| {
                            WeiError::Invalid(format!("{}: needs 'feeds: <ot2 name>'", m.name))
                        })?
                        .to_string();
                    let stock = c.opt_f64("stock_ul").unwrap_or(2_000_000.0);
                    instruments.insert(
                        m.name.clone(),
                        Box::new(Barty::new(&m.name, feeds, vec![stock; dyes.len()])),
                    );
                }
                ModuleKind::Camera => {
                    let nest = c
                        .opt_str("nest")
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("{}.nest", m.name));
                    world.add_slot(nest.clone());
                    let mut cam = CameraSim::new(&m.name, nest);
                    if let Some(v) = c.opt_str("fidelity") {
                        let profile = Fidelity::parse(v).ok_or_else(|| {
                            WeiError::Invalid(format!(
                                "{}: unknown camera fidelity '{v}' (valid: {})",
                                m.name,
                                Fidelity::valid_names()
                            ))
                        })?;
                        cam.camera = CameraGeometry::for_fidelity(profile);
                    }
                    if let Some(v) = c.opt_f64("noise_sigma") {
                        cam.lighting.noise_sigma = v;
                    }
                    if let Some(v) = c.opt_f64("vignette") {
                        cam.lighting.vignette = v;
                    }
                    if let Some(v) = c.opt_f64("max_shift_px") {
                        cam.max_shift_px = v;
                    }
                    if let Some(v) = c.opt_f64("max_rot_deg") {
                        cam.max_rot_deg = v;
                    }
                    if let Some(v) = c.opt_str("drift") {
                        let drift = DriftSpec::parse(v).ok_or_else(|| {
                            WeiError::Invalid(format!(
                                "{}: unknown camera drift '{v}' (valid: {})",
                                m.name,
                                DriftSpec::valid_names()
                            ))
                        })?;
                        if cam.camera.fidelity == Fidelity::Full {
                            return Err(WeiError::Invalid(format!(
                                "{}: illumination drift needs the counter-based renderer \
                                 (fast/lowres); the 'full' reference path is frozen",
                                m.name
                            )));
                        }
                        cam.drift = Some(drift);
                        cam.drift_seed = c.opt_i64("drift_seed").unwrap_or(0) as u64;
                    }
                    instruments.insert(m.name.clone(), Box::new(cam));
                }
            }
        }

        // Validate barty plumbing after all banks exist.
        for m in &config.modules {
            if m.kind == ModuleKind::LiquidReplenisher {
                let feeds = m.config.opt_str("feeds").unwrap_or_default();
                if world.bank(feeds).is_err() {
                    return Err(WeiError::Invalid(format!(
                        "{}: feeds '{feeds}', which is not a liquid handler",
                        m.name
                    )));
                }
            }
        }

        Ok(Workcell { config, world, timing: TimingModel::default(), instruments })
    }

    /// Module names in declaration order.
    pub fn module_names(&self) -> Vec<String> {
        self.config.modules.iter().map(|m| m.name.clone()).collect()
    }

    /// Does this cell have a module with that name?
    pub fn has_module(&self, name: &str) -> bool {
        self.instruments.contains_key(name)
    }

    /// Immutable instrument access.
    pub fn instrument(&self, name: &str) -> Option<&dyn Instrument> {
        self.instruments.get(name).map(|b| b.as_ref())
    }

    /// Mutable instrument access.
    pub fn instrument_mut(&mut self, name: &str) -> Option<&mut Box<dyn Instrument>> {
        self.instruments.get_mut(name)
    }

    /// Deconstruct into configuration, world, timing and instruments (used
    /// by the live executor to move instruments onto server threads).
    pub fn into_parts(
        self,
    ) -> (WorkcellConfig, World, TimingModel, BTreeMap<String, Box<dyn Instrument>>) {
        (self.config, self.world, self.timing, self.instruments)
    }

    /// Split borrow used by the engine: one instrument plus the world.
    pub(crate) fn dispatch_parts(
        &mut self,
        name: &str,
    ) -> Option<(&mut Box<dyn Instrument>, &mut World, &TimingModel)> {
        let Workcell { world, timing, instruments, .. } = self;
        instruments.get_mut(name).map(|inst| (inst, &mut *world, &*timing))
    }
}

/// Render a workcell as an ASCII topology sketch (the Figure-1 equivalent):
/// the crane feeds the arm, the arm shuttles between handler decks and the
/// camera nest, replenishers hang off their handlers.
pub fn workcell_diagram(config: &WorkcellConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "workcell: {}", config.name);
    let of = |kind: ModuleKind| config.modules_of(kind);
    let cranes = of(ModuleKind::PlateCrane);
    let arms = of(ModuleKind::Manipulator);
    let handlers = of(ModuleKind::LiquidHandler);
    let cameras = of(ModuleKind::Camera);
    let arm = arms.first().copied().unwrap_or("-");
    for crane in &cranes {
        let _ = writeln!(out, "  [{crane}] plate towers");
        let _ = writeln!(out, "      |  exchange nest");
    }
    let _ = writeln!(out, "  ({arm}) <== rail: shuttles every plate ==>");
    for h in &handlers {
        let feeder = config
            .modules
            .iter()
            .find(|m| {
                m.kind == ModuleKind::LiquidReplenisher && m.config.opt_str("feeds") == Some(*h)
            })
            .map(|m| m.name.as_str());
        match feeder {
            Some(b) => {
                let _ = writeln!(
                    out,
                    "      |-- [{h}] deck + reservoirs <~~ pumps ~~ [{b}] stock vessels"
                );
            }
            None => {
                let _ = writeln!(out, "      |-- [{h}] deck + reservoirs");
            }
        }
    }
    for cam in &cameras {
        let _ = writeln!(out, "      |-- [{cam}] imaging nest + ring light + ArUco marker");
    }
    let _ = writeln!(out, "      |-- [trash]");
    out
}

/// The default RPL workcell document (paper Figure 1, five modules).
pub const RPL_WORKCELL_YAML: &str = r#"# Argonne RPL workcell, color-picker subset (paper Figure 1)
name: rpl_workcell
modules:
  - name: sciclops
    type: plate_crane
    config:
      towers: [10, 10, 10, 10]
      exchange: sciclops.exchange
  - name: pf400
    type: manipulator
  - name: ot2
    type: liquid_handler
    config:
      deck: ot2.deck
      reservoir_capacity_ul: 4000
      tips: 960
  - name: barty
    type: liquid_replenisher
    config:
      feeds: ot2
      stock_ul: 2000000
  - name: camera
    type: camera
    config:
      nest: camera.nest
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_rpl_workcell() {
        let cfg = WorkcellConfig::from_yaml(RPL_WORKCELL_YAML).unwrap();
        assert_eq!(cfg.name, "rpl_workcell");
        assert_eq!(cfg.modules.len(), 5);
        assert_eq!(cfg.modules_of(ModuleKind::Manipulator), vec!["pf400"]);
        assert_eq!(cfg.modules_of(ModuleKind::LiquidHandler), vec!["ot2"]);
    }

    #[test]
    fn instantiates_instruments_and_slots() {
        let cfg = WorkcellConfig::from_yaml(RPL_WORKCELL_YAML).unwrap();
        let cell = Workcell::instantiate(cfg, DyeSet::cmyk(), MixKind::BeerLambert).unwrap();
        for m in ["sciclops", "pf400", "ot2", "barty", "camera"] {
            assert!(cell.has_module(m), "{m} missing");
        }
        assert!(cell.world.plate_at("ot2.deck").unwrap().is_none());
        assert!(cell.world.plate_at("camera.nest").unwrap().is_none());
        assert!(cell.world.plate_at("trash").unwrap().is_none());
        assert_eq!(cell.world.bank("ot2").unwrap().reservoirs.len(), 4);
        assert_eq!(cell.instrument("ot2").unwrap().kind(), ModuleKind::LiquidHandler);
    }

    #[test]
    fn duplicate_module_names_rejected() {
        let doc = "name: x\nmodules:\n  - name: a\n    type: manipulator\n  - name: a\n    type: camera\n";
        assert!(matches!(WorkcellConfig::from_yaml(doc), Err(WeiError::Invalid(_))));
    }

    #[test]
    fn unknown_type_rejected() {
        let doc = "name: x\nmodules:\n  - name: a\n    type: teleporter\n";
        assert!(matches!(WorkcellConfig::from_yaml(doc), Err(WeiError::Invalid(_))));
    }

    #[test]
    fn barty_must_feed_a_liquid_handler() {
        let doc = "name: x\nmodules:\n  - name: barty\n    type: liquid_replenisher\n    config: {feeds: nowhere}\n";
        let cfg = WorkcellConfig::from_yaml(doc).unwrap();
        assert!(matches!(
            Workcell::instantiate(cfg, DyeSet::cmyk(), MixKind::BeerLambert),
            Err(WeiError::Invalid(_))
        ));
    }

    #[test]
    fn diagram_lists_every_module() {
        let cfg = WorkcellConfig::from_yaml(RPL_WORKCELL_YAML).unwrap();
        let d = workcell_diagram(&cfg);
        for m in ["sciclops", "pf400", "ot2", "barty", "camera"] {
            assert!(d.contains(m), "{m} missing from diagram:\n{d}");
        }
        assert!(d.contains("pumps"));
        assert!(d.contains("trash"));
    }

    #[test]
    fn two_ot2_cell_instantiates() {
        let doc = r#"
name: dual
modules:
  - name: pf400
    type: manipulator
  - name: ot2_a
    type: liquid_handler
  - name: ot2_b
    type: liquid_handler
  - name: camera
    type: camera
"#;
        let cfg = WorkcellConfig::from_yaml(doc).unwrap();
        let cell = Workcell::instantiate(cfg, DyeSet::cmyk(), MixKind::BeerLambert).unwrap();
        assert!(cell.world.bank("ot2_a").is_ok());
        assert!(cell.world.bank("ot2_b").is_ok());
        assert!(cell.world.plate_at("ot2_a.deck").unwrap().is_none());
        assert!(cell.world.plate_at("ot2_b.deck").unwrap().is_none());
    }
}
