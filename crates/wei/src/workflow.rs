//! Declarative workflows: "users can specify, again using a declarative
//! notation, workflows that perform sets of actions on modules" (§2.2).

use crate::error::WeiError;
use sdl_conf::{from_yaml, Value, ValueExt};
use sdl_instruments::{ActionArgs, ProtocolSpec};
use std::collections::BTreeMap;

/// One step of a workflow: an action on a module.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowStep {
    /// Human-readable step name (appears in run logs).
    pub name: String,
    /// Target module.
    pub module: String,
    /// Action to invoke.
    pub action: String,
    /// Static string arguments; values may contain `${var}` references into
    /// the run payload, and the special value `$payload` marks the protocol
    /// attachment point.
    pub args: BTreeMap<String, String>,
}

/// A named workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    /// Workflow name (e.g. `cp_wf_mixcolor`).
    pub name: String,
    /// Modules this workflow touches (declared up front for validation).
    pub modules: Vec<String>,
    /// Steps in execution order.
    pub steps: Vec<WorkflowStep>,
}

/// Runtime inputs to a workflow run.
#[derive(Debug, Clone, Default)]
pub struct Payload {
    /// Variables substituted into `${var}` references.
    pub vars: BTreeMap<String, String>,
    /// Protocol attached where a step argument says `protocol: $payload`.
    pub protocol: Option<ProtocolSpec>,
}

impl Payload {
    /// Empty payload.
    pub fn none() -> Payload {
        Payload::default()
    }

    /// Payload carrying a protocol.
    pub fn with_protocol(protocol: ProtocolSpec) -> Payload {
        Payload { vars: BTreeMap::new(), protocol: Some(protocol) }
    }

    /// Builder: add a variable.
    pub fn var(mut self, key: impl Into<String>, value: impl Into<String>) -> Payload {
        self.vars.insert(key.into(), value.into());
        self
    }
}

impl Workflow {
    /// Parse a workflow document.
    pub fn from_yaml(src: &str) -> Result<Workflow, WeiError> {
        let doc = from_yaml(src)?;
        Workflow::from_value(&doc)
    }

    /// Build from an already-parsed value tree.
    pub fn from_value(doc: &Value) -> Result<Workflow, WeiError> {
        let name = doc.req_str("name")?.to_string();
        let modules = doc
            .req_seq("modules")?
            .iter()
            .map(|m| {
                m.as_str().map(str::to_string).ok_or_else(|| {
                    WeiError::Invalid(format!("{name}: modules entries must be strings"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut steps = Vec::new();
        for (i, step) in doc.req_seq("steps")?.iter().enumerate() {
            let module = step.req_str("module")?.to_string();
            if !modules.contains(&module) {
                return Err(WeiError::Invalid(format!(
                    "{name}: step {} uses module '{module}' not in the modules list",
                    i + 1
                )));
            }
            let mut args = BTreeMap::new();
            if let Some(arg_map) = step.get("args").and_then(Value::as_map) {
                for (k, v) in arg_map {
                    let vs = match v {
                        Value::Str(s) => s.clone(),
                        Value::Int(n) => n.to_string(),
                        Value::Float(f) => format!("{f}"),
                        Value::Bool(b) => b.to_string(),
                        other => {
                            return Err(WeiError::Invalid(format!(
                                "{name}: step {} arg '{k}' has unsupported type {}",
                                i + 1,
                                other.type_name()
                            )))
                        }
                    };
                    args.insert(k.clone(), vs);
                }
            }
            steps.push(WorkflowStep {
                name: step
                    .opt_str("name")
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("step-{}", i + 1)),
                module,
                action: step.req_str("action")?.to_string(),
                args,
            });
        }
        if steps.is_empty() {
            return Err(WeiError::Invalid(format!("{name}: workflow has no steps")));
        }
        Ok(Workflow { name, modules, steps })
    }

    /// Retarget the workflow onto different module names ("workflows can be
    /// retargeted to different modules and workcells that provide comparable
    /// capabilities", §2.2). Names absent from `map` are kept.
    pub fn retarget(&self, map: &BTreeMap<String, String>) -> Workflow {
        let rename = |name: &String| map.get(name).cloned().unwrap_or_else(|| name.clone());
        Workflow {
            name: self.name.clone(),
            modules: self.modules.iter().map(rename).collect(),
            steps: self
                .steps
                .iter()
                .map(|s| WorkflowStep {
                    name: s.name.clone(),
                    module: rename(&s.module),
                    action: s.action.clone(),
                    args: s.args.clone(),
                })
                .collect(),
        }
    }

    /// Resolve a step's arguments against a payload: `${var}` substitution
    /// plus protocol attachment for `protocol: $payload`.
    pub fn resolve_args(step: &WorkflowStep, payload: &Payload) -> Result<ActionArgs, WeiError> {
        let mut out = ActionArgs::none();
        for (k, v) in &step.args {
            if k == "protocol" && v == "$payload" {
                let p = payload.protocol.clone().ok_or_else(|| {
                    WeiError::Invalid(format!("step '{}' needs a protocol payload", step.name))
                })?;
                out = out.with_protocol(p);
                continue;
            }
            out = out.with(k.clone(), substitute(v, &payload.vars, &step.name)?);
        }
        Ok(out)
    }
}

/// Replace `${var}` references.
fn substitute(
    template: &str,
    vars: &BTreeMap<String, String>,
    step: &str,
) -> Result<String, WeiError> {
    if !template.contains("${") {
        return Ok(template.to_string());
    }
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    while let Some(start) = rest.find("${") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        let end = after.find('}').ok_or_else(|| {
            WeiError::Invalid(format!("step '{step}': unterminated ${{ in '{template}'"))
        })?;
        let key = &after[..end];
        let val = vars.get(key).ok_or_else(|| {
            WeiError::Invalid(format!("step '{step}': undefined variable '{key}'"))
        })?;
        out.push_str(val);
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIX: &str = r#"
name: cp_wf_mixcolor
modules: [pf400, ot2, camera]
steps:
  - name: Transfer plate to ot2
    module: pf400
    action: transfer
    args: {source: camera.nest, target: ot2.deck}
  - name: Mix colors
    module: ot2
    action: run_protocol
    args: {protocol: $payload}
  - name: Return plate to camera
    module: pf400
    action: transfer
    args: {source: ot2.deck, target: camera.nest}
  - name: Take picture
    module: camera
    action: take_picture
"#;

    #[test]
    fn parses_the_mixcolor_workflow() {
        let wf = Workflow::from_yaml(MIX).unwrap();
        assert_eq!(wf.name, "cp_wf_mixcolor");
        assert_eq!(wf.modules, vec!["pf400", "ot2", "camera"]);
        assert_eq!(wf.steps.len(), 4);
        assert_eq!(wf.steps[0].args["source"], "camera.nest");
        assert_eq!(wf.steps[3].action, "take_picture");
    }

    #[test]
    fn rejects_undeclared_module() {
        let bad = "name: x\nmodules: [pf400]\nsteps:\n  - module: ot2\n    action: run_protocol\n";
        assert!(matches!(Workflow::from_yaml(bad), Err(WeiError::Invalid(_))));
    }

    #[test]
    fn rejects_empty_steps() {
        let bad = "name: x\nmodules: [pf400]\nsteps: []\n";
        assert!(matches!(Workflow::from_yaml(bad), Err(WeiError::Invalid(_))));
    }

    #[test]
    fn payload_protocol_attachment() {
        let wf = Workflow::from_yaml(MIX).unwrap();
        let payload =
            Payload::with_protocol(ProtocolSpec { name: "mix".into(), dispenses: vec![] });
        let args = Workflow::resolve_args(&wf.steps[1], &payload).unwrap();
        assert!(args.protocol.is_some());
        // Step without protocol arg ignores the payload.
        let args = Workflow::resolve_args(&wf.steps[0], &payload).unwrap();
        assert!(args.protocol.is_none());
        // Missing payload where required is an error.
        assert!(Workflow::resolve_args(&wf.steps[1], &Payload::none()).is_err());
    }

    #[test]
    fn variable_substitution() {
        let step = WorkflowStep {
            name: "move".into(),
            module: "pf400".into(),
            action: "transfer".into(),
            args: [
                ("source".to_string(), "${from}".to_string()),
                ("target".to_string(), "x${to}y".to_string()),
            ]
            .into_iter()
            .collect(),
        };
        let payload = Payload::none().var("from", "a.nest").var("to", "B");
        let args = Workflow::resolve_args(&step, &payload).unwrap();
        assert_eq!(args.get("source"), Some("a.nest"));
        assert_eq!(args.get("target"), Some("xBy"));
        // Undefined variable errors.
        let bad = Payload::none();
        assert!(Workflow::resolve_args(&step, &bad).is_err());
    }

    #[test]
    fn unterminated_reference_is_an_error() {
        let step = WorkflowStep {
            name: "s".into(),
            module: "m".into(),
            action: "a".into(),
            args: [("k".to_string(), "${oops".to_string())].into_iter().collect(),
        };
        assert!(Workflow::resolve_args(&step, &Payload::none()).is_err());
    }
}
