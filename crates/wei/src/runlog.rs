//! Per-workflow run logs.
//!
//! "For each workflow that is run, a file is created that details the step
//! names run, their start time, end time and total duration" (paper §2.3).
//! [`WorkflowRunLog`] is that file's in-memory form; it renders to the same
//! kind of text table and serializes to JSON for publication.

use sdl_conf::{Value, ValueExt};
use sdl_desim::{SimDuration, SimTime};
use std::fmt::Write as _;

/// One executed step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Step name from the workflow document.
    pub name: String,
    /// Module that executed it.
    pub module: String,
    /// Action invoked.
    pub action: String,
    /// Step start on the virtual clock.
    pub start: SimTime,
    /// Step end (includes retry and recovery time).
    pub end: SimTime,
    /// Dispatch attempts (1 = clean first try).
    pub attempts: u32,
    /// Whether a simulated human had to intervene.
    pub human_intervened: bool,
}

impl StepRecord {
    /// Wall duration of the step.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// The log of one workflow run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowRunLog {
    /// Workflow name.
    pub workflow: String,
    /// Run start.
    pub start: SimTime,
    /// Run end.
    pub end: SimTime,
    /// Steps in execution order.
    pub records: Vec<StepRecord>,
}

impl WorkflowRunLog {
    /// Total run duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Render the text table the paper describes (one line per step).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "workflow: {}  ({} -> {}, {})",
            self.workflow,
            self.start,
            self.end,
            self.duration()
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "  {:<32} {:<10} {:<14} start={:<12} end={:<12} duration={}{}",
                r.name,
                r.module,
                r.action,
                r.start.to_string(),
                r.end.to_string(),
                r.duration(),
                if r.attempts > 1 { format!("  attempts={}", r.attempts) } else { String::new() }
            );
        }
        out
    }

    /// Serialize for the data portal.
    pub fn to_value(&self) -> Value {
        let mut root = Value::map();
        root.set("workflow", self.workflow.as_str());
        root.set("start_s", self.start.as_secs_f64());
        root.set("end_s", self.end.as_secs_f64());
        root.set("duration_s", self.duration().as_secs_f64());
        let mut steps = Value::seq();
        for r in &self.records {
            let mut s = Value::map();
            s.set("name", r.name.as_str());
            s.set("module", r.module.as_str());
            s.set("action", r.action.as_str());
            s.set("start_s", r.start.as_secs_f64());
            s.set("end_s", r.end.as_secs_f64());
            s.set("duration_s", r.duration().as_secs_f64());
            s.set("attempts", r.attempts as i64);
            s.set("human_intervened", r.human_intervened);
            steps.push(s);
        }
        root.set("steps", steps);
        root
    }

    /// Parse a log back from its [`WorkflowRunLog::to_value`] form (`None`
    /// on a malformed tree). Published timestamps are exact
    /// integer-microsecond clock readings formatted with
    /// shortest-round-trip floats, so the reconstruction recovers the
    /// original log bit for bit — this is how replayed runs rebuild real
    /// Table-1 telemetry from archived records.
    pub fn from_value(v: &Value) -> Option<WorkflowRunLog> {
        let time = |v: &Value, key: &str| -> Option<SimTime> {
            Some(SimTime::from_micros((v.opt_f64(key)? * 1e6).round() as u64))
        };
        let mut records = Vec::new();
        for s in v.get("steps")?.as_seq()? {
            records.push(StepRecord {
                name: s.opt_str("name")?.to_string(),
                module: s.opt_str("module")?.to_string(),
                action: s.opt_str("action")?.to_string(),
                start: time(s, "start_s")?,
                end: time(s, "end_s")?,
                attempts: s.opt_i64("attempts")? as u32,
                human_intervened: s.opt_bool("human_intervened")?,
            });
        }
        Some(WorkflowRunLog {
            workflow: v.opt_str("workflow")?.to_string(),
            start: time(v, "start_s")?,
            end: time(v, "end_s")?,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdl_conf::ValueExt;

    fn log() -> WorkflowRunLog {
        WorkflowRunLog {
            workflow: "cp_wf_mixcolor".into(),
            start: SimTime::from_secs(100),
            end: SimTime::from_secs(328),
            records: vec![
                StepRecord {
                    name: "Transfer plate to ot2".into(),
                    module: "pf400".into(),
                    action: "transfer".into(),
                    start: SimTime::from_secs(100),
                    end: SimTime::from_secs(134),
                    attempts: 1,
                    human_intervened: false,
                },
                StepRecord {
                    name: "Mix colors".into(),
                    module: "ot2".into(),
                    action: "run_protocol".into(),
                    start: SimTime::from_secs(134),
                    end: SimTime::from_secs(277),
                    attempts: 2,
                    human_intervened: false,
                },
            ],
        }
    }

    #[test]
    fn durations() {
        let l = log();
        assert_eq!(l.duration(), SimDuration::from_secs(228));
        assert_eq!(l.records[1].duration(), SimDuration::from_secs(143));
    }

    #[test]
    fn render_contains_steps_and_attempts() {
        let text = log().render();
        assert!(text.contains("cp_wf_mixcolor"));
        assert!(text.contains("Transfer plate to ot2"));
        assert!(text.contains("attempts=2"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn value_roundtrip_is_exact() {
        let l = log();
        let back = WorkflowRunLog::from_value(&l.to_value()).expect("parses");
        assert_eq!(back, l);
        assert_eq!(WorkflowRunLog::from_value(&Value::map()), None);
    }

    #[test]
    fn json_roundtrip_structure() {
        let v = log().to_value();
        assert_eq!(v.req_str("workflow").unwrap(), "cp_wf_mixcolor");
        assert_eq!(v.req_seq("steps").unwrap().len(), 2);
        assert_eq!(v.req_f64("steps.1.duration_s").unwrap(), 143.0);
        assert_eq!(v.req_i64("steps.1.attempts").unwrap(), 2);
        // Survives JSON encoding.
        let text = sdl_conf::to_json(&v);
        let back = sdl_conf::from_json(&text).unwrap();
        assert_eq!(back.req_str("workflow").unwrap(), "cp_wf_mixcolor");
    }
}
