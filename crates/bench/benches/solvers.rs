//! Solver proposal throughput with a realistic 64-observation history,
//! including the GA batch-strategy ablation (see bin `ablation_ga`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdl_color::Rgb8;
use sdl_solvers::{Observation, SolverKind};

fn history(n: usize) -> Vec<Observation> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..n)
        .map(|_| {
            let ratios: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
            let t = [0.18, 0.16, 0.16, 0.62];
            let score =
                ratios.iter().zip(&t).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt() * 100.0;
            Observation { ratios, measured: Rgb8::new(100, 100, 100), score }
        })
        .collect()
}

fn bench_proposals(c: &mut Criterion) {
    let h = history(64);
    let mut g = c.benchmark_group("propose_b4_h64");
    g.sample_size(20);
    for kind in [SolverKind::Genetic, SolverKind::Bayesian, SolverKind::Random, SolverKind::Grid] {
        g.bench_function(kind.name(), |b| {
            let mut solver = kind.build(4);
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| black_box(solver.propose(Rgb8::PAPER_TARGET, &h, 4, &mut rng)))
        });
    }
    g.finish();
}

fn bench_ga_batch_sizes(c: &mut Criterion) {
    // Ablation: the faithful elite+thirds scheme (B >= 4) vs the degenerate
    // small-batch path (B < 4).
    let h = history(64);
    let mut g = c.benchmark_group("ga_batch");
    for batch in [1usize, 2, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let mut solver = SolverKind::Genetic.build(4);
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| black_box(solver.propose(Rgb8::PAPER_TARGET, &h, batch, &mut rng)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_proposals, bench_ga_batch_sizes);
criterion_main!(benches);
