//! Simulation-kernel benchmarks: event-queue throughput and the process
//! executive's context-switch cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdl_desim::{EventQueue, RngHub, SimDuration, SimTime, Simulation};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.push(SimTime::from_micros((i * 7919) % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_executive(c: &mut Criterion) {
    let mut g = c.benchmark_group("executive");
    g.sample_size(10);
    // 8 processes × 50 holds with a shared resource: measures the
    // coordinator's wake/request round-trip (thread-based coroutines).
    g.bench_function("8_procs_400_holds", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(RngHub::new(1)).without_trace();
            let arm = sim.resource("arm", 1);
            for i in 0..8 {
                sim.process(format!("p{i}"), move |ctx| {
                    for _ in 0..50 {
                        ctx.acquire(arm);
                        ctx.hold(SimDuration::from_millis(10));
                        ctx.release(arm);
                    }
                });
            }
            black_box(sim.run().unwrap().end)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_executive);
criterion_main!(benches);
