//! Workflow-engine benchmarks: YAML parsing, validation, dispatch, and the
//! synchronous-vs-background publication ablation (see bin `ablation_mixing`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdl_color::{DyeSet, MixKind};
use sdl_conf::from_yaml;
use sdl_datapub::{publish_sync, AcdcPortal, BlobStore, FlowJob, PublishFlow, SampleRecord};
use sdl_desim::RngHub;
use sdl_wei::{Engine, Payload, SeqClock, Workcell, WorkcellConfig, Workflow, RPL_WORKCELL_YAML};
use std::sync::Arc;

fn bench_parsing(c: &mut Criterion) {
    c.bench_function("parse_workcell_yaml", |b| {
        b.iter(|| black_box(WorkcellConfig::from_yaml(black_box(RPL_WORKCELL_YAML)).unwrap()))
    });
    c.bench_function("parse_yaml_value", |b| {
        b.iter(|| black_box(from_yaml(black_box(RPL_WORKCELL_YAML)).unwrap()))
    });
}

fn engine() -> Engine {
    let cfg = WorkcellConfig::from_yaml(RPL_WORKCELL_YAML).unwrap();
    let cell = Workcell::instantiate(cfg, DyeSet::cmyk(), MixKind::BeerLambert).unwrap();
    Engine::new(cell, RngHub::new(1))
}

fn bench_dispatch(c: &mut Criterion) {
    // A plate-logistics cycle: newplate steps minus the camera (no render
    // cost — this isolates engine overhead).
    let wf = Workflow::from_yaml(
        "name: logistics\nmodules: [sciclops, pf400, barty]\nsteps:\n  - name: Get\n    module: sciclops\n    action: get_plate\n  - name: Stage\n    module: pf400\n    action: transfer\n    args: {source: sciclops.exchange, target: camera.nest}\n  - name: Trash\n    module: pf400\n    action: transfer\n    args: {source: camera.nest, target: trash}\n  - name: Drain\n    module: barty\n    action: drain_colors\n  - name: Fill\n    module: barty\n    action: fill_colors\n",
    )
    .unwrap();
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    g.bench_function("workflow_5_steps", |b| {
        b.iter_batched(
            engine,
            |mut e| {
                let mut clock = SeqClock::new();
                black_box(e.run_workflow(&mut clock, &wf, &Payload::none()).unwrap());
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn sample_record(i: u32) -> FlowJob {
    FlowJob {
        record: SampleRecord {
            experiment_id: "bench".into(),
            run: 1,
            sample: i,
            well: "A1".into(),
            ratios: vec![0.2; 4],
            volumes_ul: vec![8.0; 4],
            measured: [120, 119, 121],
            target: [120, 120, 120],
            score: 1.4,
            best_so_far: 1.4,
            elapsed_s: 228.0,
            batch_wall_s: None,
            image_ref: None,
        }
        .to_value(),
        image: None,
    }
}

fn bench_publication(c: &mut Criterion) {
    // Ablation: synchronous publication vs the background flow (per 100
    // records). The background worker moves serialization off the control
    // loop, which is what keeps publication out of TWH.
    let mut g = c.benchmark_group("publish_100_records");
    g.sample_size(20);
    g.bench_function("synchronous", |b| {
        b.iter(|| {
            let portal = AcdcPortal::new();
            let store = BlobStore::in_memory();
            for i in 0..100 {
                publish_sync(sample_record(i), &portal, &store).unwrap();
            }
            black_box(portal.len())
        })
    });
    g.bench_function("background_flow", |b| {
        b.iter(|| {
            let portal = Arc::new(AcdcPortal::new());
            let store = Arc::new(BlobStore::in_memory());
            let flow = PublishFlow::start(Arc::clone(&portal), Arc::clone(&store));
            for i in 0..100 {
                flow.publish(sample_record(i));
            }
            flow.flush();
            black_box(portal.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_parsing, bench_dispatch, bench_publication);
criterion_main!(benches);
