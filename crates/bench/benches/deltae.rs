//! Micro-benchmarks: color-difference formulas (the inner loop of grading).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdl_color::{DeltaE, Lab, Rgb8};

fn bench_deltae(c: &mut Criterion) {
    let a = Rgb8::new(118, 123, 119);
    let b = Rgb8::PAPER_TARGET;
    let mut g = c.benchmark_group("deltae");
    for metric in [DeltaE::RgbEuclidean, DeltaE::Cie76, DeltaE::Cie94, DeltaE::Ciede2000] {
        g.bench_function(metric.name(), |bench| {
            bench.iter(|| black_box(metric.between(black_box(a), black_box(b))))
        });
    }
    g.finish();
}

fn bench_conversions(c: &mut Criterion) {
    let rgb = Rgb8::new(120, 120, 120);
    c.bench_function("rgb_to_lab", |b| b.iter(|| black_box(Lab::from_rgb8(black_box(rgb)))));
    let lab = Lab::from_rgb8(rgb);
    c.bench_function("lab_to_rgb", |b| b.iter(|| black_box(lab.to_xyz().to_linear().to_srgb())));
}

criterion_group!(benches, bench_deltae, bench_conversions);
criterion_main!(benches);
