//! Campaign-runner throughput: scenarios/second on a 64-scenario campaign
//! at 1/2/4/8 worker threads. Scenarios are independent simulated labs, so
//! throughput should scale close to linearly until the core count is hit
//! (the acceptance bar: ≥ 2× at 4 threads vs 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdl_core::{AppConfig, CampaignRunner, ScenarioSpec};

const SCENARIOS: usize = 64;

fn scenarios() -> Vec<ScenarioSpec> {
    (0..SCENARIOS)
        .map(|i| {
            ScenarioSpec::new(
                format!("s{i}"),
                AppConfig {
                    sample_budget: 8,
                    batch: 4,
                    seed: 0x5eed ^ i as u64,
                    publish_images: false,
                    ..AppConfig::default()
                },
            )
        })
        .collect()
}

fn bench_runner_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_64_scenarios");
    g.sample_size(10);
    g.throughput(Throughput::Elements(SCENARIOS as u64));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| CampaignRunner::new().threads(t).run(scenarios()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_runner_scaling);
criterion_main!(benches);
