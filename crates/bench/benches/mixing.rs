//! Micro-benchmarks: forward mixing models (the simulated chemistry).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdl_color::{DyeSet, MixKind, Recipe};

fn bench_mixing(c: &mut Criterion) {
    let set = DyeSet::cmyk();
    let recipe = Recipe::new(vec![7.4, 6.2, 6.4, 25.0]).unwrap();
    let mut g = c.benchmark_group("mixing");
    for kind in [MixKind::BeerLambert, MixKind::KubelkaMunk, MixKind::Linear] {
        let model = kind.model();
        g.bench_function(kind.name(), |bench| {
            bench.iter(|| black_box(model.well_color(black_box(&set), black_box(&recipe))))
        });
    }
    g.finish();
}

fn bench_recipe_mapping(c: &mut Criterion) {
    let set = DyeSet::cmyk();
    let ratios = [0.18, 0.16, 0.16, 0.62];
    c.bench_function("recipe_from_ratios", |b| {
        b.iter(|| black_box(Recipe::from_ratios(black_box(&ratios), &set).unwrap()))
    });
}

criterion_group!(benches, bench_mixing, bench_recipe_mapping);
criterion_main!(benches);
