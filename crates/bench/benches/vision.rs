//! Benchmarks for the imaging substrate: rendering a frame and each stage
//! of the §2.4 detection pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdl_color::LinRgb;
use sdl_vision::{
    detect_markers, hough_circles, render, ArucoParams, Detector, HoughParams, PlateScene,
};

fn filled_scene() -> PlateScene {
    let mut scene = PlateScene::empty_plate();
    for i in 0..48 {
        scene.set_well(i / 12, i % 12, LinRgb::new(0.2, 0.15, 0.3));
    }
    scene
}

fn bench_render(c: &mut Criterion) {
    let scene = filled_scene();
    let mut g = c.benchmark_group("vision");
    g.sample_size(20);
    g.bench_function("render_frame_640x480", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(render(&scene, &mut rng)))
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let scene = filled_scene();
    let img = render(&scene, &mut StdRng::seed_from_u64(2));
    let mut g = c.benchmark_group("vision");
    g.sample_size(20);
    g.bench_function("aruco_detect", |b| {
        b.iter(|| black_box(detect_markers(black_box(&img), &ArucoParams::default())))
    });
    g.bench_function("hough_circles", |b| {
        b.iter(|| black_box(hough_circles(black_box(&img), &HoughParams::default())))
    });
    let detector = Detector::default();
    g.bench_function("full_pipeline", |b| {
        b.iter(|| black_box(detector.detect(black_box(&img)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_render, bench_pipeline);
criterion_main!(benches);
