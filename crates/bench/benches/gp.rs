//! Gaussian-process benchmarks: O(n³) fit scaling and acquisition
//! evaluation — the cost profile behind the Bayesian solver (ablation
//! study).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdl_solvers::{Gp, RbfKernel};

fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(7);
    let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..4).map(|_| rng.gen::<f64>()).collect()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            let t = [0.18, 0.16, 0.16, 0.62];
            x.iter().zip(&t).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt() * 100.0
        })
        .collect();
    (xs, ys)
}

fn bench_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp_fit");
    g.sample_size(12);
    for n in [16usize, 64, 128] {
        let (xs, ys) = training_data(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Gp::fit(&xs, &ys, RbfKernel::default()).unwrap()))
        });
    }
    g.finish();
}

fn bench_predict_and_ei(c: &mut Criterion) {
    let (xs, ys) = training_data(64);
    let gp = Gp::fit(&xs, &ys, RbfKernel::default()).unwrap();
    let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let q = vec![0.2, 0.2, 0.2, 0.6];
    c.bench_function("gp_predict_n64", |b| b.iter(|| black_box(gp.predict(black_box(&q)))));
    c.bench_function("gp_ei_n64", |b| {
        b.iter(|| black_box(gp.expected_improvement(black_box(&q), best)))
    });
}

criterion_group!(benches, bench_fit, bench_predict_and_ei);
criterion_main!(benches);
