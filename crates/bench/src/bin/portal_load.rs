//! S1 — load-test the portal serving layer (the ROADMAP's "serves heavy
//! traffic" axis): spin up an in-process `sdl-portal-server` over a
//! synthetic campaign portal, hammer it from N keep-alive client threads,
//! and report throughput plus p50/p99 latency per endpoint.
//!
//! Usage: `cargo run --release -p sdl-bench --bin portal_load --
//!         [--clients 8] [--requests 500] [--records 5000] [--threads 8]
//!         [--max-conns 0]`
//!
//! `--max-conns N` arms the server's live-connection cap: clients past
//! it are shed `503` at accept and reconnect, and the summary reports
//! the shed rate alongside throughput (the overload sweep in the
//! `hotpath` bench records the same admission behavior in
//! `BENCH_hotpath.json`).

use bytes::Bytes;
use sdl_bench::{arg_or, mean, table};
use sdl_datapub::{AcdcPortal, BlobStore, ExperimentRecord, SampleRecord};
use sdl_portal_server::client::HttpClient;
use sdl_portal_server::{spawn, PortalServer, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

/// Latency percentile over an unsorted sample set, microseconds.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn seed_portal(records: usize) -> (Arc<AcdcPortal>, Arc<BlobStore>, String) {
    let portal = Arc::new(AcdcPortal::new());
    let store = Arc::new(BlobStore::in_memory());
    // One modest "plate image" per run keeps /blobs/ realistic.
    let blob = store.put(Bytes::from(vec![0x42u8; 16 * 1024]));
    portal.ingest(
        ExperimentRecord {
            experiment_id: "load".into(),
            name: "ColorPickerRPL".into(),
            date: "2023-08-16".into(),
            target: [120, 120, 120],
            solver: "genetic".into(),
            batch: 15,
            sample_budget: records as u32,
        }
        .to_value(),
    );
    for i in 0..records as u32 {
        portal.ingest(
            SampleRecord {
                experiment_id: "load".into(),
                run: 1 + i / 15,
                sample: i + 1,
                well: format!("A{}", 1 + i % 12),
                ratios: vec![0.25; 4],
                volumes_ul: vec![8.0; 4],
                measured: [(i % 256) as u8, 119, 122],
                target: [120, 120, 120],
                score: 30.0 - (i % 280) as f64 / 10.0,
                best_so_far: 2.5,
                elapsed_s: i as f64 * 228.0,
                batch_wall_s: None,
                image_ref: Some(blob.0.clone()),
            }
            .to_value(),
        );
    }
    (portal, store, blob.0)
}

const ENDPOINTS: [&str; 5] = ["/records", "/summary", "/runs", "/blobs", "/healthz"];

fn endpoint_for(i: usize, blob: &str, records: usize) -> (usize, String) {
    match i % 6 {
        // /records is the hot path: two slots out of six.
        0 => (0, format!("/records?kind=sample&limit=100&offset={}", (i * 100) % records)),
        1 => (0, format!("/records?kind=sample&run={}&limit=50", 1 + i % 12)),
        2 => (1, "/summary?experiment=load".to_string()),
        3 => (2, format!("/runs/{}?experiment=load", 1 + i % 12)),
        4 => (3, format!("/blobs/{blob}")),
        _ => (4, "/healthz".to_string()),
    }
}

fn main() {
    let clients: usize = arg_or("--clients", 8);
    let requests: usize = arg_or("--requests", 500);
    let records: usize = arg_or("--records", 5000);
    let threads: usize = arg_or("--threads", 8);

    if clients > threads {
        eprintln!(
            "warning: {clients} keep-alive clients > {threads} server threads — the server is \
             thread-per-connection, so surplus clients queue behind the pool and latency \
             percentiles will measure the queue, not the server"
        );
    }

    let (portal, store, blob) = seed_portal(records);
    let total_records = portal.len();
    let max_conns: usize = arg_or("--max-conns", 0);
    let server = PortalServer::new(portal, store);
    let handle = spawn(
        server,
        &ServerConfig { addr: "127.0.0.1:0".into(), threads, max_conns, ..ServerConfig::default() },
    )
    .expect("bind load-test server");
    let addr = handle.addr();
    eprintln!(
        "portal_load: {total_records} records behind {}, {clients} clients x {requests} \
         requests, {threads} server threads{}",
        handle.url(),
        if max_conns > 0 { format!(", {max_conns}-connection cap") } else { String::new() }
    );

    let wall = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let blob = blob.clone();
            std::thread::spawn(move || {
                let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); ENDPOINTS.len()];
                let mut errors = 0usize;
                let mut sheds = 0usize;
                // With a connection cap in play the client may be shed at
                // accept; reconnect-and-retry is the backpressure contract.
                let mut client: Option<HttpClient> = None;
                for i in 0..requests {
                    // Offset each client's walk so endpoints interleave.
                    let (slot, path) = endpoint_for(c + i, &blob, records);
                    if client.is_none() {
                        client = HttpClient::connect(addr).ok();
                    }
                    let Some(conn) = client.as_mut() else {
                        errors += 1;
                        continue;
                    };
                    let t0 = Instant::now();
                    match conn.get(&path) {
                        Ok(resp) if resp.status == 200 => {
                            latencies[slot].push(t0.elapsed().as_secs_f64() * 1e6)
                        }
                        Ok(resp) if resp.status == 503 || resp.status == 429 => {
                            sheds += 1;
                            client = None;
                        }
                        _ => {
                            errors += 1;
                            client = None;
                        }
                    }
                }
                (latencies, errors, sheds)
            })
        })
        .collect();

    let mut by_endpoint: Vec<Vec<f64>> = vec![Vec::new(); ENDPOINTS.len()];
    let mut errors = 0usize;
    let mut sheds = 0usize;
    for worker in workers {
        let (latencies, errs, shed) = worker.join().expect("client thread");
        errors += errs;
        sheds += shed;
        for (slot, mut l) in latencies.into_iter().enumerate() {
            by_endpoint[slot].append(&mut l);
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();

    let mut all: Vec<f64> = by_endpoint.iter().flatten().copied().collect();
    all.sort_by(f64::total_cmp);
    let total = all.len();

    println!("# portal_load: {clients} clients x {requests} requests, {threads} server threads");
    let mut rows = Vec::new();
    for (slot, name) in ENDPOINTS.iter().enumerate() {
        let mut l = std::mem::take(&mut by_endpoint[slot]);
        if l.is_empty() {
            continue;
        }
        l.sort_by(f64::total_cmp);
        rows.push(vec![
            name.to_string(),
            l.len().to_string(),
            format!("{:.0}", mean(&l)),
            format!("{:.0}", percentile(&l, 50.0)),
            format!("{:.0}", percentile(&l, 99.0)),
            format!("{:.0}", percentile(&l, 100.0)),
        ]);
    }
    rows.push(vec![
        "TOTAL".to_string(),
        total.to_string(),
        format!("{:.0}", mean(&all)),
        format!("{:.0}", percentile(&all, 50.0)),
        format!("{:.0}", percentile(&all, 99.0)),
        format!("{:.0}", percentile(&all, 100.0)),
    ]);
    println!(
        "{}",
        table(&["endpoint", "requests", "mean us", "p50 us", "p99 us", "max us"], &rows)
    );
    println!(
        "throughput: {:.0} req/s over {:.2} s wall ({} ok, {} shed, {} errors; \
         shed rate {:.1}%)",
        total as f64 / elapsed,
        elapsed,
        total,
        sheds,
        errors,
        100.0 * sheds as f64 / (total + sheds + errors).max(1) as f64
    );

    // Cross-check against the server's own accounting.
    let scraped = HttpClient::connect(addr)
        .and_then(|mut c| c.get("/metrics"))
        .map(|r| r.text())
        .unwrap_or_default();
    if let Some(line) = scraped.lines().find(|l| l.starts_with("sdl_portal_request_seconds_count"))
    {
        println!("server-side {line}");
    }
    handle.shutdown();
    assert_eq!(errors, 0, "load run saw {errors} failed requests");
}
