//! `hotpath` — the tracked perf trajectory of the optimize→mix→image→detect
//! inner loop.
//!
//! Measures, before vs. after the tracked optimization PRs (the "before"
//! paths — `RefGp`, `render_reference` — are kept runnable in-tree for
//! exactly this purpose):
//!
//! 1. `BayesSolver::propose` latency at history n = 20 / 80 / 160 —
//!    from-scratch `fit_auto` + per-candidate EI vs. incremental
//!    `Gp::extend` + batched EI;
//! 2. render-only latency per camera fidelity profile — the frozen
//!    sequential reference renderer vs. the counter-based tiled path at
//!    `fast` (640×480) and `lowres` (320×240);
//! 3. per-sample simulated-measurement latency — the historical
//!    fresh-allocation reference render + detect vs. the counter-based
//!    render with reused frame buffer + detector scratch;
//! 4. backend-dispatch overhead — one ask/tell batch through `SimBackend`
//!    directly vs. `RemoteBackend` over loopback HTTP (the `/v1/batch`
//!    wire path);
//! 5. full-campaign throughput with the Bayesian solver: the pre-perf-PR
//!    configuration (full fidelity, from-scratch solver) vs. today's
//!    default path;
//! 6. distributed-scheduler throughput — one scenario matrix fanned over
//!    1/2/4 loopback workers via `CampaignScheduler` (samples/s plus
//!    scaling vs. a single worker; flat on a one-core host by design);
//! 7. campaign event-log append overhead — mean durable-append latency
//!    times the events a batch emits, as a fraction of the batch's lab
//!    wall time (`--check` gates it below 2%);
//! 8. overload admission — offered load at 1×/2×/4× a tiny
//!    live-connection cap: admitted req/s, p50/p99 latency of admitted
//!    requests, and the shed rate (503-at-accept share). The 4× row must
//!    actually shed (`--check` gates it).
//!
//! Writes machine-readable `BENCH_hotpath.json` (repo root when run from
//! there; `--out` to override) so successive PRs accumulate a perf
//! trajectory. `--smoke` runs a fast CI-sized variant; `--check <file>`
//! validates an existing output file and exits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdl_bench::{arg_or, median};
use sdl_color::{ciede2000, Jab, Lab, Rgb8};
use sdl_conf::{from_json, to_json_pretty, Value, ValueExt};
use sdl_core::{
    AppConfig, CampaignEvent, CampaignScheduler, ColorPickerApp, EventLog, Experiment, LabBackend,
    RemoteBackend, ScenarioSpec, SimBackend,
};
use sdl_solvers::{BayesSolver, ColorSolver, Observation, SolverKind};
use sdl_vision::{
    render_into, render_reference, render_reference_into, render_tiled, CameraGeometry, Detector,
    DetectorScratch, Fidelity, ImageRgb8, PlateScene,
};
use std::time::Instant;

/// A synthetic observation of the 4-dye objective used for propose timing.
fn synth_obs(rng: &mut StdRng) -> Observation {
    let hidden = [0.18, 0.16, 0.16, 0.62];
    let ratios: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
    let score =
        ratios.iter().zip(&hidden).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt() * 100.0;
    Observation { ratios, measured: Rgb8::new(0, 0, 0), score }
}

/// Median propose latency (µs) at a history of exactly `n` points, in the
/// campaign loop's steady state: the surrogate cache is warm from the
/// previous iteration (history `n - batch`), so the timed call pays one
/// batch of incremental extends plus the EI scoring pass — never a cold
/// refit, and never a history larger than the labeled `n`.
fn time_propose(incremental: bool, n: usize, batch: usize, reps: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(42);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut solver = BayesSolver::new(4);
        solver.incremental = incremental;
        // Keep the full history in the fit window so the bench scales with n.
        solver.max_fit_points = 4096;
        let mut history: Vec<Observation> = (0..n - batch).map(|_| synth_obs(&mut rng)).collect();
        // Warm call (untimed): builds the incremental cache at n - batch.
        let _ = solver.propose(Rgb8::PAPER_TARGET, &history, batch, &mut rng);
        for _ in 0..batch {
            history.push(synth_obs(&mut rng));
        }
        let t = Instant::now();
        let props = solver.propose(Rgb8::PAPER_TARGET, &history, batch, &mut rng);
        samples.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(props.len(), batch);
        assert_eq!(history.len(), n);
    }
    median(&samples)
}

/// A 96-well scene for the render/measure timings.
fn bench_scene() -> PlateScene {
    let mut scene = PlateScene::empty_plate();
    for i in 0..96 {
        scene.set_well(i / 12, i % 12, sdl_color::LinRgb::new(0.2, 0.25, 0.3));
    }
    scene
}

/// Median latency (µs) of the frozen reference renderer at full
/// resolution — the shared "before" arm of every `render` row.
fn time_render_reference(reps: usize) -> f64 {
    let scene = bench_scene();
    let mut rng = StdRng::seed_from_u64(7);
    let mut buf = ImageRgb8::new(1, 1, Rgb8::default());
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        render_reference_into(&scene, &mut rng, &mut buf);
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    median(&samples)
}

/// Median render-only latency (µs) for one fidelity profile through the
/// counter-based tiled path.
fn time_render_fast(profile: Fidelity, reps: usize) -> f64 {
    let mut scene = bench_scene();
    scene.camera = CameraGeometry::for_fidelity(profile);
    let mut buf = ImageRgb8::new(1, 1, Rgb8::default());
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let t = Instant::now();
        render_tiled(&scene, rep as u64, &mut buf, 32, 1);
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    median(&samples)
}

/// Median per-frame measurement latency (µs): render a 96-well plate scene
/// and run the full detection pipeline. `optimized` is today's default
/// path (counter-based render, reused buffers); the baseline is the
/// historical one (reference render, fresh allocations).
fn time_measure(optimized: bool, reps: usize) -> f64 {
    let mut scene = bench_scene();
    if !optimized {
        scene.camera = CameraGeometry::for_fidelity(Fidelity::Full);
    }
    let detector = Detector::default();
    let mut rng = StdRng::seed_from_u64(7);
    let mut buf = ImageRgb8::new(scene.camera.width_px, scene.camera.height_px, Rgb8::default());
    let mut scratch = DetectorScratch::default();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let reading = if optimized {
            render_into(&scene, &mut rng, &mut buf);
            detector.detect_with(&buf, &mut scratch)
        } else {
            let img = render_reference(&scene, &mut rng);
            detector.detect(&img)
        };
        samples.push(t.elapsed().as_secs_f64() * 1e6);
        assert!(reading.is_ok());
    }
    median(&samples)
}

/// One full campaign's wall time (s) for `budget` samples with the
/// Bayesian solver: `optimized` is today's default path; the baseline is
/// the pre-perf-PR configuration (full-fidelity reference render and the
/// from-scratch solver).
fn run_campaign(optimized: bool, budget: u32) -> (f64, u32) {
    let config = AppConfig {
        solver: SolverKind::Bayesian,
        sample_budget: budget,
        batch: 4,
        seed: 11,
        publish_images: false,
        fidelity: if optimized { Fidelity::Fast } else { Fidelity::Full },
        ..AppConfig::default()
    };
    let mut app = ColorPickerApp::new(config).expect("app construction");
    if !optimized {
        let mut reference = BayesSolver::new(4);
        reference.incremental = false;
        app.replace_solver(Box::new(reference));
    }
    let t = Instant::now();
    let out = app.run().expect("campaign run");
    (t.elapsed().as_secs_f64(), out.samples_measured)
}

/// Median campaign wall times (s) as `(before, after, samples)`. The
/// variants run interleaved (before/after per rep) so slow clock drift on
/// a busy or thermally throttling host biases neither side, and the
/// medians keep the reported factor stable.
fn time_campaign(budget: u32, reps: usize) -> (f64, f64, u32) {
    let mut before = Vec::with_capacity(reps);
    let mut after = Vec::with_capacity(reps);
    let mut samples = 0;
    for _ in 0..reps {
        let (t, n) = run_campaign(false, budget);
        before.push(t);
        samples = n;
        let (t, _) = run_campaign(true, budget);
        after.push(t);
    }
    (median(&before), median(&after), samples)
}

/// Median per-batch `LabBackend::submit_batch` latency (µs) through an
/// ask/tell session: `remote` drives an in-process loopback worker over
/// HTTP, `None` calls `SimBackend` directly. Same config and seed either
/// way, so the difference is pure dispatch overhead (wire codecs + HTTP +
/// scheduling), not lab work.
fn time_backend_dispatch(remote: Option<&str>, batches: u32, batch: u32) -> f64 {
    let config = AppConfig {
        solver: SolverKind::Random,
        sample_budget: batches * batch,
        batch,
        seed: 13,
        publish_images: false,
        ..AppConfig::default()
    };
    let mut session = Experiment::new(config.clone()).expect("session");
    let mut backend: Box<dyn LabBackend> = match remote {
        Some(addr) => Box::new(RemoteBackend::new(addr, config.clone())),
        None => Box::new(SimBackend::new(&config).expect("sim backend")),
    };
    let caps = backend.open().expect("backend opens");
    let mut samples = Vec::with_capacity(batches as usize);
    while let Some(b) = session.ask(&caps) {
        let t = Instant::now();
        let result = backend.submit_batch(&b).expect("batch executes");
        samples.push(t.elapsed().as_secs_f64() * 1e6);
        session.tell(&b, result).expect("tell");
    }
    backend.close(session.samples_measured()).expect("backend closes");
    median(&samples)
}

/// Mean append latency (µs) of a durable, file-backed [`EventLog`] over
/// `n` appends of the hot-loop event (`sample_published`). The mean —
/// not the median — so the periodic fsync batches are amortized in, the
/// way a campaign actually pays them.
fn time_event_append(n: usize) -> f64 {
    let path =
        std::env::temp_dir().join(format!("sdl-hotpath-events-{}.jsonl", std::process::id()));
    let log = EventLog::create(&path).expect("create bench event log");
    let event = CampaignEvent::SamplePublished {
        index: 3,
        attempt: 0,
        run: 7,
        sample: 42,
        well: "D11".to_string(),
        ratios: vec![0.18, 0.16, 0.16, 0.62],
        measured: [120, 121, 119],
        score: 17.25,
        best: 12.5,
        elapsed_us: 123_456,
        batch_wall_us: 15_000,
    };
    let t = Instant::now();
    for _ in 0..n {
        log.append(&event);
    }
    let mean = t.elapsed().as_secs_f64() * 1e6 / n as f64;
    drop(log);
    let _ = std::fs::remove_file(&path);
    mean
}

/// Spawn a loopback lab worker (the `sdl-lab serve` stack, in-process).
fn loopback_worker() -> sdl_portal_server::ServerHandle {
    use std::sync::Arc;
    let server = sdl_portal_server::PortalServer::new(
        Arc::new(sdl_datapub::AcdcPortal::new()),
        Arc::new(sdl_datapub::BlobStore::in_memory()),
    )
    .with_lab(Arc::new(sdl_portal_server::LabHost::new()));
    sdl_portal_server::spawn(server, &sdl_portal_server::ServerConfig::default())
        .expect("bind loopback worker")
}

/// Spawn a portal server capped at `cap` live connections (no lab — the
/// overload sweep measures the admission layer, not the simulator).
fn capped_server(cap: usize) -> sdl_portal_server::ServerHandle {
    use std::sync::Arc;
    let server = sdl_portal_server::PortalServer::new(
        Arc::new(sdl_datapub::AcdcPortal::new()),
        Arc::new(sdl_datapub::BlobStore::in_memory()),
    );
    sdl_portal_server::spawn(
        server,
        &sdl_portal_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: cap.max(1),
            max_conns: cap,
            ..sdl_portal_server::ServerConfig::default()
        },
    )
    .expect("bind overload server")
}

/// One keep-alive client hammering `/healthz` against a capped server:
/// holds its connection while it can, reconnects when shed or closed.
/// Returns (admitted latencies µs, admitted, shed).
fn overload_client(addr: std::net::SocketAddr, attempts: usize) -> (Vec<f64>, u64, u64) {
    use sdl_portal_server::client::HttpClient;
    let mut lat = Vec::with_capacity(attempts);
    let (mut ok, mut shed) = (0u64, 0u64);
    let mut conn: Option<HttpClient> = None;
    for _ in 0..attempts {
        if conn.is_none() {
            conn = HttpClient::connect(addr).ok();
        }
        let Some(c) = conn.as_mut() else {
            shed += 1;
            continue;
        };
        let t0 = Instant::now();
        match c.get("/healthz") {
            Ok(resp) if resp.status == 200 => {
                lat.push(t0.elapsed().as_secs_f64() * 1e6);
                ok += 1;
                if resp.header("connection") == Some("close") {
                    conn = None;
                }
            }
            Ok(_) | Err(_) => {
                // 503-at-accept, or the shed race closing under us:
                // either way this attempt was refused admission.
                shed += 1;
                conn = None;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }
    (lat, ok, shed)
}

/// Percentile over a sorted sample set.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The scenario matrix the distributed-scheduler throughput rows fan out.
fn scheduler_scenarios(count: usize, samples: u32) -> Vec<ScenarioSpec> {
    (0..count)
        .map(|i| {
            let config = AppConfig {
                solver: SolverKind::Random,
                sample_budget: samples,
                batch: 4,
                seed: 900 + i as u64,
                publish_images: false,
                fidelity: Fidelity::Fast,
                ..AppConfig::default()
            };
            ScenarioSpec::new(format!("sched{i}"), config)
        })
        .collect()
}

/// Median per-operation latency (ns) of one color-space op over a
/// deterministic swatch set. Every scored sample pays these on the
/// perceptual-objective path (sRGB→Lab or sRGB→Jab per endpoint, then the
/// metric), so they bound how much a `ciede2000`/`cam16ucs` campaign can
/// cost over the `rgb` baseline.
fn time_colorspace_op(reps: usize, pairs: usize, f: impl Fn(Rgb8, Rgb8) -> f64) -> f64 {
    let mut rng = StdRng::seed_from_u64(5);
    let swatches: Vec<(Rgb8, Rgb8)> = (0..pairs)
        .map(|_| {
            (Rgb8::new(rng.gen(), rng.gen(), rng.gen()), Rgb8::new(rng.gen(), rng.gen(), rng.gen()))
        })
        .collect();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut acc = 0.0f64;
        let t = Instant::now();
        for &(a, b) in &swatches {
            acc += f(a, b);
        }
        let ns = t.elapsed().as_secs_f64() * 1e9 / pairs as f64;
        assert!(acc.is_finite());
        samples.push(ns);
    }
    median(&samples)
}

/// Validate a previously written report; panics (non-zero exit) on
/// missing/malformed files so CI can gate on it.
fn check(path: &str) {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path}: cannot read BENCH_hotpath output: {e}"));
    let doc = from_json(&src).unwrap_or_else(|e| panic!("{path}: malformed JSON: {e}"));
    assert_eq!(doc.opt_str("schema"), Some("sdl-hotpath/1"), "{path}: wrong schema tag");
    let propose = doc.get("propose").and_then(Value::as_seq).expect("propose section");
    assert!(!propose.is_empty(), "{path}: empty propose section");
    for row in propose {
        for key in ["n", "before_us", "after_us", "speedup"] {
            assert!(row.get(key).is_some(), "{path}: propose row missing '{key}'");
        }
    }
    let render = doc.get("render").and_then(Value::as_seq).expect("render section");
    assert!(!render.is_empty(), "{path}: empty render section");
    for row in render {
        for key in ["profile", "reference_us", "fast_us", "speedup"] {
            assert!(row.get(key).is_some(), "{path}: render row missing '{key}'");
        }
    }
    for section in ["measure", "campaign"] {
        let s = doc.get(section).unwrap_or_else(|| panic!("{path}: missing '{section}'"));
        assert!(s.get("speedup").and_then(Value::as_f64).is_some(), "{section}.speedup");
    }
    let dispatch =
        doc.get("backend_dispatch").and_then(Value::as_seq).expect("backend_dispatch section");
    assert!(!dispatch.is_empty(), "{path}: empty backend_dispatch section");
    for row in dispatch {
        for key in ["batch", "sim_us", "remote_us", "overhead_us"] {
            assert!(row.get(key).is_some(), "{path}: backend_dispatch row missing '{key}'");
        }
    }
    let event_log = doc.get("event_log").unwrap_or_else(|| panic!("{path}: missing 'event_log'"));
    for key in ["appends", "append_us_mean", "events_per_batch", "batch_wall_us", "overhead_frac"] {
        assert!(event_log.get(key).is_some(), "{path}: event_log missing '{key}'");
    }
    let overhead = event_log.get("overhead_frac").and_then(Value::as_f64).expect("overhead_frac");
    assert!(
        overhead < 0.02,
        "{path}: event-log append overhead is {:.2}% of batch wall time (budget: 2%)",
        100.0 * overhead
    );
    let colorspace = doc.get("colorspace").and_then(Value::as_seq).expect("colorspace section");
    let expected_ops = ["srgb_to_lab", "srgb_to_jab", "delta_e2000", "ucs_distance"];
    for op in expected_ops {
        let row = colorspace
            .iter()
            .find(|r| r.opt_str("op") == Some(op))
            .unwrap_or_else(|| panic!("{path}: colorspace section missing op '{op}'"));
        assert!(
            row.get("ns").and_then(Value::as_f64).is_some_and(|v| v > 0.0),
            "{path}: colorspace op '{op}' needs a positive 'ns'"
        );
    }
    let scheduler = doc.get("scheduler").and_then(Value::as_seq).expect("scheduler section");
    assert!(!scheduler.is_empty(), "{path}: empty scheduler section");
    for row in scheduler {
        for key in ["workers", "scenarios", "samples", "wall_s", "samples_per_s", "speedup_vs_1"] {
            assert!(row.get(key).is_some(), "{path}: scheduler row missing '{key}'");
        }
        assert!(
            row.get("samples_per_s").and_then(Value::as_f64).is_some_and(|v| v > 0.0),
            "{path}: scheduler throughput must be positive"
        );
    }
    let overload = doc.get("overload").and_then(Value::as_seq).expect("overload section");
    assert!(!overload.is_empty(), "{path}: empty overload section");
    for row in overload {
        for key in
            ["clients", "cap", "attempts", "ok", "sheds", "req_s", "shed_rate", "p50_us", "p99_us"]
        {
            assert!(row.get(key).is_some(), "{path}: overload row missing '{key}'");
        }
        assert!(
            row.get("req_s").and_then(Value::as_f64).is_some_and(|v| v > 0.0),
            "{path}: overload admitted throughput must be positive"
        );
        assert!(
            row.get("shed_rate").and_then(Value::as_f64).is_some_and(|v| (0.0..=1.0).contains(&v)),
            "{path}: overload shed_rate must be a fraction"
        );
    }
    assert!(
        overload.last().and_then(|r| r.get("sheds")).and_then(Value::as_i64).is_some_and(|v| v > 0),
        "{path}: the 4x-cap overload row must actually shed"
    );
    println!("{path}: OK");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        check(args.get(i + 1).map(String::as_str).unwrap_or("BENCH_hotpath.json"));
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = arg_or("--out".to_string().as_str(), "BENCH_hotpath.json".to_string());

    let (propose_reps, measure_reps, budget, campaign_reps) =
        if smoke { (3, 2, 16, 1) } else { (15, 8, 160, 3) };
    let batch = 4;

    let mut doc = Value::map();
    doc.set("schema", "sdl-hotpath/1");
    doc.set("mode", if smoke { "smoke" } else { "full" });

    let mut propose = Value::seq();
    for n in [20usize, 80, 160] {
        let before = time_propose(false, n, batch, propose_reps);
        let after = time_propose(true, n, batch, propose_reps);
        let mut row = Value::map();
        row.set("n", n as i64);
        row.set("batch", batch as i64);
        row.set("before_us", before);
        row.set("after_us", after);
        row.set("speedup", before / after);
        eprintln!("propose n={n}: {before:.0}µs -> {after:.0}µs ({:.1}x)", before / after);
        propose.push(row);
    }
    doc.set("propose", propose);

    // Render-only latency per fidelity profile, vs one shared measurement
    // of the frozen reference.
    let mut render = Value::seq();
    let ref_us = time_render_reference(measure_reps);
    for profile in [Fidelity::Fast, Fidelity::Lowres] {
        let fast_us = time_render_fast(profile, measure_reps);
        let geom = CameraGeometry::for_fidelity(profile);
        let mut row = Value::map();
        row.set("profile", profile.name());
        row.set("width", geom.width_px as i64);
        row.set("height", geom.height_px as i64);
        row.set("reference_us", ref_us);
        row.set("fast_us", fast_us);
        row.set("speedup", ref_us / fast_us);
        eprintln!(
            "render {}: reference {ref_us:.0}µs -> {fast_us:.0}µs ({:.1}x)",
            profile.name(),
            ref_us / fast_us
        );
        render.push(row);
    }
    doc.set("render", render);

    // Color-space conversions and perceptual metrics (the objective
    // subsystem's hot path). The metric rows are end-to-end per scored
    // pair: two sRGB→space conversions plus the distance, exactly what
    // `Objective::score` pays per measurement.
    let cs_pairs = if smoke { 512usize } else { 4096 };
    let cs_reps = if smoke { 3 } else { 9 };
    let mut colorspace = Value::seq();
    type ColorOp = Box<dyn Fn(Rgb8, Rgb8) -> f64>;
    let ops: [(&str, ColorOp); 4] = [
        ("srgb_to_lab", Box::new(|a, _| Lab::from_rgb8(a).l)),
        ("srgb_to_jab", Box::new(|a, _| Jab::from_rgb8(a).j)),
        ("delta_e2000", Box::new(|a, b| ciede2000(Lab::from_rgb8(a), Lab::from_rgb8(b)))),
        ("ucs_distance", Box::new(|a, b| Jab::from_rgb8(a).distance(Jab::from_rgb8(b)))),
    ];
    for (op, f) in ops {
        let ns = time_colorspace_op(cs_reps, cs_pairs, f);
        let mut row = Value::map();
        row.set("op", op);
        row.set("pairs", cs_pairs as i64);
        row.set("ns", ns);
        eprintln!("colorspace {op}: {ns:.0}ns/op");
        colorspace.push(row);
    }
    doc.set("colorspace", colorspace);

    let m_before = time_measure(false, measure_reps);
    let m_after = time_measure(true, measure_reps);
    let mut measure = Value::map();
    measure.set("wells", 96i64);
    measure.set("before_us", m_before);
    measure.set("after_us", m_after);
    measure.set("per_sample_after_us", m_after / batch as f64);
    measure.set("speedup", m_before / m_after);
    eprintln!("measure: {m_before:.0}µs -> {m_after:.0}µs per frame ({:.2}x)", m_before / m_after);
    doc.set("measure", measure);

    // Backend-dispatch overhead: the same ask/tell session driving the
    // same simulated lab, directly vs over loopback HTTP (PR 4's seam).
    let worker = loopback_worker();
    let worker_addr = worker.addr().to_string();
    let dispatch_batches = if smoke { 4 } else { 16 };
    let mut dispatch = Value::seq();
    let mut sim_b4_us = 0.0f64;
    for batch in [1u32, 4] {
        let sim_us = time_backend_dispatch(None, dispatch_batches, batch);
        let remote_us = time_backend_dispatch(Some(&worker_addr), dispatch_batches, batch);
        if batch == 4 {
            sim_b4_us = sim_us;
        }
        let mut row = Value::map();
        row.set("batch", batch as i64);
        row.set("batches", dispatch_batches as i64);
        row.set("sim_us", sim_us);
        row.set("remote_us", remote_us);
        row.set("overhead_us", remote_us - sim_us);
        row.set("overhead_frac", (remote_us - sim_us) / sim_us);
        eprintln!(
            "backend dispatch b={batch}: sim {sim_us:.0}µs -> remote {remote_us:.0}µs \
             (+{:.0}µs, {:.1}%)",
            remote_us - sim_us,
            100.0 * (remote_us - sim_us) / sim_us
        );
        dispatch.push(row);
    }
    worker.shutdown();
    doc.set("backend_dispatch", dispatch);

    // Event-log overhead: the observability tentpole appends ~(batch + 2)
    // events per executed batch (one asked, one told, one per sample), so
    // overhead_frac is the share of a batch's lab wall time spent logging.
    // --check gates this below 2%.
    let appends = if smoke { 512usize } else { 4096 };
    let append_us = time_event_append(appends);
    let events_per_batch = batch + 2;
    let overhead = append_us * events_per_batch as f64 / sim_b4_us;
    let mut event_log = Value::map();
    event_log.set("appends", appends as i64);
    event_log.set("append_us_mean", append_us);
    event_log.set("events_per_batch", events_per_batch as i64);
    event_log.set("batch_wall_us", sim_b4_us);
    event_log.set("overhead_frac", overhead);
    eprintln!(
        "event log: {append_us:.2}µs/append, {events_per_batch}/batch over {sim_b4_us:.0}µs \
         ({:.3}% of batch wall)",
        100.0 * overhead
    );
    doc.set("event_log", event_log);

    // Distributed-scheduler throughput: the same scenario matrix fanned
    // over 1/2/4 loopback workers. On a single-core host the scaling is
    // flat (everything shares one CPU) — the rows are still written so
    // `--check` can gate their shape, and multi-core hosts show the curve.
    let (sched_count, sched_budget) = if smoke { (4usize, 8u32) } else { (8, 32) };
    let mut scheduler = Value::seq();
    let mut base_sps = 0.0f64;
    let mut base_fp = String::new();
    for workers in [1usize, 2, 4] {
        let handles: Vec<sdl_portal_server::ServerHandle> =
            (0..workers).map(|_| loopback_worker()).collect();
        let urls: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
        let (report, sched) =
            CampaignScheduler::new(urls).run(scheduler_scenarios(sched_count, sched_budget));
        for h in handles {
            h.shutdown();
        }
        let fp = report.fingerprint();
        if workers == 1 {
            base_sps = sched.samples_per_sec();
            base_fp = fp.clone();
        }
        assert_eq!(base_fp, fp, "scheduler fingerprint drifted at {workers} workers");
        let mut row = Value::map();
        row.set("workers", workers as i64);
        row.set("scenarios", sched_count as i64);
        row.set("samples", sched.samples as i64);
        row.set("wall_s", sched.wall.as_secs_f64());
        row.set("samples_per_s", sched.samples_per_sec());
        row.set("speedup_vs_1", sched.samples_per_sec() / base_sps);
        row.set("steals", sched.total_steals() as i64);
        eprintln!(
            "scheduler w={workers}: {:.1} samples/s over {:.2}s ({:.2}x vs 1 worker)",
            sched.samples_per_sec(),
            sched.wall.as_secs_f64(),
            sched.samples_per_sec() / base_sps
        );
        scheduler.push(row);
    }
    doc.set("scheduler", scheduler);

    // Overload admission: offered load at 1x/2x/4x a tiny live-connection
    // cap. Admission control must keep admitted throughput steady and
    // answer the excess 503-at-accept — req_s counts *admitted* work,
    // shed_rate the refused share of all attempts.
    let overload_cap = 2usize;
    let overload_attempts = if smoke { 40usize } else { 200 };
    let mut overload = Value::seq();
    for mult in [1usize, 2, 4] {
        let clients = overload_cap * mult;
        let server = capped_server(overload_cap);
        let addr = server.addr();
        let wall = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|_| std::thread::spawn(move || overload_client(addr, overload_attempts)))
            .collect();
        let mut lat = Vec::new();
        let (mut ok, mut sheds) = (0u64, 0u64);
        for w in workers {
            let (mut l, o, s) = w.join().expect("overload client");
            lat.append(&mut l);
            ok += o;
            sheds += s;
        }
        let wall_s = wall.elapsed().as_secs_f64();
        server.shutdown();
        lat.sort_by(f64::total_cmp);
        let attempts_total = (clients * overload_attempts) as u64;
        let mut row = Value::map();
        row.set("clients", clients as i64);
        row.set("cap", overload_cap as i64);
        row.set("attempts", attempts_total as i64);
        row.set("ok", ok as i64);
        row.set("sheds", sheds as i64);
        row.set("req_s", ok as f64 / wall_s);
        row.set("shed_rate", sheds as f64 / attempts_total as f64);
        row.set("p50_us", percentile(&lat, 50.0));
        row.set("p99_us", percentile(&lat, 99.0));
        eprintln!(
            "overload {clients} clients vs cap {overload_cap}: {:.0} admitted req/s, \
             p99 {:.0}µs, {:.1}% shed",
            ok as f64 / wall_s,
            percentile(&lat, 99.0),
            100.0 * sheds as f64 / attempts_total as f64
        );
        overload.push(row);
    }
    doc.set("overload", overload);

    let (c_before, c_after, samples) = time_campaign(budget, campaign_reps);
    let mut campaign = Value::map();
    campaign.set("samples", samples as i64);
    campaign.set("batch", batch as i64);
    campaign.set("before_s", c_before);
    campaign.set("after_s", c_after);
    campaign.set("before_samples_per_s", samples as f64 / c_before);
    campaign.set("after_samples_per_s", samples as f64 / c_after);
    campaign.set("speedup", c_before / c_after);
    eprintln!(
        "campaign ({samples} samples): {c_before:.2}s -> {c_after:.2}s ({:.2}x)",
        c_before / c_after
    );
    doc.set("campaign", campaign);

    std::fs::write(&out_path, to_json_pretty(&doc) + "\n").expect("write bench output");
    println!("wrote {out_path}");
}
