//! E2 — regenerate **Table 1**: the proposed SDL metrics for a B = 1 run,
//! side by side with the paper's reported values. Runs as a one-scenario
//! campaign through the `CampaignRunner`.
//!
//! Usage: `cargo run --release -p sdl-bench --bin table1 [--samples 128]`

use sdl_bench::{arg_or, table};
use sdl_core::{AppConfig, CampaignRunner, ScenarioSpec};
use sdl_desim::SimDuration;

fn main() {
    let samples: u32 = arg_or("--samples", 128);
    let config = AppConfig {
        sample_budget: samples,
        batch: 1,
        publish_images: false,
        ..AppConfig::default()
    };
    eprintln!("running B=1 N={samples}...");
    let report = CampaignRunner::new().run(vec![ScenarioSpec::new("table1/B=1", config)]);
    let out = report.results[0].expect_single();
    let m = &out.metrics;

    let hm = |d: SimDuration| d.to_string();
    let rows = vec![
        vec!["Time without humans".into(), "8h 12m".into(), hm(m.twh)],
        vec!["Completed commands without humans".into(), "387".into(), m.ccwh.to_string()],
        vec!["Synthesis time".into(), "5h 10m".into(), hm(m.synthesis)],
        vec!["Transfer time".into(), "3h 02m".into(), hm(m.transfer)],
        vec!["Total colors mixed".into(), "128".into(), m.colors_mixed.to_string()],
        vec!["Time per color".into(), "4 mins".into(), hm(m.time_per_color)],
    ];
    println!("# Table 1 — proposed SDL metrics, B = 1 (paper vs simulated)");
    println!("{}", table(&["Metric", "Paper", "Simulated"], &rows));
    println!(
        "synthesis share of total: paper 63% vs simulated {:.0}%",
        m.synthesis_fraction() * 100.0
    );
    println!("plate/reservoir logistics (outside the paper's two buckets): {}", m.logistics);
    println!(
        "uploads: {} (paper: 128, one per sample)",
        out.flow_stats.published.max(out.samples_measured as u64)
    );
    println!("termination: {}", out.termination);
}
