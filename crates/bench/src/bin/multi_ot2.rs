//! E6 — the paper's future-work experiment (§4): additional OT-2s mixing
//! plates concurrently. The prediction: "an increase in CCWH, but
//! potentially a lower TWH for the same experimental results." Flows share
//! the budget, the solver, the pf400 and the camera; synthesis overlaps.
//! The three scalings run as one campaign (concurrently across workers —
//! each scenario is its own simulated lab on its own virtual clock).
//!
//! Usage: `cargo run --release -p sdl-bench --bin multi_ot2
//!         [--samples 64] [--batch 1]`

use sdl_bench::{arg_or, table};
use sdl_core::{AppConfig, CampaignRunner, ScenarioSpec};

fn main() {
    let samples: u32 = arg_or("--samples", 64);
    let batch: u32 = arg_or("--batch", 1);
    let base =
        AppConfig { sample_budget: samples, batch, publish_images: false, ..AppConfig::default() };

    eprintln!("running 1-3 OT-2(s), N={samples}, B={batch}...");
    let report = CampaignRunner::new().progress(true).run(
        (1..=3usize)
            .map(|n| ScenarioSpec::multi_ot2(format!("{n} OT-2"), base.clone(), n))
            .collect(),
    );

    let mut rows = Vec::new();
    for result in &report.results {
        let out = result.expect_outcome().as_multi();
        rows.push(vec![
            out.n_ot2.to_string(),
            out.duration.to_string(),
            out.time_per_color.to_string(),
            out.robotic_commands.to_string(),
            format!("{:.2}", out.best_score),
            format!("{:?}", out.per_handler_samples),
            out.plates_used.to_string(),
        ]);
    }
    println!("# Multi-OT2 scaling — same budget, concurrent synthesis");
    println!(
        "{}",
        table(
            &[
                "OT2s",
                "TWH (duration)",
                "time/color",
                "robotic cmds",
                "best",
                "per-handler",
                "plates"
            ],
            &rows
        )
    );
    println!("TWH falls as synthesis overlaps; command count (the CCWH numerator in a");
    println!("fault-free run) grows slightly with the extra plate logistics — exactly");
    println!("the trade the paper predicts.");
}
