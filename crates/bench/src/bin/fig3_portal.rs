//! E3 — regenerate **Figure 3**: the ACDC portal views for an experiment of
//! 12 runs × 15 samples (= 180 experiments), as in the paper's 2023-08-16
//! demo. Prints the summary view (left panel) and run #12's detail view
//! (right panel).
//!
//! Usage: `cargo run --release -p sdl-bench --bin fig3_portal`

use sdl_core::{AppConfig, CampaignRunner, ScenarioSpec};

fn main() {
    // 12 iterations of 15 samples = 180; each iteration is one portal "run".
    let config =
        AppConfig { sample_budget: 180, batch: 15, publish_images: true, ..AppConfig::default() };
    eprintln!("running 12 runs x 15 samples...");
    let report = CampaignRunner::new().run(vec![ScenarioSpec::new("fig3", config)]);
    let out = report.results[0].expect_single();

    println!("# Figure 3 (left): Globus Search portal summary view");
    println!("{}", out.portal.summary_view(&out.experiment_id));
    println!("# Figure 3 (right): detailed data from run #12");
    println!("{}", out.portal.run_detail(&out.experiment_id, 12));
    println!(
        "publication pipeline: {} records published, {} images archived ({} KiB)",
        out.flow_stats.published,
        out.store.len(),
        out.store.total_bytes() / 1024
    );
}
