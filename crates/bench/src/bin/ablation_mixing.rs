//! E7 — mixing-model ablation (§2.5 notes the problem "admits an analytic
//! solution, given accurate models of how colors combine"): run the GA
//! against the three forward models as one campaign and compare
//! convergence. The naive linear model makes the problem easier than the
//! physical Beer–Lambert chemistry; Kubelka–Munk sits between.
//!
//! Usage: `cargo run --release -p sdl-bench --bin ablation_mixing [--samples 64]`

use sdl_bench::{arg_or, mean, stddev, table};
use sdl_color::MixKind;
use sdl_core::{AppConfig, CampaignRunner, ScenarioSpec};

fn main() {
    let samples: u32 = arg_or("--samples", 64);
    let seeds = [1u64, 2, 3];
    let models = [MixKind::BeerLambert, MixKind::KubelkaMunk, MixKind::Spectral, MixKind::Linear];
    let mut scenarios = Vec::new();
    for model in models {
        for seed in seeds {
            let config = AppConfig {
                sample_budget: samples,
                batch: 4,
                mix: model,
                seed,
                publish_images: false,
                ..AppConfig::default()
            };
            scenarios.push(ScenarioSpec::new(format!("{}/{}", model.name(), seed), config));
        }
    }
    eprintln!("running {} experiments...", scenarios.len());
    let report = CampaignRunner::new().run(scenarios);

    let mut rows = Vec::new();
    for model in models {
        let outs: Vec<&sdl_core::ExperimentOutcome> = report
            .results
            .iter()
            .filter(|r| r.label().starts_with(model.name()))
            .map(|r| r.expect_single())
            .collect();
        let finals: Vec<f64> = outs.iter().map(|o| o.best_score).collect();
        let half: Vec<f64> =
            outs.iter().map(|o| o.trajectory[o.trajectory.len() / 2].best).collect();
        rows.push(vec![
            model.name().to_string(),
            format!("{:.2}", mean(&half)),
            format!("{:.2}", mean(&finals)),
            format!("{:.2}", stddev(&finals)),
        ]);
    }
    println!(
        "# Mixing-model ablation — GA convergence under each forward model (B=4, N={samples})"
    );
    println!("{}", table(&["model", "best@N/2", "final best", "sd"], &rows));
}
