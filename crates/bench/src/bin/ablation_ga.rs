//! GA batch-strategy ablation: the paper’s scheme
//! re-measures the elite every generation — under sensor noise that both
//! burns budget and *denoises* the incumbent. This harness isolates the
//! effect on the solver loop (Beer–Lambert objective + Gaussian sensor
//! noise), without the robotics.
//!
//! Usage: `cargo run --release -p sdl-bench --bin ablation_ga`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdl_bench::{mean, stddev, table};
use sdl_color::{BeerLambert, DyeSet, MixModel, Recipe, Rgb8};
use sdl_solvers::{best_observation, ColorSolver, GeneticSolver, Observation};

/// One synthetic closed loop: GA against the true model + noise.
fn run_loop(elite_replication: bool, batch: usize, budget: usize, seed: u64) -> f64 {
    let set = DyeSet::cmyk();
    let model = BeerLambert::default();
    let mut ga = GeneticSolver::new(4);
    ga.elite_replication = elite_replication;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut noise = StdRng::seed_from_u64(seed ^ 0xabcdef);
    let mut history: Vec<Observation> = Vec::new();
    while history.len() < budget {
        let b = batch.min(budget - history.len());
        for ratios in ga.propose(Rgb8::PAPER_TARGET, &history, b, &mut rng) {
            let recipe = Recipe::from_ratios(&ratios, &set).unwrap();
            let c = model.well_color(&set, &recipe).to_srgb();
            // Gaussian sensor noise, sigma ~2.5 RGB units per channel.
            let mut jitter = |v: u8| -> u8 {
                let n: f64 = (0..6).map(|_| noise.gen::<f64>()).sum::<f64>() - 3.0; // ~N(0,1)/1.41
                (v as f64 + 2.5 * n).clamp(0.0, 255.0) as u8
            };
            let measured = Rgb8::new(jitter(c.r), jitter(c.g), jitter(c.b));
            let score = measured.distance(Rgb8::PAPER_TARGET);
            history.push(Observation { ratios, measured, score });
        }
    }
    best_observation(&history).unwrap().score
}

fn main() {
    let seeds: Vec<u64> = (1..=10).collect();
    let mut rows = Vec::new();
    for batch in [4usize, 8, 16] {
        for elite in [true, false] {
            let finals: Vec<f64> = seeds.iter().map(|&s| run_loop(elite, batch, 96, s)).collect();
            rows.push(vec![
                format!("B={batch}"),
                if elite { "elite replicated (paper)" } else { "elite slot mutated" }.to_string(),
                format!("{:.2}", mean(&finals)),
                format!("{:.2}", stddev(&finals)),
            ]);
        }
    }
    println!("# GA elite-replication ablation — final best over 10 seeds (N=96, synthetic loop)");
    println!("{}", table(&["batch", "strategy", "mean best", "sd"], &rows));
    println!("re-measuring the elite costs one sample per generation but repeatedly");
    println!("denoises the incumbent under measurement noise; the net effect is small,");
    println!("which is why the paper's faithful scheme is kept as the default.");
}
