//! E5 — reliability / CCWH study (§4): inject command-reception and
//! mid-action faults at increasing rates and watch the paper's resiliency
//! metrics respond: CCWH (longest robotic-command streak without a human)
//! and TWH (longest stretch of unattended operation). Three seeds per rate,
//! run as one campaign; means reported.
//!
//! Usage: `cargo run --release -p sdl-bench --bin reliability [--samples 48]`

use sdl_bench::{arg_or, mean, table};
use sdl_core::{AppConfig, CampaignRunner, ScenarioSpec};
use sdl_desim::{FaultPlan, FaultRates};

fn main() {
    let samples: u32 = arg_or("--samples", 48);
    let rates = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20];
    let seeds = [7u64, 21, 63];
    let mut scenarios = Vec::new();
    for &rate in &rates {
        for &seed in &seeds {
            let mut config = AppConfig {
                sample_budget: samples,
                batch: 1,
                seed,
                publish_images: false,
                ..AppConfig::default()
            };
            config.faults = FaultPlan::uniform(FaultRates::new(rate, rate / 2.0));
            scenarios.push(ScenarioSpec::new(format!("{rate}|{seed}"), config));
        }
    }
    eprintln!("running {} experiments (N={samples}, B=1)...", scenarios.len());
    let report = CampaignRunner::new().run(scenarios);

    let mut rows = Vec::new();
    for &rate in &rates {
        let of = |f: &dyn Fn(&sdl_core::ExperimentOutcome) -> f64| -> f64 {
            let v: Vec<f64> = report
                .results
                .iter()
                .filter(|r| r.label().starts_with(&format!("{rate}|")))
                .map(|r| f(r.expect_single()))
                .collect();
            mean(&v)
        };
        rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.0}", of(&|o| o.metrics.ccwh as f64)),
            format!("{:.1}h", of(&|o| o.metrics.twh.as_secs_f64() / 3600.0)),
            format!(
                "{:.1}",
                of(&|o| (o.counters.reception_faults + o.counters.action_faults) as f64)
            ),
            format!("{:.1}", of(&|o| o.counters.human_interventions as f64)),
            format!("{:.1}h", of(&|o| o.duration.as_secs_f64() / 3600.0)),
            format!("{:.1}", of(&|o| o.best_score)),
        ]);
    }
    println!("# Reliability vs injected command-fault rate (means over {} seeds)", seeds.len());
    println!("  (reception rate shown; mid-action rate = half of it)");
    println!(
        "{}",
        table(&["fault rate", "CCWH", "TWH", "faults", "humans", "duration", "best"], &rows)
    );
    println!("retries absorb sparse faults at a pure time cost; once triple-faults appear");
    println!("the simulated operator steps in, fragmenting CCWH and TWH — while the");
    println!("completed science (best score) stays intact. That asymmetry is the paper's");
    println!("argument for CCWH as a communications-resiliency measure.");
}
