//! E4 — the §2.5 solver comparison: the paper implemented a Bayesian
//! optimizer but reports it "does not yield a systematic improvement over
//! the genetic algorithm". This harness runs GA, GP-EI, random search and
//! the analytic oracle over multiple seeds as one campaign and reports
//! final-score statistics.
//!
//! Usage: `cargo run --release -p sdl-bench --bin solver_compare
//!         [--samples 64] [--batch 4] [--seeds 5]`

use sdl_bench::{arg_or, mean, median, stddev, table};
use sdl_core::{solver_sweep, AppConfig, CampaignRunner};
use sdl_solvers::SolverKind;

fn main() {
    let samples: u32 = arg_or("--samples", 64);
    let batch: u32 = arg_or("--batch", 4);
    let n_seeds: u64 = arg_or("--seeds", 5);
    let base =
        AppConfig { sample_budget: samples, batch, publish_images: false, ..AppConfig::default() };
    let solvers =
        [SolverKind::Genetic, SolverKind::Bayesian, SolverKind::Random, SolverKind::Analytic];
    let seeds: Vec<u64> = (1..=n_seeds).collect();
    eprintln!(
        "running {} experiments ({} solvers x {} seeds, N={samples}, B={batch})...",
        solvers.len() * seeds.len(),
        solvers.len(),
        seeds.len()
    );
    let report = CampaignRunner::new().run(solver_sweep(&base, &solvers, &seeds));

    let mut rows = Vec::new();
    for solver in solvers {
        let finals = report.best_scores_with_prefix(solver.name());
        rows.push(vec![
            solver.name().to_string(),
            format!("{:.2}", mean(&finals)),
            format!("{:.2}", stddev(&finals)),
            format!("{:.2}", median(&finals)),
            format!("{:.2}", finals.iter().cloned().fold(f64::INFINITY, f64::min)),
            format!("{:.2}", finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
        ]);
    }
    println!(
        "# Solver comparison — final best score over {n_seeds} seeds (N={samples}, B={batch})"
    );
    println!("{}", table(&["solver", "mean", "sd", "median", "min", "max"], &rows));
    println!("paper claim: bayesian shows no systematic improvement over genetic;");
    println!("the analytic oracle bounds what any black-box method can reach.");
}
