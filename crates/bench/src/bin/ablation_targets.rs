//! Target-reachability ablation: the paper fixes RGB (120,120,120), which is
//! interior to the CMYK subtractive gamut. Other targets sit near or beyond
//! the gamut boundary; the achievable floor — measured by the analytic
//! oracle and approached by the GA — reveals that boundary. Runs as one
//! campaign (targets × {genetic, analytic}).
//!
//! Usage: `cargo run --release -p sdl-bench --bin ablation_targets [--samples 48]`

use sdl_bench::{arg_or, table};
use sdl_color::Rgb8;
use sdl_core::{AppConfig, CampaignRunner, ScenarioSpec};
use sdl_solvers::SolverKind;

fn main() {
    let samples: u32 = arg_or("--samples", 48);
    let targets = [
        ("paper mid-gray", Rgb8::new(120, 120, 120)),
        ("light gray", Rgb8::new(200, 200, 200)),
        ("dark slate", Rgb8::new(60, 70, 80)),
        ("olive", Rgb8::new(128, 128, 64)),
        ("saturated red", Rgb8::new(230, 40, 40)),
    ];
    let mut scenarios = Vec::new();
    for (name, t) in targets {
        for solver in [SolverKind::Genetic, SolverKind::Analytic] {
            let config = AppConfig {
                sample_budget: samples,
                batch: 4,
                target: t,
                solver,
                publish_images: false,
                ..AppConfig::default()
            };
            scenarios.push(ScenarioSpec::new(format!("{name}|{}", solver.name()), config));
        }
    }
    eprintln!("running {} experiments...", scenarios.len());
    let report = CampaignRunner::new().run(scenarios);

    let find = |label: &str| -> f64 {
        report
            .by_label(label)
            .unwrap_or_else(|| panic!("missing scenario {label}"))
            .expect_single()
            .best_score
    };
    let mut rows = Vec::new();
    for (name, t) in targets {
        let oracle = find(&format!("{name}|analytic"));
        let ga = find(&format!("{name}|genetic"));
        rows.push(vec![
            name.to_string(),
            t.to_string(),
            format!("{oracle:.1}"),
            format!("{ga:.1}"),
            if oracle > 20.0 { "outside gamut" } else { "reachable" }.to_string(),
        ]);
    }
    println!("# Target reachability — oracle floor vs GA best (N={samples}, B=4)");
    println!("{}", table(&["target", "RGB", "oracle floor", "GA best", "verdict"], &rows));
    println!("the paper's mid-gray target is comfortably inside the CMYK gamut; strongly");
    println!("saturated targets hit the subtractive-mixing boundary and no solver can close");
    println!("the gap — the benchmark's difficulty is a property of the target choice.");
}
