//! Target-reachability ablation: the paper fixes RGB (120,120,120), which is
//! interior to the CMYK subtractive gamut. Other targets sit near or beyond
//! the gamut boundary; the achievable floor — measured by the analytic
//! oracle and approached by the GA — reveals that boundary. This contextual-
//! izes the benchmark difficulty the paper's single target represents.
//!
//! Usage: `cargo run --release -p sdl-bench --bin ablation_targets [--samples 48]`

use sdl_bench::{arg_or, table};
use sdl_color::Rgb8;
use sdl_core::{run_sweep, AppConfig, SweepItem};
use sdl_solvers::SolverKind;

fn main() {
    let samples: u32 = arg_or("--samples", 48);
    let targets = [
        ("paper mid-gray", Rgb8::new(120, 120, 120)),
        ("light gray", Rgb8::new(200, 200, 200)),
        ("dark slate", Rgb8::new(60, 70, 80)),
        ("olive", Rgb8::new(128, 128, 64)),
        ("saturated red", Rgb8::new(230, 40, 40)),
    ];
    let mut items = Vec::new();
    for (name, t) in targets {
        for solver in [SolverKind::Genetic, SolverKind::Analytic] {
            let config = AppConfig {
                sample_budget: samples,
                batch: 4,
                target: t,
                solver,
                publish_images: false,
                ..AppConfig::default()
            };
            items.push(SweepItem { label: format!("{name}|{}", solver.name()), config });
        }
    }
    eprintln!("running {} experiments...", items.len());
    let results = run_sweep(items);

    let find = |label: &str| -> f64 {
        results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(l, r)| r.as_ref().unwrap_or_else(|e| panic!("{l}: {e}")).best_score)
            .unwrap()
    };
    let mut rows = Vec::new();
    for (name, t) in targets {
        let oracle = find(&format!("{name}|analytic"));
        let ga = find(&format!("{name}|genetic"));
        rows.push(vec![
            name.to_string(),
            t.to_string(),
            format!("{oracle:.1}"),
            format!("{ga:.1}"),
            if oracle > 20.0 { "outside gamut" } else { "reachable" }.to_string(),
        ]);
    }
    println!("# Target reachability — oracle floor vs GA best (N={samples}, B=4)");
    println!("{}", table(&["target", "RGB", "oracle floor", "GA best", "verdict"], &rows));
    println!("the paper's mid-gray target is comfortably inside the CMYK gamut; strongly");
    println!("saturated targets hit the subtractive-mixing boundary and no solver can close");
    println!("the gap — the benchmark's difficulty is a property of the target choice.");
}
