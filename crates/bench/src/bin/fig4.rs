//! E1 — regenerate **Figure 4**: seven experiments, N = 128 samples each,
//! batch sizes B ∈ {1, 2, 4, 8, 16, 32, 64}, target RGB (120,120,120),
//! evolutionary solver, run as one campaign. Prints the best-score-so-far
//! trajectories as CSV, an ASCII rendering of the figure, and the
//! per-series endpoints.
//!
//! Usage: `cargo run --release -p sdl-bench --bin fig4 [--samples 128]`

use sdl_bench::{arg_or, ascii_plot, csv, table, Series};
use sdl_core::{batch_sweep, AppConfig, CampaignRunner};

fn main() {
    let samples: u32 = arg_or("--samples", 128);
    let base = AppConfig { sample_budget: samples, publish_images: false, ..AppConfig::default() };
    let batches = [1u32, 2, 4, 8, 16, 32, 64];
    eprintln!("running {} experiments of {samples} samples each...", batches.len());
    let report = CampaignRunner::new().progress(true).run(batch_sweep(&base, &batches));

    let glyphs = ['1', '2', '4', '8', 'x', 'o', '*'];
    let mut series = Vec::new();
    let mut csv_rows = Vec::new();
    let mut endpoint_rows = Vec::new();
    for (result, glyph) in report.results.iter().zip(glyphs) {
        let label = result.label();
        let out = result.expect_single();
        let points: Vec<(f64, f64)> =
            out.trajectory.iter().map(|p| (p.elapsed_min, p.best)).collect();
        for p in &out.trajectory {
            csv_rows.push(vec![
                label.to_string(),
                p.sample.to_string(),
                format!("{:.2}", p.elapsed_min),
                format!("{:.3}", p.score),
                format!("{:.3}", p.best),
            ]);
        }
        let last = out.trajectory.last().expect("non-empty trajectory");
        endpoint_rows.push(vec![
            label.to_string(),
            format!("{:.1}", last.elapsed_min),
            format!("{:.2}", out.best_score),
            out.samples_measured.to_string(),
            out.plates_used.to_string(),
        ]);
        series.push(Series { label: label.to_string(), glyph, points });
    }

    println!("# Figure 4 — best score so far vs elapsed time (simulated)");
    println!("{}", csv(&["batch", "sample", "elapsed_min", "score", "best"], &csv_rows));
    println!("{}", ascii_plot(&series, 100, 24, "elapsed minutes", "best RGB distance"));
    println!("# Endpoints (paper: smaller B -> longer runtime, better final score)");
    println!("{}", table(&["batch", "end_min", "final_best", "samples", "plates"], &endpoint_rows));
}
