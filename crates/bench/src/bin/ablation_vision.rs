//! E8 — vision ablation (§2.4): HoughCircles is "prone to false negatives";
//! the grid alignment predicts centers for missed wells and corrects pose
//! error. This harness sweeps pose jitter and sensor noise and reports
//! detection and color-error statistics with alignment on and off.
//!
//! Usage: `cargo run --release -p sdl-bench --bin ablation_vision`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sdl_bench::{mean, table};
use sdl_color::LinRgb;
use sdl_vision::{render, Detector, DetectorParams, PlateScene, Pose};

fn scene(fill: usize, seed: u64) -> (PlateScene, Vec<Option<LinRgb>>) {
    let mut scene = PlateScene::empty_plate();
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    for i in 0..fill {
        let row = i / 12;
        let col = i % 12;
        let c = LinRgb::new(
            rng.gen_range(0.05..0.5),
            rng.gen_range(0.05..0.5),
            rng.gen_range(0.05..0.5),
        );
        scene.set_well(row, col, c);
    }
    let truth = scene.well_colors.clone();
    (scene, truth)
}

fn main() {
    let jitters = [(0.0f64, 0.0f64), (3.0, 0.5), (5.0, 1.0), (6.0, 1.2)];
    let mut rows = Vec::new();
    for (shift, rot) in jitters {
        for (aligned, flat) in [(true, false), (false, false), (true, true)] {
            let mut hough_hits = Vec::new();
            let mut errors = Vec::new();
            let mut corner_errors = Vec::new();
            for seed in 0..6u64 {
                let (mut sc, truth) = scene(96, seed);
                let mut rng = StdRng::seed_from_u64(1_000 + seed);
                sc.pose = Pose::jittered(&mut rng, shift, rot);
                let img = render(&sc, &mut rng);
                let params = DetectorParams {
                    grid_alignment: aligned,
                    flat_field: flat,
                    ..DetectorParams::default()
                };
                let reading = Detector::new(params).detect(&img).expect("marker visible");
                hough_hits.push(reading.hough_hits as f64);
                for w in &reading.wells {
                    let idx = w.row * 12 + w.col;
                    if let Some(t) = truth[idx] {
                        let e = w.color.distance(t.to_srgb());
                        errors.push(e);
                        if w.row == 7 && w.col == 11 {
                            corner_errors.push(e);
                        }
                    }
                }
            }
            rows.push(vec![
                format!("±{shift}px/±{rot}°"),
                match (aligned, flat) {
                    (true, false) => "grid-aligned".to_string(),
                    (false, _) => "raw grid".to_string(),
                    (true, true) => "aligned+flat-field".to_string(),
                },
                format!("{:.0}/96", mean(&hough_hits)),
                format!("{:.1}", mean(&errors)),
                format!("{:.1}", mean(&corner_errors)),
            ]);
        }
    }
    println!("# Vision ablation — well detection and color error vs pose jitter");
    println!(
        "{}",
        table(
            &["pose jitter", "pipeline", "hough hits", "mean RGB err", "corner (H12) err"],
            &rows
        )
    );
    println!("grid alignment keeps the corner wells accurate under jitter; the raw");
    println!("fixed grid drifts off-center exactly as §2.4 warns.");
}
