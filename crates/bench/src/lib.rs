//! `sdl-bench` — shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see README.md for the experiment index); this library holds
//! the ASCII plotting, CSV and comparison-table utilities they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A named series of (x, y) points for [`ascii_plot`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Glyph used for this series' points.
    pub glyph: char,
    /// The points.
    pub points: Vec<(f64, f64)>,
}

/// Render series as a scatter plot on a character grid (x right, y up).
pub fn ascii_plot(
    series: &[Series],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    let pts = series.iter().flat_map(|s| s.points.iter());
    let (mut x_min, mut x_max, mut y_min, mut y_max) =
        (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if !x_min.is_finite() || x_max <= x_min {
        return "(no data)\n".to_string();
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            grid[row][col] = s.glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{y_label}");
    for (i, row) in grid.iter().enumerate() {
        let y_tick = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y_tick:>8.1} |{line}");
    }
    let _ = writeln!(out, "{:>9}+{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>10}{:<.1}{}{:>.1}   ({})",
        "",
        x_min,
        " ".repeat(width.saturating_sub(12)),
        x_max,
        x_label
    );
    for s in series {
        let _ = writeln!(out, "  {} = {}", s.glyph, s.label);
    }
    out
}

/// Format rows as a fixed-width table with a header rule.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * ncol;
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Emit CSV (no quoting; callers pass clean cells).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Median (sorted copy).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Parse a `--flag value` style argument from the command line, with a
/// default.
pub fn arg_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_renders_all_series() {
        let s = vec![
            Series { label: "a".into(), glyph: '1', points: vec![(0.0, 0.0), (10.0, 10.0)] },
            Series { label: "b".into(), glyph: '2', points: vec![(5.0, 5.0)] },
        ];
        let p = ascii_plot(&s, 40, 10, "x", "y");
        assert!(p.contains('1'));
        assert!(p.contains('2'));
        assert!(p.contains("a") && p.contains("b"));
    }

    #[test]
    fn plot_handles_empty_input() {
        assert_eq!(ascii_plot(&[], 10, 5, "x", "y"), "(no data)\n");
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["col", "value"],
            &[vec!["x".into(), "1".into()], vec!["longer".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("col"));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    fn stats_helpers() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
        assert!(stddev(&[2.0, 2.0, 2.0]) < 1e-12);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn csv_emits_rows() {
        let c = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }
}
