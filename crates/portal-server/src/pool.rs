//! A fixed-size worker pool for connection handling.
//!
//! Jobs are boxed closures fanned out over a shared channel; dropping the
//! pool closes the channel and joins every worker, so shutdown is a normal
//! destructor rather than a special protocol.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed set of worker threads consuming a shared job queue.
///
/// The channel itself is unbounded; admission control lives above the
/// pool (the accept loop sheds connections past its cap before they ever
/// become jobs), and [`ThreadPool::queued`] exposes the depth so callers
/// can bound and observe it.
#[derive(Debug)]
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queued: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Spawn `size` workers (clamped to at least one).
    pub fn new(size: usize) -> ThreadPool {
        let size = size.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let queued = Arc::new(AtomicUsize::new(0));
        let workers = (0..size)
            .map(|i| {
                let rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&rx);
                let queued = Arc::clone(&queued);
                std::thread::Builder::new()
                    .name(format!("portal-worker-{i}"))
                    .spawn(move || loop {
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => {
                                queued.fetch_sub(1, Ordering::Relaxed);
                                job()
                            }
                            Err(_) => break, // channel closed: pool dropped
                        }
                    })
                    .expect("spawn portal worker")
            })
            .collect();
        ThreadPool { tx: Some(tx), workers, queued }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Shared handle to the queue-depth gauge (for `/metrics`).
    pub fn depth_gauge(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.queued)
    }

    /// Queue a job; runs on the first free worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(tx) = &self.tx {
            self.queued.fetch_add(1, Ordering::Relaxed);
            // Send only fails when every worker has exited, which cannot
            // happen while the pool is alive; drop the job in that case.
            if tx.send(Box::new(job)).is_err() {
                self.queued.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_run_before_drop_returns() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            assert_eq!(pool.size(), 4);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_size_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(), 42);
    }
}
