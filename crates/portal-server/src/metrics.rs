//! Server-side observability: request counters and a latency histogram,
//! rendered in the Prometheus text exposition format at `GET /metrics`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, seconds.
const BUCKETS: [f64; 12] =
    [0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1.0];

/// Routes tracked individually (everything else lands in `other`).
const ROUTES: [&str; 9] =
    ["/", "/healthz", "/records", "/events", "/summary", "/runs", "/blobs", "/metrics", "other"];

/// Lock-free request metrics shared by all worker threads.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    by_route: [AtomicU64; ROUTES.len()],
    by_class: [AtomicU64; 5],
    latency_buckets: [AtomicU64; BUCKETS.len() + 1],
    latency_count: AtomicU64,
    latency_sum_us: AtomicU64,
    connections: AtomicU64,
    conns_active: AtomicU64,
    conn_sheds: AtomicU64,
    bytes_sent: AtomicU64,
}

/// Map a request path to its tracked route label.
pub fn route_label(path: &str) -> &'static str {
    ROUTES
        .iter()
        .find(|r| {
            path == **r
                || (r.len() > 1 && path.starts_with(**r) && path.as_bytes()[r.len()] == b'/')
        })
        .copied()
        .unwrap_or("other")
}

impl ServerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Record one accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.conns_active.fetch_add(1, Ordering::AcqRel);
    }

    /// Record one connection finishing (accepted earlier).
    pub fn record_connection_closed(&self) {
        self.conns_active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Connections accepted and not yet finished (includes ones still
    /// queued for a pool worker).
    pub fn active_connections(&self) -> u64 {
        self.conns_active.load(Ordering::Acquire)
    }

    /// Record one connection refused at accept because the live-connection
    /// cap was reached (answered `503` + `Retry-After`, never queued).
    pub fn record_conn_shed(&self) {
        self.conn_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed over the cap so far.
    pub fn conn_sheds(&self) -> u64 {
        self.conn_sheds.load(Ordering::Relaxed)
    }

    /// Record one completed request.
    pub fn record_request(&self, path: &str, status: u16, latency: Duration, body_bytes: usize) {
        let label = route_label(path);
        let route_idx = ROUTES.iter().position(|r| *r == label).unwrap_or(ROUTES.len() - 1);
        self.by_route[route_idx].fetch_add(1, Ordering::Relaxed);
        let class = (status as usize / 100).clamp(1, 5) - 1;
        self.by_class[class].fetch_add(1, Ordering::Relaxed);

        let secs = latency.as_secs_f64();
        let bucket = BUCKETS.iter().position(|&ub| secs <= ub).unwrap_or(BUCKETS.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
        self.bytes_sent.fetch_add(body_bytes as u64, Ordering::Relaxed);
    }

    /// Total requests observed.
    pub fn requests_total(&self) -> u64 {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// Render the Prometheus text format. `portal_records` / `blob_count` /
    /// `blob_bytes` are gauges sampled by the caller at scrape time.
    pub fn render_prometheus(
        &self,
        portal_records: usize,
        blob_count: usize,
        blob_bytes: usize,
        uptime: Duration,
    ) -> String {
        let mut out = String::with_capacity(2048);
        let p = "sdl_portal";

        let _ = writeln!(out, "# HELP {p}_requests_total Requests served, by route.");
        let _ = writeln!(out, "# TYPE {p}_requests_total counter");
        for (i, route) in ROUTES.iter().enumerate() {
            let _ = writeln!(
                out,
                "{p}_requests_total{{route=\"{route}\"}} {}",
                self.by_route[i].load(Ordering::Relaxed)
            );
        }

        let _ = writeln!(out, "# HELP {p}_responses_total Responses, by status class.");
        let _ = writeln!(out, "# TYPE {p}_responses_total counter");
        for (i, class) in ["1xx", "2xx", "3xx", "4xx", "5xx"].iter().enumerate() {
            let _ = writeln!(
                out,
                "{p}_responses_total{{class=\"{class}\"}} {}",
                self.by_class[i].load(Ordering::Relaxed)
            );
        }

        let _ = writeln!(out, "# HELP {p}_request_seconds Request latency histogram.");
        let _ = writeln!(out, "# TYPE {p}_request_seconds histogram");
        let mut cumulative = 0u64;
        for (i, ub) in BUCKETS.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{p}_request_seconds_bucket{{le=\"{ub}\"}} {cumulative}");
        }
        cumulative += self.latency_buckets[BUCKETS.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{p}_request_seconds_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(
            out,
            "{p}_request_seconds_sum {}",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "{p}_request_seconds_count {}",
            self.latency_count.load(Ordering::Relaxed)
        );

        let _ = writeln!(out, "# HELP {p}_connections_total Connections accepted.");
        let _ = writeln!(out, "# TYPE {p}_connections_total counter");
        let _ = writeln!(out, "{p}_connections_total {}", self.connections.load(Ordering::Relaxed));

        let _ = writeln!(out, "# HELP {p}_conns_active Connections accepted and not yet closed.");
        let _ = writeln!(out, "# TYPE {p}_conns_active gauge");
        let _ = writeln!(out, "{p}_conns_active {}", self.conns_active.load(Ordering::Acquire));

        let _ = writeln!(
            out,
            "# HELP {p}_conn_sheds_total Connections refused over the live-connection cap."
        );
        let _ = writeln!(out, "# TYPE {p}_conn_sheds_total counter");
        let _ = writeln!(out, "{p}_conn_sheds_total {}", self.conn_sheds.load(Ordering::Relaxed));

        let _ = writeln!(out, "# HELP {p}_body_bytes_sent_total Body bytes written.");
        let _ = writeln!(out, "# TYPE {p}_body_bytes_sent_total counter");
        let _ =
            writeln!(out, "{p}_body_bytes_sent_total {}", self.bytes_sent.load(Ordering::Relaxed));

        let _ = writeln!(out, "# HELP {p}_records Records currently in the portal.");
        let _ = writeln!(out, "# TYPE {p}_records gauge");
        let _ = writeln!(out, "{p}_records {portal_records}");
        let _ = writeln!(out, "# HELP {p}_blobs Blobs currently in the store.");
        let _ = writeln!(out, "# TYPE {p}_blobs gauge");
        let _ = writeln!(out, "{p}_blobs {blob_count}");
        let _ = writeln!(out, "# HELP {p}_blob_bytes In-memory blob bytes.");
        let _ = writeln!(out, "# TYPE {p}_blob_bytes gauge");
        let _ = writeln!(out, "{p}_blob_bytes {blob_bytes}");
        let _ = writeln!(out, "# HELP {p}_uptime_seconds Seconds since the server started.");
        let _ = writeln!(out, "# TYPE {p}_uptime_seconds gauge");
        let _ = writeln!(out, "{p}_uptime_seconds {:.3}", uptime.as_secs_f64());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_labels_cover_known_paths() {
        assert_eq!(route_label("/"), "/");
        assert_eq!(route_label("/healthz"), "/healthz");
        assert_eq!(route_label("/records"), "/records");
        assert_eq!(route_label("/events"), "/events");
        assert_eq!(route_label("/events/stream"), "/events");
        assert_eq!(route_label("/runs/3"), "/runs");
        assert_eq!(route_label("/blobs/blob:abc"), "/blobs");
        assert_eq!(route_label("/nope"), "other");
        assert_eq!(route_label("/recordsnot"), "other");
    }

    #[test]
    fn histogram_counts_cumulative() {
        let m = ServerMetrics::new();
        m.record_request("/records", 200, Duration::from_micros(300), 10);
        m.record_request("/records", 200, Duration::from_millis(30), 20);
        m.record_request("/nope", 404, Duration::from_secs(2), 5);
        let text = m.render_prometheus(7, 2, 100, Duration::from_secs(1));
        assert!(text.contains("sdl_portal_requests_total{route=\"/records\"} 2"));
        assert!(text.contains("sdl_portal_requests_total{route=\"other\"} 1"));
        assert!(text.contains("sdl_portal_responses_total{class=\"2xx\"} 2"));
        assert!(text.contains("sdl_portal_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("sdl_portal_request_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sdl_portal_request_seconds_count 3"));
        assert!(text.contains("sdl_portal_records 7"));
        assert!(text.contains("sdl_portal_blobs 2"));
        assert_eq!(m.requests_total(), 3);
    }
}
