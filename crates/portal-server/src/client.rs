//! A minimal HTTP/1.1 client for tests and the load generator.
//!
//! Talks `Content-Length`-framed keep-alive HTTP — exactly the dialect the
//! server speaks. Not a general-purpose client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One response as read off the wire.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to one server.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient { reader, writer: stream })
    }

    /// Issue one GET over the persistent connection.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        write!(self.writer, "GET {path} HTTP/1.1\r\nHost: portal\r\n\r\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Issue one JSON POST over the persistent connection.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        write!(
            self.writer,
            "POST {path} HTTP/1.1\r\nHost: portal\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad status: {status_line}"))
            })?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing content-length"))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(HttpResponse { status, headers, body })
    }
}

/// One-shot GET over a fresh connection.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<HttpResponse> {
    HttpClient::connect(addr)?.get(path)
}

/// One-shot JSON POST over a fresh connection.
pub fn post(addr: impl ToSocketAddrs, path: &str, body: &str) -> io::Result<HttpResponse> {
    HttpClient::connect(addr)?.post(path, body)
}
