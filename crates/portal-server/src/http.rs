//! A deliberately small HTTP/1.1 implementation over `std::io`.
//!
//! Supports exactly what the portal front-end and the batch-execution API
//! need: GET/HEAD/POST requests, percent-decoded paths and query strings,
//! `Content-Length`-framed request bodies (bounded), keep-alive
//! connections, and `Content-Length`-framed responses. No chunked
//! encoding, no TLS.

use std::io::{self, BufRead, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on one request line or header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers per request.
const MAX_HEADERS: usize = 64;
/// Upper bound on a request body (plate frames ride hex-encoded, so give
/// them room).
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// One parsed HTTP request head.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method ("GET", "HEAD", ...).
    pub method: String,
    /// Percent-decoded path, query string stripped ("/records").
    pub path: String,
    /// Percent-decoded query pairs in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length`-framed; empty for GET/HEAD).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Header value (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// True when the client asked to drop the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|c| c.eq_ignore_ascii_case("close"))
    }

    /// Body as UTF-8.
    pub fn body_text(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// Errors a request parse can produce (each maps to a 4xx).
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line or header.
    Malformed(&'static str),
    /// A line or the header block exceeded the size limits.
    TooLarge,
    /// The socket failed mid-read.
    Io(io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::TooLarge => write!(f, "request too large"),
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, ParseError> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf().map_err(ParseError::Io)?;
        if buf.is_empty() {
            // Clean EOF before any byte → no more requests on the socket.
            return if line.is_empty() { Ok(None) } else { Err(ParseError::Malformed("eof")) };
        }
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map(|i| i + 1).unwrap_or(buf.len());
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if line.len() > MAX_LINE {
            return Err(ParseError::TooLarge);
        }
        if nl.is_some() {
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| ParseError::Malformed("non-utf8 header"));
        }
    }
}

/// Decode `%xx` escapes and `+`-as-space (query component form).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Read one request head off the socket.
///
/// Returns `Ok(None)` on a clean EOF (keep-alive connection closed by the
/// peer between requests).
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, ParseError> {
    let Some(line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next().ok_or(ParseError::Malformed("empty request line"))?;
    let target = parts.next().ok_or(ParseError::Malformed("missing target"))?;
    let version = parts.next().ok_or(ParseError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(ParseError::Malformed("eof in headers"));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooLarge);
        }
        let (name, value) =
            line.split_once(':').ok_or(ParseError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Read a Content-Length-framed body so keep-alive framing stays in
    // sync even on routes that ignore it. An unparsable length is a hard
    // error — treating it as 0 would leave body bytes in the stream to be
    // misread as the next request line.
    let mut body = Vec::new();
    let length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => {
            v.parse::<usize>().map_err(|_| ParseError::Malformed("bad content-length"))?
        }
        None => 0,
    };
    if length > 0 {
        if length > MAX_BODY {
            return Err(ParseError::TooLarge);
        }
        body = vec![0u8; length];
        reader.read_exact(&mut body).map_err(ParseError::Io)?;
    }

    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path: percent_decode(raw_path),
        query: parse_query(raw_query),
        headers,
        body,
    }))
}

/// One response, always `Content-Length`-framed.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Extra headers (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes (omitted on the wire for HEAD).
    pub body: Vec<u8>,
    /// True when the connection must be dropped without writing anything —
    /// nothing goes on the wire, the socket just closes. Used by chaos
    /// injection to simulate a worker dying mid-request.
    pub hangup: bool,
}

impl Response {
    /// A response with a status, content type, and body.
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: content_type.to_string(),
            headers: Vec::new(),
            body: body.into(),
            hangup: false,
        }
    }

    /// Plain-text 200.
    pub fn text(body: impl Into<Vec<u8>>) -> Response {
        Response::new(200, "text/plain; charset=utf-8", body)
    }

    /// HTML 200.
    pub fn html(body: impl Into<Vec<u8>>) -> Response {
        Response::new(200, "text/html; charset=utf-8", body)
    }

    /// JSON 200.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response::new(200, "application/json", body)
    }

    /// Plain-text error with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        Response::new(status, "text/plain; charset=utf-8", format!("{message}\n"))
    }

    /// A load-shedding refusal: `429` (per-tenant quota) or `503`
    /// (capacity), always carrying a `Retry-After` hint in whole seconds
    /// so well-behaved clients back off instead of hammering.
    pub fn shed(status: u16, message: &str, retry_after: Duration) -> Response {
        Response::error(status, message)
            .with_header("Retry-After", retry_after.as_secs().max(1))
    }

    /// A connection hangup: the handler decided to drop the socket without
    /// answering (chaos `kill` fault). The connection loop writes nothing
    /// and closes; the status/body here never reach the wire.
    pub fn hangup() -> Response {
        Response { hangup: true, ..Response::new(500, "text/plain", "") }
    }

    /// Append a header.
    pub fn with_header(mut self, name: &str, value: impl std::fmt::Display) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        }
    }
}

/// Serialize a response; `head_only` suppresses the body (HEAD), `close`
/// advertises connection teardown.
pub fn write_response(
    w: &mut impl Write,
    resp: &Response,
    head_only: bool,
    close: bool,
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", resp.status, resp.reason())?;
    write!(w, "Content-Type: {}\r\n", resp.content_type)?;
    write!(w, "Content-Length: {}\r\n", resp.body.len())?;
    for (name, value) in &resp.headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "Connection: {}\r\n\r\n", if close { "close" } else { "keep-alive" })?;
    if !head_only {
        w.write_all(&resp.body)?;
    }
    w.flush()
}

/// Slow-loris protection: a [`Read`] adapter over a borrowed `TcpStream`
/// that enforces two wall-clock bounds per request:
///
/// * while *idle* (no byte of the next request seen yet) each read waits
///   at most `idle_timeout` — a silent keep-alive connection is released
///   after that;
/// * from the first byte of a request, every subsequent read is capped by
///   the time remaining until `now + request_deadline` — a client
///   trickling one header byte per second cannot pin a pool thread past
///   the deadline, because the socket timeout is re-armed with the
///   *remaining* time, not a fresh per-read allowance.
///
/// Call [`DeadlineStream::start_request`] before parsing each request so
/// the deadline re-arms per request, not per connection. Reads served
/// from the `BufReader` above this adapter (pipelined bytes) don't touch
/// the clock, which only makes the bound more generous, never tighter.
pub struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    idle_timeout: Duration,
    request_deadline: Duration,
    deadline: Option<Instant>,
}

impl<'a> DeadlineStream<'a> {
    /// Wrap `stream`; both durations are clamped to at least 1 ms so a
    /// zero config can't turn every read into an instant timeout.
    pub fn new(
        stream: &'a TcpStream,
        idle_timeout: Duration,
        request_deadline: Duration,
    ) -> DeadlineStream<'a> {
        DeadlineStream {
            stream,
            idle_timeout: idle_timeout.max(Duration::from_millis(1)),
            request_deadline: request_deadline.max(Duration::from_millis(1)),
            deadline: None,
        }
    }

    /// Reset to the idle phase; the next byte read arms a fresh deadline.
    pub fn start_request(&mut self) {
        self.deadline = None;
    }

    /// True when the last read failed because the request deadline
    /// expired (as opposed to an idle keep-alive timeout).
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let timeout = match self.deadline {
            None => self.idle_timeout,
            Some(deadline) => {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "request read deadline exceeded",
                    ));
                }
                left
            }
        };
        self.stream.set_read_timeout(Some(timeout))?;
        let n = self.stream.read(buf)?;
        if self.deadline.is_none() && n > 0 {
            self.deadline = Some(Instant::now() + self.request_deadline);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Request {
        read_request(&mut BufReader::new(text.as_bytes())).unwrap().unwrap()
    }

    #[test]
    fn parses_request_line_and_headers() {
        let r = parse("GET /records?kind=sample&limit=5 HTTP/1.1\r\nHost: x\r\nX-A: b\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/records");
        assert_eq!(r.query_param("kind"), Some("sample"));
        assert_eq!(r.query_param("limit"), Some("5"));
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("X-A"), Some("b"));
        assert!(!r.wants_close());
    }

    #[test]
    fn percent_decoding_applies() {
        let r = parse("GET /blobs/blob%3Aabc?name=a%20b+c HTTP/1.1\r\n\r\n");
        assert_eq!(r.path, "/blobs/blob:abc");
        assert_eq!(r.query_param("name"), Some("a b c"));
        assert_eq!(percent_decode("100%"), "100%");
    }

    #[test]
    fn clean_eof_returns_none() {
        assert!(read_request(&mut BufReader::new(&b""[..])).unwrap().is_none());
    }

    #[test]
    fn malformed_requests_error() {
        assert!(read_request(&mut BufReader::new(&b"GARBAGE\r\n\r\n"[..])).is_err());
        assert!(read_request(&mut BufReader::new(&b"GET / SPDY/3\r\n\r\n"[..])).is_err());
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(10_000));
        assert!(read_request(&mut BufReader::new(long.as_bytes())).is_err());
    }

    #[test]
    fn connection_close_detected() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(r.wants_close());
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::text("hello"), false, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn head_omits_body() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::text("hello"), true, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }
}
