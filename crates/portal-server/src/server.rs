//! Routing and the accept/serve loop.

use crate::http::{self, DeadlineStream, ParseError, Request, Response};
use crate::lab::LabHost;
use crate::metrics::ServerMetrics;
use crate::pool::ThreadPool;
use sdl_conf::{to_json, Value};
use sdl_core::{EventLog, EventRecord, ProgressModel};
use sdl_datapub::{
    field_matches, render_run_html, render_summary_html, AcdcPortal, BlobRef, BlobStore,
};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Records returned by `/records` when no `limit` is given.
const DEFAULT_PAGE: usize = 1000;
/// Hard ceiling on one `/records` page.
const MAX_PAGE: usize = 100_000;
/// Events returned by `/events` when no `limit` is given.
const DEFAULT_EVENT_PAGE: usize = 1000;
/// Hard ceiling on one `/events` page.
const MAX_EVENT_PAGE: usize = 100_000;
/// Ceiling on a `/events` long-poll timeout. Kept well under the 30 s
/// read timeout of [`crate::client::get`] so a patient poll still
/// returns a well-formed (possibly empty) response instead of a client
/// error.
const MAX_POLL: Duration = Duration::from_secs(25);
/// How often the SSE writer wakes to check for shutdown while idle.
const SSE_SLICE: Duration = Duration::from_millis(250);

/// How the server binds, sizes and bounds itself.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections. The model is
    /// thread-per-connection: a keep-alive connection occupies its worker
    /// until the peer closes or goes idle (~10 s), so size this at or
    /// above the number of concurrent clients you expect.
    pub threads: usize,
    /// Live-connection cap (`0` = unlimited): connections accepted past it
    /// are answered `503` + `Retry-After` in the accept thread and closed,
    /// never queued — the work queue stays bounded under any client load.
    pub max_conns: usize,
    /// Requests served per keep-alive connection before the server closes
    /// it (`Connection: close`); `0` = unlimited. Bounds the lifetime a
    /// single client can pin one pool worker.
    pub max_requests_per_conn: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before it is reaped.
    pub idle_timeout: Duration,
    /// Once the first byte of a request arrives, the whole head + body
    /// must land within this deadline — a trickling client (slow loris)
    /// gets `408` and the connection closed, not a parked worker.
    pub request_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 8,
            max_conns: 256,
            max_requests_per_conn: 10_000,
            idle_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(10),
        }
    }
}

/// The per-connection slice of [`ServerConfig`] handed to every handler.
#[derive(Debug, Clone, Copy)]
struct ConnLimits {
    max_requests: usize,
    idle_timeout: Duration,
    request_deadline: Duration,
}

/// The portal front-end: routes requests against a live [`AcdcPortal`] and
/// [`BlobStore`]. Routing is a pure function of the shared state, so the
/// same instance is driven concurrently by every pool worker.
#[derive(Debug)]
pub struct PortalServer {
    portal: Arc<AcdcPortal>,
    store: Arc<BlobStore>,
    metrics: Arc<ServerMetrics>,
    lab: Option<Arc<LabHost>>,
    events: Option<Arc<EventLog>>,
    /// Incremental `/metrics` fold of the event log: (next seq to read,
    /// progress so far). Folding from a cursor keeps scrapes O(new
    /// events) instead of O(log length).
    watch: Mutex<(u64, ProgressModel)>,
    /// Set by [`ServerHandle`] teardown so streaming responses
    /// (`/events/stream`) let go of their pool worker promptly.
    closing: AtomicBool,
    /// Set by [`PortalServer::begin_drain`]: new sessions are refused,
    /// in-flight work finishes, keep-alive connections close after their
    /// next response.
    draining: AtomicBool,
    /// The accept pool's queue-depth gauge, wired up by [`spawn`] (stays
    /// zero for a routing-only server that was never spawned).
    queue_depth: Arc<std::sync::atomic::AtomicUsize>,
    started: Instant,
}

impl PortalServer {
    /// A server over a portal and blob store (both may keep growing while
    /// the server runs — live campaign streaming relies on that).
    pub fn new(portal: Arc<AcdcPortal>, store: Arc<BlobStore>) -> PortalServer {
        PortalServer {
            portal,
            store,
            metrics: Arc::new(ServerMetrics::new()),
            lab: None,
            events: None,
            watch: Mutex::new((1, ProgressModel::default())),
            closing: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            queue_depth: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            started: Instant::now(),
        }
    }

    /// Enter drain mode: the lab host (when present) refuses new sessions
    /// with `503` + `Retry-After`, in-flight batches run to completion, and
    /// every keep-alive connection is closed after its next response.
    /// Irreversible; used by `sdl-lab serve` on SIGTERM before shutdown.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        if let Some(lab) = &self.lab {
            lab.begin_drain();
        }
    }

    /// True once [`PortalServer::begin_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Builder: also host the `POST /v1/*` batch-execution API, making
    /// this server a lab worker for remote experiment sessions.
    pub fn with_lab(mut self, lab: Arc<LabHost>) -> PortalServer {
        self.lab = Some(lab);
        self
    }

    /// Builder: expose a campaign event log at `GET /events` (long-poll)
    /// and `GET /events/stream` (server-sent events), and fold it into
    /// the `sdl_lab_campaign_*` gauges on `/metrics`.
    pub fn with_events(mut self, events: Arc<EventLog>) -> PortalServer {
        self.events = Some(events);
        self
    }

    /// The hosted lab sessions, when batch execution is enabled.
    pub fn lab(&self) -> Option<&Arc<LabHost>> {
        self.lab.as_ref()
    }

    /// The campaign event log being streamed, when one is attached.
    pub fn events(&self) -> Option<&Arc<EventLog>> {
        self.events.as_ref()
    }

    /// The portal being served.
    pub fn portal(&self) -> &Arc<AcdcPortal> {
        &self.portal
    }

    /// The blob store being served.
    pub fn store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    /// Request metrics (shared with `/metrics`).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Route one request to its response.
    pub fn handle(&self, req: &Request) -> Response {
        // The batch-execution API owns the /v1/ namespace (and is the only
        // place POST is meaningful).
        if req.path.starts_with("/v1/") {
            return match &self.lab {
                Some(lab) => lab.handle(req),
                None => Response::error(404, "batch execution is not enabled on this server"),
            };
        }
        if req.method != "GET" && req.method != "HEAD" {
            return Response::error(405, &format!("method {} not allowed", req.method))
                .with_header("Allow", "GET, HEAD");
        }
        match req.path.as_str() {
            "/" => self.index(),
            "/healthz" => self.healthz(),
            "/records" => self.records(req),
            "/events" => self.events_page(req),
            "/summary" => self.summary(req),
            "/metrics" => self.prometheus(),
            path if path.starts_with("/runs/") => self.run_detail(req, &path["/runs/".len()..]),
            path if path.starts_with("/blobs/") => self.blob(&path["/blobs/".len()..]),
            _ => Response::error(404, "not found"),
        }
    }

    fn index(&self) -> Response {
        let mut body = String::from(
            "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>sdl-portal</title></head>\
             <body><h1>ACDC portal server</h1><ul>\
             <li><a href=\"/records\">/records</a> — JSON-lines record stream \
             (dotted-path filters, <code>limit</code>/<code>offset</code>)</li>\
             <li><a href=\"/events\">/events</a> — campaign event log \
             (<code>from</code>/<code>limit</code>/<code>timeout_ms</code> long-poll; \
             <code>/events/stream</code> for server-sent events)</li>\
             <li><a href=\"/summary\">/summary</a> — experiment summary (Figure 3, left)</li>\
             <li>/runs/&lt;run&gt; — run detail (Figure 3, right)</li>\
             <li>/blobs/&lt;ref&gt; — raw plate images</li>\
             <li><a href=\"/healthz\">/healthz</a> — liveness</li>\
             <li><a href=\"/metrics\">/metrics</a> — Prometheus metrics</li></ul>",
        );
        let experiments = self.portal.experiments();
        if !experiments.is_empty() {
            body.push_str("<h2>experiments</h2><ul>");
            for id in experiments {
                // Percent-encode the id inside the URL; entity-escape it
                // (quotes included) in the link text.
                let text = id
                    .replace('&', "&amp;")
                    .replace('<', "&lt;")
                    .replace('>', "&gt;")
                    .replace('"', "&quot;");
                body.push_str(&format!(
                    "<li><a href=\"/summary?experiment={}\">{text}</a></li>",
                    sdl_datapub::url_encode(&id)
                ));
            }
            body.push_str("</ul>");
        }
        body.push_str("</body></html>");
        Response::html(body)
    }

    fn healthz(&self) -> Response {
        let mut v = Value::map();
        v.set("status", "ok");
        v.set("records", self.portal.len() as i64);
        v.set("blobs", self.store.len() as i64);
        v.set("uptime_s", self.started.elapsed().as_secs_f64());
        Response::json(to_json(&v))
    }

    fn records(&self, req: &Request) -> Response {
        let mut limit = DEFAULT_PAGE;
        let mut offset = 0usize;
        let mut filters: Vec<(&str, &str)> = Vec::new();
        for (key, value) in &req.query {
            match key.as_str() {
                "limit" => match value.parse::<usize>() {
                    Ok(n) => limit = n.min(MAX_PAGE),
                    Err(_) => return Response::error(400, &format!("bad limit '{value}'")),
                },
                "offset" => match value.parse::<usize>() {
                    Ok(n) => offset = n,
                    Err(_) => return Response::error(400, &format!("bad offset '{value}'")),
                },
                _ => filters.push((key, value)),
            }
        }
        let (page, total) = self.portal.search_page(
            |r| filters.iter().all(|(path, value)| field_matches(r, path, value)),
            offset,
            limit,
        );
        let mut body = String::new();
        for r in &page {
            body.push_str(&to_json(r));
            body.push('\n');
        }
        Response::new(200, "application/x-ndjson", body)
            .with_header("X-Total-Count", total)
            .with_header("X-Offset", offset)
    }

    /// `GET /events?from=<seq>&limit=<n>&timeout_ms=<t>` — the campaign
    /// event log as JSON lines, starting at sequence `from` (1-based,
    /// default 1). With `timeout_ms` the request long-polls: it blocks
    /// until the log grows past `from - 1`, closes, or the (capped)
    /// timeout lapses, then returns whatever is there — possibly an
    /// empty body. Response headers carry the cursor so clients never
    /// parse lines just to find their place: `X-Next-Seq` (pass as the
    /// next `from`), `X-Event-Head` (current log length), and
    /// `X-Log-Closed` (`true` once `campaign_closed` landed).
    fn events_page(&self, req: &Request) -> Response {
        let Some(log) = &self.events else {
            return Response::error(404, "no campaign event log is attached to this server");
        };
        let mut from = 1u64;
        let mut limit = DEFAULT_EVENT_PAGE;
        let mut timeout = Duration::ZERO;
        for (key, value) in &req.query {
            match key.as_str() {
                "from" => match value.parse::<u64>() {
                    Ok(n) => from = n.max(1),
                    Err(_) => return Response::error(400, &format!("bad from '{value}'")),
                },
                "limit" => match value.parse::<usize>() {
                    Ok(n) => limit = n.min(MAX_EVENT_PAGE),
                    Err(_) => return Response::error(400, &format!("bad limit '{value}'")),
                },
                "timeout_ms" => match value.parse::<u64>() {
                    Ok(ms) => timeout = Duration::from_millis(ms).min(MAX_POLL),
                    Err(_) => return Response::error(400, &format!("bad timeout_ms '{value}'")),
                },
                other => return Response::error(400, &format!("unknown parameter '{other}'")),
            }
        }
        let (lines, head, closed) = if timeout.is_zero() {
            log.lines_from(from, limit)
        } else {
            log.wait_from(from, limit, timeout)
        };
        let next = lines.last().map(|(seq, _)| seq + 1).unwrap_or(from);
        let mut body = String::new();
        for (_, line) in &lines {
            body.push_str(line);
            body.push('\n');
        }
        Response::new(200, "application/x-ndjson", body)
            .with_header("X-Next-Seq", next)
            .with_header("X-Event-Head", head)
            .with_header("X-Log-Closed", closed)
    }

    /// The experiment named in the query, or the portal's first one.
    fn experiment_for(&self, req: &Request) -> Option<String> {
        match req.query_param("experiment") {
            Some(id) => Some(id.to_string()),
            None => self.portal.experiments().into_iter().next(),
        }
    }

    fn summary(&self, req: &Request) -> Response {
        let Some(id) = self.experiment_for(req) else {
            return Response::error(404, "no experiment records in the portal");
        };
        Response::html(render_summary_html(&self.portal, &id))
    }

    fn run_detail(&self, req: &Request, run: &str) -> Response {
        let Ok(run) = run.parse::<u32>() else {
            return Response::error(400, &format!("bad run number '{run}'"));
        };
        let Some(id) = self.experiment_for(req) else {
            return Response::error(404, "no experiment records in the portal");
        };
        Response::html(render_run_html(&self.portal, &id, run))
    }

    fn blob(&self, raw: &str) -> Response {
        // Accept `blob:<hex>`, the filesystem-safe `blob_<hex>`, and bare
        // `<hex>` forms.
        let normalized = if let Some(hex) = raw.strip_prefix("blob:") {
            format!("blob:{hex}")
        } else if let Some(hex) = raw.strip_prefix("blob_") {
            format!("blob:{hex}")
        } else {
            format!("blob:{raw}")
        };
        match self.store.get(&BlobRef(normalized)) {
            Some(bytes) => {
                let content_type =
                    if bytes.starts_with(b"BM") { "image/bmp" } else { "application/octet-stream" };
                Response::new(200, content_type, bytes.to_vec())
            }
            None => Response::error(404, &format!("no blob '{raw}'")),
        }
    }

    fn prometheus(&self) -> Response {
        let mut text = self.metrics.render_prometheus(
            self.portal.len(),
            self.store.len(),
            self.store.total_bytes(),
            self.started.elapsed(),
        );
        {
            use std::fmt::Write as _;
            let _ = writeln!(text, "# HELP sdl_portal_queue_depth Connections queued for a pool worker.");
            let _ = writeln!(text, "# TYPE sdl_portal_queue_depth gauge");
            let _ = writeln!(
                text,
                "sdl_portal_queue_depth {}",
                self.queue_depth.load(Ordering::Relaxed)
            );
            let _ = writeln!(text, "# HELP sdl_portal_draining 1 while the server drains for shutdown.");
            let _ = writeln!(text, "# TYPE sdl_portal_draining gauge");
            let _ = writeln!(
                text,
                "sdl_portal_draining {}",
                if self.is_draining() { 1 } else { 0 }
            );
            let _ = writeln!(
                text,
                "# HELP sdl_portal_blob_evictions_total Blobs evicted from memory to spill files."
            );
            let _ = writeln!(text, "# TYPE sdl_portal_blob_evictions_total counter");
            let _ = writeln!(text, "sdl_portal_blob_evictions_total {}", self.store.evictions());
            let _ = writeln!(
                text,
                "# HELP sdl_portal_blob_reloads_total Evicted blobs reloaded from spill files."
            );
            let _ = writeln!(text, "# TYPE sdl_portal_blob_reloads_total counter");
            let _ = writeln!(text, "sdl_portal_blob_reloads_total {}", self.store.reloads());
        }
        // Worker mode: the batch-execution dispatch metrics ride along.
        if let Some(lab) = &self.lab {
            text.push_str(&lab.render_prometheus());
        }
        if let Some(gauges) = self.campaign_gauges() {
            text.push_str(&gauges);
        }
        Response::new(200, "text/plain; version=0.0.4; charset=utf-8", text)
    }

    /// Fold any new event-log lines into the cached [`ProgressModel`] and
    /// render the `sdl_lab_campaign_*` gauge block.
    fn campaign_gauges(&self) -> Option<String> {
        let log = self.events.as_ref()?;
        let mut watch = self.watch.lock().unwrap();
        loop {
            let (lines, _, _) = log.lines_from(watch.0, DEFAULT_EVENT_PAGE);
            if lines.is_empty() {
                break;
            }
            for (seq, line) in &lines {
                // Lines come straight from the append path, so a parse
                // failure is a bug — but a torn recovery suffix must not
                // take /metrics down with it.
                if let Ok(rec) = EventRecord::from_line(line) {
                    watch.1.apply(rec.seq, &rec.event);
                }
                watch.0 = seq + 1;
            }
        }
        let p = watch.1.clone();
        drop(watch);

        let mut out = String::new();
        use std::fmt::Write as _;
        let label =
            format!("campaign=\"{}\"", p.campaign.replace('\\', "\\\\").replace('"', "\\\""));
        let _ = writeln!(out, "# HELP sdl_lab_campaign_scenarios_total Scenarios in the campaign.");
        let _ = writeln!(out, "# TYPE sdl_lab_campaign_scenarios_total gauge");
        let _ = writeln!(out, "sdl_lab_campaign_scenarios_total{{{label}}} {}", p.total);
        let _ = writeln!(
            out,
            "# HELP sdl_lab_campaign_scenarios_done Scenarios finished (ok or failed)."
        );
        let _ = writeln!(out, "# TYPE sdl_lab_campaign_scenarios_done gauge");
        let _ = writeln!(out, "sdl_lab_campaign_scenarios_done{{{label}}} {}", p.done + p.failed);
        let _ = writeln!(out, "# HELP sdl_lab_campaign_scenarios_failed Scenarios that failed.");
        let _ = writeln!(out, "# TYPE sdl_lab_campaign_scenarios_failed gauge");
        let _ = writeln!(out, "sdl_lab_campaign_scenarios_failed{{{label}}} {}", p.failed);
        let _ = writeln!(out, "# HELP sdl_lab_campaign_samples_published Samples graded so far.");
        let _ = writeln!(out, "# TYPE sdl_lab_campaign_samples_published gauge");
        let _ = writeln!(out, "sdl_lab_campaign_samples_published{{{label}}} {}", p.samples);
        let _ =
            writeln!(out, "# HELP sdl_lab_campaign_event_seq Highest event-log sequence folded.");
        let _ = writeln!(out, "# TYPE sdl_lab_campaign_event_seq gauge");
        let _ = writeln!(out, "sdl_lab_campaign_event_seq{{{label}}} {}", p.seq);
        let _ = writeln!(
            out,
            "# HELP sdl_lab_campaign_worker_lag Event-seq lag of the slowest worker."
        );
        let _ = writeln!(out, "# TYPE sdl_lab_campaign_worker_lag gauge");
        let _ = writeln!(out, "sdl_lab_campaign_worker_lag{{{label}}} {}", p.slowest_worker_lag());
        let _ = writeln!(out, "# HELP sdl_lab_campaign_closed 1 once campaign_closed was logged.");
        let _ = writeln!(out, "# TYPE sdl_lab_campaign_closed gauge");
        let _ =
            writeln!(out, "sdl_lab_campaign_closed{{{label}}} {}", if p.closed { 1 } else { 0 });
        if let Some(best) = p.best {
            let _ = writeln!(out, "# HELP sdl_lab_campaign_best_score Best score seen so far.");
            let _ = writeln!(out, "# TYPE sdl_lab_campaign_best_score gauge");
            let _ = writeln!(out, "sdl_lab_campaign_best_score{{{label}}} {best}");
        }
        Some(out)
    }
}

/// A running server: bound address plus shutdown control. Dropping the
/// handle shuts the server down and joins every thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    server: Arc<PortalServer>,
}

impl ServerHandle {
    /// The bound socket address (real port even when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://host:port` for this server.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The shared server state (portal, store, metrics).
    pub fn server(&self) -> &Arc<PortalServer> {
        &self.server
    }

    /// Stop accepting, drain in-flight requests, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block the calling thread until the accept loop exits (i.e. another
    /// thread calls no one — this is for foreground `serve` use where the
    /// process lives as long as the server).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn stop(&mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Streaming responses watch this flag between frames; without it
        // an idle /events/stream subscriber would hold its pool worker
        // (and therefore the join below) until its peer went away.
        self.server.closing.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on every
        // platform, so aim at the loopback equivalent instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind and start serving on background threads.
pub fn spawn(server: PortalServer, config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let pool = ThreadPool::new(config.threads);
    let mut server = server;
    server.queue_depth = pool.depth_gauge();
    let server = Arc::new(server);
    let shutdown = Arc::new(AtomicBool::new(false));
    let max_conns = config.max_conns;
    let limits = ConnLimits {
        max_requests: config.max_requests_per_conn,
        idle_timeout: config.idle_timeout,
        request_deadline: config.request_deadline,
    };

    let accept_server = Arc::clone(&server);
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread =
        std::thread::Builder::new().name("portal-accept".to_string()).spawn(move || {
            for conn in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Admission control: past the live-connection cap the
                // accept thread itself answers an immediate 503 +
                // Retry-After and hangs up — the connection never queues,
                // so memory and queue depth stay bounded however many
                // clients pile in.
                if max_conns > 0
                    && accept_server.metrics.active_connections() >= max_conns as u64
                {
                    accept_server.metrics.record_conn_shed();
                    let resp =
                        Response::shed(503, "connection limit reached", Duration::from_secs(1));
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                    let mut writer = BufWriter::new(&stream);
                    if http::write_response(&mut writer, &resp, false, true).is_ok() {
                        // Drain the request bytes the client already sent
                        // (briefly, bounded) so closing sends a clean FIN
                        // rather than an RST that races the 503 off the
                        // peer's socket before it can read it.
                        use std::io::Read as _;
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                        let mut sink = [0u8; 1024];
                        for _ in 0..8 {
                            match (&stream).read(&mut sink) {
                                Ok(n) if n > 0 => continue,
                                _ => break,
                            }
                        }
                    }
                    continue;
                }
                accept_server.metrics.record_connection();
                let server = Arc::clone(&accept_server);
                pool.execute(move || {
                    handle_connection(&server, stream, limits);
                    server.metrics.record_connection_closed();
                });
            }
            // Dropping the pool joins every worker, so `shutdown` returns
            // only after in-flight requests finish.
        })?;

    Ok(ServerHandle { addr, shutdown, accept_thread: Some(accept_thread), server })
}

/// Serve one connection: keep-alive loop of request → route → response,
/// bounded by [`ConnLimits`] — idle reaping, a whole-request deadline
/// (slow-loris protection), and a max-requests-per-connection cap.
fn handle_connection(server: &PortalServer, stream: TcpStream, limits: ConnLimits) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    // Idle keep-alive connections are reaped, and once a request's first
    // byte arrives the whole head + body must land within the deadline —
    // a trickling peer cannot park this worker.
    let mut reader = BufReader::new(DeadlineStream::new(
        &stream,
        limits.idle_timeout,
        limits.request_deadline,
    ));
    let mut writer = BufWriter::new(write_half);
    let mut served = 0usize;

    loop {
        reader.get_mut().start_request();
        let req = match http::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => break,
            Err(ParseError::Io(_)) => {
                if reader.get_ref().deadline_expired() {
                    // A started-but-never-finished request: tell the slow
                    // loris why it was cut off, then hang up.
                    let resp = Response::error(408, "request read deadline exceeded");
                    server.metrics.record_request("bad", 408, Duration::ZERO, resp.body.len());
                    let _ = http::write_response(&mut writer, &resp, false, true);
                }
                break;
            }
            Err(e) => {
                let status = if matches!(e, ParseError::TooLarge) { 431 } else { 400 };
                let resp = Response::error(status, &e.to_string());
                server.metrics.record_request("bad", status, Duration::ZERO, resp.body.len());
                let _ = http::write_response(&mut writer, &resp, false, true);
                break;
            }
        };

        let started = Instant::now();
        let head_only = req.method == "HEAD";
        // Server-sent events cannot be Content-Length-framed, so the
        // stream route bypasses handle() and writes the socket directly.
        if req.path == "/events/stream" && req.method == "GET" {
            serve_event_stream(server, &req, &mut writer, started);
            break;
        }
        let resp = server.handle(&req);
        if resp.hangup {
            // Chaos kill: drop the socket without writing a byte, exactly
            // like a worker process dying mid-request. The client sees a
            // closed connection, not an error response.
            break;
        }
        // Bodies within bounds are fully read by read_request, so even 4xx
        // responses keep the connection in sync; only oversized/garbage
        // requests close, and those are handled in the parse-error branch
        // above.
        served += 1;
        let close = req.wants_close()
            || server.is_draining()
            || (limits.max_requests > 0 && served >= limits.max_requests);
        let sent = if head_only { 0 } else { resp.body.len() };
        server.metrics.record_request(&req.path, resp.status, started.elapsed(), sent);
        if http::write_response(&mut writer, &resp, head_only, close).is_err() || close {
            break;
        }
    }
}

/// `GET /events/stream` — the event log as a server-sent-events stream.
///
/// Frames are `id: <seq>` / `data: <log line>` pairs; `?from=<seq>`
/// resumes mid-log (SSE `Last-Event-ID` semantics, query-param form).
/// The stream ends when the log closes (`event: close` frame), the
/// server shuts down, or the peer disconnects; the connection always
/// closes afterwards — SSE is not resumable in-place.
fn serve_event_stream(
    server: &PortalServer,
    req: &Request,
    writer: &mut impl Write,
    started: Instant,
) {
    let finish = |status: u16, sent: usize| {
        server.metrics.record_request(&req.path, status, started.elapsed(), sent);
    };
    let Some(log) = server.events() else {
        let resp = Response::error(404, "no campaign event log is attached to this server");
        finish(404, resp.body.len());
        let _ = http::write_response(writer, &resp, false, true);
        return;
    };
    let mut from = match req.query_param("from").map(|v| v.parse::<u64>()) {
        None => 1,
        Some(Ok(n)) => n.max(1),
        Some(Err(_)) => {
            let resp = Response::error(400, "bad from");
            finish(400, resp.body.len());
            let _ = http::write_response(writer, &resp, false, true);
            return;
        }
    };
    if write!(
        writer,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n"
    )
    .and_then(|_| writer.flush())
    .is_err()
    {
        finish(500, 0);
        return;
    }

    let mut sent = 0usize;
    loop {
        if server.closing.load(Ordering::SeqCst) {
            break;
        }
        // Short slices rather than one long wait so shutdown is honored
        // within ~SSE_SLICE even while the log is quiet.
        let (lines, head, closed) = log.wait_from(from, DEFAULT_EVENT_PAGE, SSE_SLICE);
        let mut frame = String::new();
        for (seq, line) in &lines {
            use std::fmt::Write as _;
            let _ = write!(frame, "id: {seq}\ndata: {line}\n\n");
            from = seq + 1;
        }
        let done = closed && from > head;
        if done {
            frame.push_str("event: close\ndata: end of log\n\n");
        }
        if !frame.is_empty() {
            sent += frame.len();
            if writer.write_all(frame.as_bytes()).and_then(|_| writer.flush()).is_err() {
                break;
            }
        }
        if done {
            break;
        }
    }
    finish(200, sent);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(server: &PortalServer, target: &str) -> Response {
        let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
        let req = http::read_request(&mut BufReader::new(raw.as_bytes())).unwrap().unwrap();
        server.handle(&req)
    }

    fn test_server() -> PortalServer {
        let portal = Arc::new(AcdcPortal::new());
        let mut v = Value::map();
        v.set("kind", "experiment");
        v.set("experiment_id", "e1");
        v.set("name", "ColorPickerRPL");
        portal.ingest(v);
        for i in 0..5i64 {
            let mut v = Value::map();
            v.set("kind", "note");
            v.set("i", i);
            portal.ingest(v);
        }
        let store = Arc::new(BlobStore::in_memory());
        store.put(bytes::Bytes::from_static(b"BMbitmapdata"));
        PortalServer::new(portal, store)
    }

    #[test]
    fn index_escapes_hostile_experiment_ids() {
        let portal = Arc::new(AcdcPortal::new());
        let mut v = Value::map();
        v.set("kind", "experiment");
        v.set("experiment_id", "a&b\"<x>");
        portal.ingest(v);
        let server = PortalServer::new(portal, Arc::new(BlobStore::in_memory()));
        let body = String::from_utf8(get(&server, "/").body).unwrap();
        // The href percent-encodes the id; the link text entity-escapes it.
        assert!(body.contains("href=\"/summary?experiment=a%26b%22%3Cx%3E\""), "{body}");
        assert!(body.contains(">a&amp;b&quot;&lt;x&gt;</a>"), "{body}");
        assert!(!body.contains("experiment=a&b"), "raw & must not split the query");
    }

    #[test]
    fn routes_resolve() {
        let server = test_server();
        assert_eq!(get(&server, "/").status, 200);
        assert_eq!(get(&server, "/healthz").status, 200);
        assert_eq!(get(&server, "/records").status, 200);
        assert_eq!(get(&server, "/summary").status, 200);
        assert_eq!(get(&server, "/runs/1").status, 200);
        assert_eq!(get(&server, "/metrics").status, 200);
        assert_eq!(get(&server, "/nope").status, 404);
        assert_eq!(get(&server, "/runs/xyz").status, 400);
        assert_eq!(get(&server, "/records?limit=zzz").status, 400);
        assert_eq!(get(&server, "/blobs/missing").status, 404);
    }

    #[test]
    fn records_filters_and_paginates() {
        let server = test_server();
        let all = get(&server, "/records");
        assert_eq!(String::from_utf8(all.body).unwrap().lines().count(), 6);
        let notes = get(&server, "/records?kind=note");
        assert_eq!(String::from_utf8(notes.body).unwrap().lines().count(), 5);
        let page = get(&server, "/records?kind=note&limit=2&offset=4");
        let body = String::from_utf8(page.body).unwrap();
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"i\": 4") || body.contains("\"i\":4"), "{body}");
        assert!(page.headers.iter().any(|(k, v)| k == "X-Total-Count" && v == "5"));
        let one = get(&server, "/records?i=3");
        assert_eq!(String::from_utf8(one.body).unwrap().lines().count(), 1);
    }

    fn event_log_with_two_scenarios() -> Arc<EventLog> {
        use sdl_core::{CampaignEvent, ScenarioSummary};
        let log = Arc::new(EventLog::in_memory());
        log.append(&CampaignEvent::CampaignOpened {
            campaign: "camp\"x\"".to_string(),
            executor: "runner".to_string(),
            workers: vec!["local-0".to_string()],
            specs: vec![Value::map(), Value::map()],
        });
        log.append(&CampaignEvent::ScenarioStarted {
            index: 0,
            label: "a".to_string(),
            attempt: 0,
            worker: "local-0".to_string(),
        });
        log.append(&CampaignEvent::ScenarioFinished {
            index: 0,
            label: "a".to_string(),
            attempt: 0,
            worker: "local-0".to_string(),
            summary: ScenarioSummary {
                best_score: 12.5,
                duration: sdl_desim::SimDuration::from_micros(5000),
                samples: 4,
                plates: 1,
                robotic_commands: 9,
                solver_fallbacks: 0,
                single: None,
                multi: None,
            },
        });
        log
    }

    #[test]
    fn events_route_pages_and_reports_cursor() {
        let log = event_log_with_two_scenarios();
        let server = test_server().with_events(Arc::clone(&log));

        let all = get(&server, "/events");
        assert_eq!(all.status, 200);
        assert_eq!(all.content_type, "application/x-ndjson");
        let body = String::from_utf8(all.body).unwrap();
        assert_eq!(body.lines().count(), 3);
        assert!(body.lines().all(|l| EventRecord::from_line(l).is_ok()), "{body}");
        assert!(all.headers.iter().any(|(k, v)| k == "X-Next-Seq" && v == "4"));
        assert!(all.headers.iter().any(|(k, v)| k == "X-Event-Head" && v == "3"));
        assert!(all.headers.iter().any(|(k, v)| k == "X-Log-Closed" && v == "false"));

        let page = get(&server, "/events?from=2&limit=1");
        let body = String::from_utf8(page.body).unwrap();
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("scenario_started"), "{body}");
        assert!(page.headers.iter().any(|(k, v)| k == "X-Next-Seq" && v == "3"));

        // Past the head: empty body, cursor unchanged.
        let empty = get(&server, "/events?from=9");
        assert!(empty.body.is_empty());
        assert!(empty.headers.iter().any(|(k, v)| k == "X-Next-Seq" && v == "9"));

        assert_eq!(get(&server, "/events?from=zero").status, 400);
        assert_eq!(get(&server, "/events?nope=1").status, 400);
        assert_eq!(get(&test_server(), "/events").status, 404);
    }

    #[test]
    fn events_long_poll_returns_on_append() {
        use sdl_core::CampaignEvent;
        let log = event_log_with_two_scenarios();
        let server = Arc::new(test_server().with_events(Arc::clone(&log)));
        let poller = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || get(&server, "/events?from=4&timeout_ms=5000"))
        };
        std::thread::sleep(Duration::from_millis(50));
        log.append(&CampaignEvent::WorkerReadmitted { worker: "local-0".to_string() });
        let resp = poller.join().unwrap();
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("worker_readmitted"), "{body}");
    }

    #[test]
    fn campaign_gauges_render_on_metrics() {
        let log = event_log_with_two_scenarios();
        let server = test_server().with_events(log);
        let text = String::from_utf8(get(&server, "/metrics").body).unwrap();
        let label = "campaign=\"camp\\\"x\\\"\"";
        assert!(text.contains(&format!("sdl_lab_campaign_scenarios_total{{{label}}} 2")), "{text}");
        assert!(text.contains(&format!("sdl_lab_campaign_scenarios_done{{{label}}} 1")), "{text}");
        assert!(text.contains(&format!("sdl_lab_campaign_event_seq{{{label}}} 3")), "{text}");
        assert!(text.contains(&format!("sdl_lab_campaign_best_score{{{label}}} 12.5")), "{text}");
        assert!(text.contains(&format!("sdl_lab_campaign_closed{{{label}}} 0")), "{text}");
        // The fold is incremental: a second scrape after no growth reads
        // nothing new and renders the same gauges.
        let again = String::from_utf8(get(&server, "/metrics").body).unwrap();
        assert!(again.contains(&format!("sdl_lab_campaign_event_seq{{{label}}} 3")), "{again}");
        // No log attached → no campaign block at all.
        let bare = String::from_utf8(get(&test_server(), "/metrics").body).unwrap();
        assert!(!bare.contains("sdl_lab_campaign_"), "{bare}");
    }

    #[test]
    fn event_stream_writes_sse_frames_until_close() {
        use sdl_core::CampaignEvent;
        let log = event_log_with_two_scenarios();
        log.append(&CampaignEvent::CampaignClosed {
            scenarios: 2,
            failed: 0,
            best_score: Some(12.5),
            scheduler: None,
        });
        let server = test_server().with_events(log);
        let raw = "GET /events/stream?from=2 HTTP/1.1\r\n\r\n";
        let req = http::read_request(&mut BufReader::new(raw.as_bytes())).unwrap().unwrap();
        let mut out = Vec::new();
        serve_event_stream(&server, &req, &mut out, Instant::now());
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: text/event-stream"), "{text}");
        assert!(!text.contains("Content-Length"), "{text}");
        assert!(text.contains("id: 2\ndata: "), "{text}");
        assert!(text.contains("id: 4\ndata: "), "{text}");
        assert!(!text.contains("id: 1\n"), "from=2 must skip seq 1: {text}");
        assert!(text.ends_with("event: close\ndata: end of log\n\n"), "{text}");
    }

    #[test]
    fn blob_content_type_sniffs_bmp() {
        let server = test_server();
        let r = server.store().refs().pop().unwrap();
        let resp = get(&server, &format!("/blobs/{}", r.0));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "image/bmp");
        assert_eq!(resp.body, b"BMbitmapdata");
        // Filesystem-safe and bare-hex forms resolve to the same blob.
        let alt = get(&server, &format!("/blobs/{}", r.0.replace(':', "_")));
        assert_eq!(alt.status, 200);
        let bare = get(&server, &format!("/blobs/{}", r.0.strip_prefix("blob:").unwrap()));
        assert_eq!(bare.status, 200);
    }
}
