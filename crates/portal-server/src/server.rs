//! Routing and the accept/serve loop.

use crate::http::{self, ParseError, Request, Response};
use crate::lab::LabHost;
use crate::metrics::ServerMetrics;
use crate::pool::ThreadPool;
use sdl_conf::{to_json, Value};
use sdl_datapub::{
    field_matches, render_run_html, render_summary_html, AcdcPortal, BlobRef, BlobStore,
};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Records returned by `/records` when no `limit` is given.
const DEFAULT_PAGE: usize = 1000;
/// Hard ceiling on one `/records` page.
const MAX_PAGE: usize = 100_000;

/// How the server binds and sizes itself.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections. The model is
    /// thread-per-connection: a keep-alive connection occupies its worker
    /// until the peer closes or goes idle (~10 s), so size this at or
    /// above the number of concurrent clients you expect.
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { addr: "127.0.0.1:0".to_string(), threads: 8 }
    }
}

/// The portal front-end: routes requests against a live [`AcdcPortal`] and
/// [`BlobStore`]. Routing is a pure function of the shared state, so the
/// same instance is driven concurrently by every pool worker.
#[derive(Debug)]
pub struct PortalServer {
    portal: Arc<AcdcPortal>,
    store: Arc<BlobStore>,
    metrics: Arc<ServerMetrics>,
    lab: Option<Arc<LabHost>>,
    started: Instant,
}

impl PortalServer {
    /// A server over a portal and blob store (both may keep growing while
    /// the server runs — live campaign streaming relies on that).
    pub fn new(portal: Arc<AcdcPortal>, store: Arc<BlobStore>) -> PortalServer {
        PortalServer {
            portal,
            store,
            metrics: Arc::new(ServerMetrics::new()),
            lab: None,
            started: Instant::now(),
        }
    }

    /// Builder: also host the `POST /v1/*` batch-execution API, making
    /// this server a lab worker for remote experiment sessions.
    pub fn with_lab(mut self, lab: Arc<LabHost>) -> PortalServer {
        self.lab = Some(lab);
        self
    }

    /// The hosted lab sessions, when batch execution is enabled.
    pub fn lab(&self) -> Option<&Arc<LabHost>> {
        self.lab.as_ref()
    }

    /// The portal being served.
    pub fn portal(&self) -> &Arc<AcdcPortal> {
        &self.portal
    }

    /// The blob store being served.
    pub fn store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    /// Request metrics (shared with `/metrics`).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Route one request to its response.
    pub fn handle(&self, req: &Request) -> Response {
        // The batch-execution API owns the /v1/ namespace (and is the only
        // place POST is meaningful).
        if req.path.starts_with("/v1/") {
            return match &self.lab {
                Some(lab) => lab.handle(req),
                None => Response::error(404, "batch execution is not enabled on this server"),
            };
        }
        if req.method != "GET" && req.method != "HEAD" {
            return Response::error(405, &format!("method {} not allowed", req.method))
                .with_header("Allow", "GET, HEAD");
        }
        match req.path.as_str() {
            "/" => self.index(),
            "/healthz" => self.healthz(),
            "/records" => self.records(req),
            "/summary" => self.summary(req),
            "/metrics" => self.prometheus(),
            path if path.starts_with("/runs/") => self.run_detail(req, &path["/runs/".len()..]),
            path if path.starts_with("/blobs/") => self.blob(&path["/blobs/".len()..]),
            _ => Response::error(404, "not found"),
        }
    }

    fn index(&self) -> Response {
        let mut body = String::from(
            "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>sdl-portal</title></head>\
             <body><h1>ACDC portal server</h1><ul>\
             <li><a href=\"/records\">/records</a> — JSON-lines record stream \
             (dotted-path filters, <code>limit</code>/<code>offset</code>)</li>\
             <li><a href=\"/summary\">/summary</a> — experiment summary (Figure 3, left)</li>\
             <li>/runs/&lt;run&gt; — run detail (Figure 3, right)</li>\
             <li>/blobs/&lt;ref&gt; — raw plate images</li>\
             <li><a href=\"/healthz\">/healthz</a> — liveness</li>\
             <li><a href=\"/metrics\">/metrics</a> — Prometheus metrics</li></ul>",
        );
        let experiments = self.portal.experiments();
        if !experiments.is_empty() {
            body.push_str("<h2>experiments</h2><ul>");
            for id in experiments {
                // Percent-encode the id inside the URL; entity-escape it
                // (quotes included) in the link text.
                let text = id
                    .replace('&', "&amp;")
                    .replace('<', "&lt;")
                    .replace('>', "&gt;")
                    .replace('"', "&quot;");
                body.push_str(&format!(
                    "<li><a href=\"/summary?experiment={}\">{text}</a></li>",
                    sdl_datapub::url_encode(&id)
                ));
            }
            body.push_str("</ul>");
        }
        body.push_str("</body></html>");
        Response::html(body)
    }

    fn healthz(&self) -> Response {
        let mut v = Value::map();
        v.set("status", "ok");
        v.set("records", self.portal.len() as i64);
        v.set("blobs", self.store.len() as i64);
        v.set("uptime_s", self.started.elapsed().as_secs_f64());
        Response::json(to_json(&v))
    }

    fn records(&self, req: &Request) -> Response {
        let mut limit = DEFAULT_PAGE;
        let mut offset = 0usize;
        let mut filters: Vec<(&str, &str)> = Vec::new();
        for (key, value) in &req.query {
            match key.as_str() {
                "limit" => match value.parse::<usize>() {
                    Ok(n) => limit = n.min(MAX_PAGE),
                    Err(_) => return Response::error(400, &format!("bad limit '{value}'")),
                },
                "offset" => match value.parse::<usize>() {
                    Ok(n) => offset = n,
                    Err(_) => return Response::error(400, &format!("bad offset '{value}'")),
                },
                _ => filters.push((key, value)),
            }
        }
        let (page, total) = self.portal.search_page(
            |r| filters.iter().all(|(path, value)| field_matches(r, path, value)),
            offset,
            limit,
        );
        let mut body = String::new();
        for r in &page {
            body.push_str(&to_json(r));
            body.push('\n');
        }
        Response::new(200, "application/x-ndjson", body)
            .with_header("X-Total-Count", total)
            .with_header("X-Offset", offset)
    }

    /// The experiment named in the query, or the portal's first one.
    fn experiment_for(&self, req: &Request) -> Option<String> {
        match req.query_param("experiment") {
            Some(id) => Some(id.to_string()),
            None => self.portal.experiments().into_iter().next(),
        }
    }

    fn summary(&self, req: &Request) -> Response {
        let Some(id) = self.experiment_for(req) else {
            return Response::error(404, "no experiment records in the portal");
        };
        Response::html(render_summary_html(&self.portal, &id))
    }

    fn run_detail(&self, req: &Request, run: &str) -> Response {
        let Ok(run) = run.parse::<u32>() else {
            return Response::error(400, &format!("bad run number '{run}'"));
        };
        let Some(id) = self.experiment_for(req) else {
            return Response::error(404, "no experiment records in the portal");
        };
        Response::html(render_run_html(&self.portal, &id, run))
    }

    fn blob(&self, raw: &str) -> Response {
        // Accept `blob:<hex>`, the filesystem-safe `blob_<hex>`, and bare
        // `<hex>` forms.
        let normalized = if let Some(hex) = raw.strip_prefix("blob:") {
            format!("blob:{hex}")
        } else if let Some(hex) = raw.strip_prefix("blob_") {
            format!("blob:{hex}")
        } else {
            format!("blob:{raw}")
        };
        match self.store.get(&BlobRef(normalized)) {
            Some(bytes) => {
                let content_type =
                    if bytes.starts_with(b"BM") { "image/bmp" } else { "application/octet-stream" };
                Response::new(200, content_type, bytes.to_vec())
            }
            None => Response::error(404, &format!("no blob '{raw}'")),
        }
    }

    fn prometheus(&self) -> Response {
        let mut text = self.metrics.render_prometheus(
            self.portal.len(),
            self.store.len(),
            self.store.total_bytes(),
            self.started.elapsed(),
        );
        // Worker mode: the batch-execution dispatch metrics ride along.
        if let Some(lab) = &self.lab {
            text.push_str(&lab.render_prometheus());
        }
        Response::new(200, "text/plain; version=0.0.4; charset=utf-8", text)
    }
}

/// A running server: bound address plus shutdown control. Dropping the
/// handle shuts the server down and joins every thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    server: Arc<PortalServer>,
}

impl ServerHandle {
    /// The bound socket address (real port even when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://host:port` for this server.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The shared server state (portal, store, metrics).
    pub fn server(&self) -> &Arc<PortalServer> {
        &self.server
    }

    /// Stop accepting, drain in-flight requests, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block the calling thread until the accept loop exits (i.e. another
    /// thread calls no one — this is for foreground `serve` use where the
    /// process lives as long as the server).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn stop(&mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on every
        // platform, so aim at the loopback equivalent instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind and start serving on background threads.
pub fn spawn(server: PortalServer, config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let server = Arc::new(server);
    let shutdown = Arc::new(AtomicBool::new(false));
    let threads = config.threads;

    let accept_server = Arc::clone(&server);
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread =
        std::thread::Builder::new().name("portal-accept".to_string()).spawn(move || {
            let pool = ThreadPool::new(threads);
            for conn in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                accept_server.metrics.record_connection();
                let server = Arc::clone(&accept_server);
                pool.execute(move || handle_connection(&server, stream));
            }
            // Dropping the pool joins every worker, so `shutdown` returns
            // only after in-flight requests finish.
        })?;

    Ok(ServerHandle { addr, shutdown, accept_thread: Some(accept_thread), server })
}

/// Serve one connection: keep-alive loop of request → route → response.
fn handle_connection(server: &PortalServer, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // Idle keep-alive connections are reaped so workers cannot be held
    // hostage forever by a silent peer.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        let req = match http::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => break,
            Err(ParseError::Io(_)) => break,
            Err(e) => {
                let status = if matches!(e, ParseError::TooLarge) { 431 } else { 400 };
                let resp = Response::error(status, &e.to_string());
                server.metrics.record_request("bad", status, Duration::ZERO, resp.body.len());
                let _ = http::write_response(&mut writer, &resp, false, true);
                break;
            }
        };

        let started = Instant::now();
        let head_only = req.method == "HEAD";
        let resp = server.handle(&req);
        // Bodies within bounds are fully read by read_request, so even 4xx
        // responses keep the connection in sync; only oversized/garbage
        // requests close, and those are handled in the parse-error branch
        // above.
        let close = req.wants_close();
        let sent = if head_only { 0 } else { resp.body.len() };
        server.metrics.record_request(&req.path, resp.status, started.elapsed(), sent);
        if http::write_response(&mut writer, &resp, head_only, close).is_err() || close {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(server: &PortalServer, target: &str) -> Response {
        let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
        let req = http::read_request(&mut BufReader::new(raw.as_bytes())).unwrap().unwrap();
        server.handle(&req)
    }

    fn test_server() -> PortalServer {
        let portal = Arc::new(AcdcPortal::new());
        let mut v = Value::map();
        v.set("kind", "experiment");
        v.set("experiment_id", "e1");
        v.set("name", "ColorPickerRPL");
        portal.ingest(v);
        for i in 0..5i64 {
            let mut v = Value::map();
            v.set("kind", "note");
            v.set("i", i);
            portal.ingest(v);
        }
        let store = Arc::new(BlobStore::in_memory());
        store.put(bytes::Bytes::from_static(b"BMbitmapdata"));
        PortalServer::new(portal, store)
    }

    #[test]
    fn index_escapes_hostile_experiment_ids() {
        let portal = Arc::new(AcdcPortal::new());
        let mut v = Value::map();
        v.set("kind", "experiment");
        v.set("experiment_id", "a&b\"<x>");
        portal.ingest(v);
        let server = PortalServer::new(portal, Arc::new(BlobStore::in_memory()));
        let body = String::from_utf8(get(&server, "/").body).unwrap();
        // The href percent-encodes the id; the link text entity-escapes it.
        assert!(body.contains("href=\"/summary?experiment=a%26b%22%3Cx%3E\""), "{body}");
        assert!(body.contains(">a&amp;b&quot;&lt;x&gt;</a>"), "{body}");
        assert!(!body.contains("experiment=a&b"), "raw & must not split the query");
    }

    #[test]
    fn routes_resolve() {
        let server = test_server();
        assert_eq!(get(&server, "/").status, 200);
        assert_eq!(get(&server, "/healthz").status, 200);
        assert_eq!(get(&server, "/records").status, 200);
        assert_eq!(get(&server, "/summary").status, 200);
        assert_eq!(get(&server, "/runs/1").status, 200);
        assert_eq!(get(&server, "/metrics").status, 200);
        assert_eq!(get(&server, "/nope").status, 404);
        assert_eq!(get(&server, "/runs/xyz").status, 400);
        assert_eq!(get(&server, "/records?limit=zzz").status, 400);
        assert_eq!(get(&server, "/blobs/missing").status, 404);
    }

    #[test]
    fn records_filters_and_paginates() {
        let server = test_server();
        let all = get(&server, "/records");
        assert_eq!(String::from_utf8(all.body).unwrap().lines().count(), 6);
        let notes = get(&server, "/records?kind=note");
        assert_eq!(String::from_utf8(notes.body).unwrap().lines().count(), 5);
        let page = get(&server, "/records?kind=note&limit=2&offset=4");
        let body = String::from_utf8(page.body).unwrap();
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"i\": 4") || body.contains("\"i\":4"), "{body}");
        assert!(page.headers.iter().any(|(k, v)| k == "X-Total-Count" && v == "5"));
        let one = get(&server, "/records?i=3");
        assert_eq!(String::from_utf8(one.body).unwrap().lines().count(), 1);
    }

    #[test]
    fn blob_content_type_sniffs_bmp() {
        let server = test_server();
        let r = server.store().refs().pop().unwrap();
        let resp = get(&server, &format!("/blobs/{}", r.0));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "image/bmp");
        assert_eq!(resp.body, b"BMbitmapdata");
        // Filesystem-safe and bare-hex forms resolve to the same blob.
        let alt = get(&server, &format!("/blobs/{}", r.0.replace(':', "_")));
        assert_eq!(alt.status, 200);
        let bare = get(&server, &format!("/blobs/{}", r.0.strip_prefix("blob:").unwrap()));
        assert_eq!(bare.status, 200);
    }
}
