//! The batch-execution API: simulated labs hosted behind `POST /v1/*`.
//!
//! A [`LabHost`] turns this server into a lab *worker*: a remote
//! `Experiment` session (see `sdl_core::RemoteBackend`) creates a
//! [`sdl_core::SimBackend`] here from a shipped scenario configuration,
//! submits batches against it, and closes it for final telemetry. All
//! payloads are encoded by `sdl_core::wire`, the single protocol
//! definition shared with the client.
//!
//! Routes (all JSON bodies):
//!
//! * `POST /v1/experiments` — body: an application config document; opens a
//!   lab session, responds `{session, plate_capacity, dye_channels, …}`.
//! * `POST /v1/batch?session=ID` — body: `{run, ratios}`; executes one
//!   batch, responds `{measurements, elapsed_us, timing?, image_hex?}`.
//! * `POST /v1/close?session=ID` — body: `{samples}`; disposes the plate,
//!   responds the final telemetry, deletes the session.
//! * `GET  /v1/sessions` — live session ids (diagnostics).
//!
//! Batch submission is **idempotent per run number**: the host caches each
//! session's last response, and resubmitting the same `run` replays the
//! cache instead of re-executing the lab. That makes the client's
//! resend-on-lost-connection safe even when the worker read a request but
//! failed before the response got out. Sessions abandoned by a crashed
//! client are evicted after [`SESSION_TTL`] of inactivity.

use crate::http::{Request, Response};
use parking_lot::Mutex;
use sdl_conf::{from_json, to_json, Value, ValueExt};
use sdl_core::{
    wire, AppConfig, AppError, ChaosClock, ChaosPolicy, LabBackend, SimBackend, WorkerFault,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Idle time after which an abandoned lab session is evicted (a driving
/// process that crashed without posting `/v1/close` must not leak a
/// simulated workcell in the worker forever).
pub const SESSION_TTL: Duration = Duration::from_secs(30 * 60);

/// Most token buckets kept before idle ones are pruned (a tenant id churn
/// attack must not grow the quota table unboundedly).
const MAX_TENANTS: usize = 1024;

/// Per-tenant token-bucket quota: `rate` requests per second refilling a
/// bucket of `burst` tokens; each admitted `/v1` POST costs one token.
///
/// The tenant key is the lab session id (`?session=`), so every open
/// session — one scenario attempt of one campaign — gets its own bucket;
/// session creation itself draws from a shared `"open"` bucket, which is
/// what bounds how fast new tenants can appear.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaPolicy {
    /// Sustained refill rate, tokens (requests) per second.
    pub rate: f64,
    /// Bucket capacity — the tolerated burst above the sustained rate.
    pub burst: f64,
}

impl QuotaPolicy {
    /// `rate` requests/second with a burst of the same size (min 1).
    pub fn per_second(rate: f64) -> QuotaPolicy {
        QuotaPolicy { rate, burst: rate.max(1.0) }
    }

    /// Parse `"RATE"` or `"RATE:BURST"` (e.g. `"5"`, `"2.5:20"`).
    pub fn parse(spec: &str) -> Result<QuotaPolicy, String> {
        let (rate, burst) = match spec.split_once(':') {
            Some((r, b)) => (r, Some(b)),
            None => (spec, None),
        };
        let rate: f64 =
            rate.trim().parse().map_err(|_| format!("bad quota rate '{}'", rate.trim()))?;
        if !rate.is_finite() || rate <= 0.0 {
            return Err(format!("quota rate must be positive, got {rate}"));
        }
        let burst = match burst {
            Some(b) => {
                let b: f64 =
                    b.trim().parse().map_err(|_| format!("bad quota burst '{}'", b.trim()))?;
                if !b.is_finite() || b < 1.0 {
                    return Err(format!("quota burst must be >= 1, got {b}"));
                }
                b
            }
            None => rate.max(1.0),
        };
        Ok(QuotaPolicy { rate, burst })
    }
}

/// One tenant's token bucket.
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// One hosted lab: the simulated backend plus idempotency bookkeeping.
struct LabSession {
    backend: SimBackend,
    /// The last executed batch's `(run, response)` — replayed verbatim if
    /// the client resends the same run after a lost response.
    last_batch: Option<(u32, Value)>,
    last_used: Instant,
}

/// Closed-session responses kept for lost-response replay.
const CLOSED_CACHE: usize = 64;

/// Lock-free dispatch counters for the batch-execution API, rendered next
/// to the route metrics at `GET /metrics` (`sdl_lab_*`). These are what a
/// campaign scheduler's per-worker view looks like from the worker's side:
/// in-flight batches, replayed (client-retried) runs, session churn.
#[derive(Debug, Default)]
pub struct LabMetrics {
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    sessions_evicted: AtomicU64,
    batches_executed: AtomicU64,
    /// Duplicate-run resubmissions answered from the idempotency cache —
    /// each one is a scheduler/client retry observed on this worker.
    batch_replays: AtomicU64,
    /// Batches currently executing (gauge).
    batches_inflight: AtomicU64,
    /// Chaos-injected request stalls (`--chaos stall=…`).
    chaos_stalls: AtomicU64,
    /// Chaos-injected 500 responses (`--chaos error=…`).
    chaos_errors: AtomicU64,
    /// Chaos-injected connection hangups (`--chaos kill=…`).
    chaos_kills: AtomicU64,
    /// Chaos-injected 429 sheds (`--chaos shed=…`).
    chaos_sheds: AtomicU64,
    /// Every `/v1` request refused with 429/503 instead of being served
    /// (quota, in-flight cap, drain, and chaos sheds combined).
    shed_total: AtomicU64,
    /// Requests refused because the tenant's token bucket ran dry (429).
    quota_denials: AtomicU64,
    /// Batches refused because the in-flight cap was reached (503).
    capacity_denials: AtomicU64,
    /// Session-open requests refused because the host is draining (503).
    drain_denials: AtomicU64,
}

impl LabMetrics {
    /// Batches currently executing.
    pub fn inflight(&self) -> u64 {
        self.batches_inflight.load(Ordering::Relaxed)
    }

    /// Duplicate-run replays served (observed client retries).
    pub fn replays(&self) -> u64 {
        self.batch_replays.load(Ordering::Relaxed)
    }

    /// Batches executed (idempotent replays excluded).
    pub fn executed(&self) -> u64 {
        self.batches_executed.load(Ordering::Relaxed)
    }

    /// Sessions evicted after [`SESSION_TTL`] of inactivity.
    pub fn evicted(&self) -> u64 {
        self.sessions_evicted.load(Ordering::Relaxed)
    }

    /// Total chaos faults this worker injected into its own requests.
    pub fn chaos_injected(&self) -> u64 {
        self.chaos_stalls.load(Ordering::Relaxed)
            + self.chaos_errors.load(Ordering::Relaxed)
            + self.chaos_kills.load(Ordering::Relaxed)
            + self.chaos_sheds.load(Ordering::Relaxed)
    }

    /// Requests refused with 429/503 instead of served (all causes).
    pub fn shed(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Requests refused because a tenant's token bucket ran dry.
    pub fn quota_denials(&self) -> u64 {
        self.quota_denials.load(Ordering::Relaxed)
    }

    /// Batches refused at the in-flight cap.
    pub fn capacity_denials(&self) -> u64 {
        self.capacity_denials.load(Ordering::Relaxed)
    }

    /// Session opens refused while draining.
    pub fn drain_denials(&self) -> u64 {
        self.drain_denials.load(Ordering::Relaxed)
    }

    fn count_shed(&self, cause: &AtomicU64) {
        cause.fetch_add(1, Ordering::Relaxed);
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }
}

/// Decrements the in-flight gauge even when a handler early-returns.
struct InflightGuard<'a>(&'a AtomicU64);

impl<'a> InflightGuard<'a> {
    fn enter(gauge: &'a AtomicU64) -> InflightGuard<'a> {
        gauge.fetch_add(1, Ordering::Relaxed);
        InflightGuard(gauge)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Hosts simulated-lab sessions for remote experiment drivers.
#[derive(Default)]
pub struct LabHost {
    sessions: Mutex<BTreeMap<String, Arc<Mutex<LabSession>>>>,
    /// Final responses of recently closed sessions, so a client that lost
    /// the `/v1/close` response can resend and still collect its telemetry
    /// (bounded FIFO of [`CLOSED_CACHE`] entries).
    closed: Mutex<Vec<(String, Value)>>,
    next_id: AtomicU64,
    metrics: LabMetrics,
    /// Worker-side fault injection (`sdl-lab serve --chaos`): rolled once
    /// per `/v1` request in arrival order.
    chaos: Option<ChaosClock>,
    /// Per-tenant admission quota (`serve --quota`); `None` admits all.
    quota: Option<QuotaPolicy>,
    /// Live token buckets, keyed by tenant (session id, or `"open"` for
    /// session creation).
    buckets: Mutex<BTreeMap<String, Bucket>>,
    /// Most batches executing at once before `/v1/batch` sheds with 503;
    /// 0 = unbounded.
    max_inflight: u64,
    /// Graceful drain: refuse new sessions, finish in-flight work.
    draining: AtomicBool,
}

impl std::fmt::Debug for LabHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabHost").field("sessions", &self.len()).finish()
    }
}

impl LabHost {
    /// An empty host (no sessions).
    pub fn new() -> LabHost {
        LabHost::default()
    }

    /// Attach worker-side chaos: every `/v1` request rolls `policy`'s
    /// `stall`/`error`/`kill` faults before being served. Health probes
    /// (`/healthz`) are unaffected — a chaos'd worker stays observable, so
    /// eviction and readmission still work. A no-op policy attaches
    /// nothing.
    pub fn with_chaos(mut self, policy: ChaosPolicy) -> LabHost {
        self.chaos = if policy.is_noop() { None } else { Some(ChaosClock::new(policy)) };
        self
    }

    /// Enforce a per-tenant token-bucket quota on `/v1` POSTs: over-quota
    /// requests get an immediate `429` with `Retry-After` instead of
    /// queuing.
    pub fn with_quota(mut self, quota: QuotaPolicy) -> LabHost {
        self.quota = Some(quota);
        self
    }

    /// Cap concurrently executing batches; past the cap `/v1/batch` sheds
    /// with `503` + `Retry-After` instead of piling more lab work onto the
    /// pool. 0 (the default) means unbounded.
    pub fn with_max_inflight(mut self, max: u64) -> LabHost {
        self.max_inflight = max;
        self
    }

    /// Enter drain mode: new sessions are refused with `503`, in-flight
    /// batches and closes on existing sessions keep being served so no
    /// accepted work is lost.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// True once [`LabHost::begin_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Charge one token to `tenant`'s bucket; on an empty bucket, the
    /// error is how long until one token refills (the `Retry-After` hint).
    fn admit(&self, tenant: &str) -> Result<(), Duration> {
        let Some(quota) = self.quota else { return Ok(()) };
        let now = Instant::now();
        let mut buckets = self.buckets.lock();
        if buckets.len() >= MAX_TENANTS && !buckets.contains_key(tenant) {
            // Prune buckets that have fully refilled — they carry no state
            // a fresh bucket wouldn't have.
            buckets.retain(|_, b| {
                b.tokens + b.last.elapsed().as_secs_f64() * quota.rate < quota.burst
            });
        }
        let bucket = buckets
            .entry(tenant.to_string())
            .or_insert_with(|| Bucket { tokens: quota.burst, last: now });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * quota.rate).min(quota.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64((1.0 - bucket.tokens) / quota.rate))
        }
    }

    /// Live token buckets (quota tenants currently tracked).
    pub fn quota_tenants(&self) -> usize {
        self.buckets.lock().len()
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// True when no lab sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The host's dispatch counters.
    pub fn metrics(&self) -> &LabMetrics {
        &self.metrics
    }

    /// Render the batch-execution metrics in the Prometheus text format
    /// (appended to the portal route metrics at `GET /metrics`).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let p = "sdl_lab";
        let m = &self.metrics;
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {p}_{name} {help}");
            let _ = writeln!(out, "# TYPE {p}_{name} gauge");
            let _ = writeln!(out, "{p}_{name} {v}");
        };
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {p}_{name} {help}");
            let _ = writeln!(out, "# TYPE {p}_{name} counter");
            let _ = writeln!(out, "{p}_{name} {v}");
        };
        gauge(&mut out, "sessions_open", "Live lab sessions.", self.len() as u64);
        gauge(
            &mut out,
            "batches_inflight",
            "Batches currently executing.",
            m.batches_inflight.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "sessions_opened_total",
            "Lab sessions created.",
            m.sessions_opened.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "sessions_closed_total",
            "Lab sessions closed by the client.",
            m.sessions_closed.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "sessions_evicted_total",
            "Abandoned sessions evicted after the idle TTL.",
            m.sessions_evicted.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "batches_executed_total",
            "Batches mixed and measured.",
            m.batches_executed.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "batch_replays_total",
            "Duplicate-run resubmissions answered from the idempotency cache (client retries).",
            m.batch_replays.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "chaos_stalls_total",
            "Chaos-injected request stalls (`--chaos stall=`).",
            m.chaos_stalls.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "chaos_errors_total",
            "Chaos-injected HTTP 500 responses (`--chaos error=`).",
            m.chaos_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "chaos_kills_total",
            "Chaos-injected connection hangups (`--chaos kill=`).",
            m.chaos_kills.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "chaos_sheds_total",
            "Chaos-injected 429 sheds (`--chaos shed=`).",
            m.chaos_sheds.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "shed_total",
            "Requests refused with 429/503 instead of served (all causes).",
            m.shed_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "quota_denials_total",
            "Requests refused because the tenant's token bucket ran dry (429).",
            m.quota_denials.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "capacity_denials_total",
            "Batches refused at the in-flight cap (503).",
            m.capacity_denials.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "drain_denials_total",
            "Session opens refused while draining (503).",
            m.drain_denials.load(Ordering::Relaxed),
        );
        gauge(&mut out, "quota_tenants", "Live quota token buckets.", self.quota_tenants() as u64);
        gauge(
            &mut out,
            "draining",
            "1 while the host is draining (refusing new sessions).",
            self.is_draining() as u64,
        );
        out
    }

    /// Route one `/v1/*` request.
    pub fn handle(&self, req: &Request) -> Response {
        self.evict_idle();
        if let Some(clock) = &self.chaos {
            match clock.decide() {
                WorkerFault::None => {}
                WorkerFault::Stall(wait) => {
                    // Slow is not wrong: serve normally after the nap.
                    self.metrics.chaos_stalls.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(wait);
                }
                WorkerFault::Error => {
                    self.metrics.chaos_errors.fetch_add(1, Ordering::Relaxed);
                    return Response::error(500, "chaos: injected worker error");
                }
                WorkerFault::Kill => {
                    self.metrics.chaos_kills.fetch_add(1, Ordering::Relaxed);
                    return Response::hangup();
                }
                WorkerFault::Shed => {
                    // Deterministic overload: refuse exactly like a real
                    // quota denial so client backpressure handling is
                    // exercised on a replayable schedule.
                    self.metrics.chaos_sheds.fetch_add(1, Ordering::Relaxed);
                    self.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                    return Response::shed(429, "chaos: injected shed", Duration::from_secs(1));
                }
            }
        }
        // Per-tenant admission: every POST costs one token from the
        // session's bucket (session creation draws from a shared "open"
        // bucket). GETs are diagnostics and stay free.
        if req.method == "POST" && req.path.starts_with("/v1/") {
            let tenant = req.query_param("session").unwrap_or("open");
            if let Err(retry_after) = self.admit(tenant) {
                self.metrics.count_shed(&self.metrics.quota_denials);
                return Response::shed(
                    429,
                    &format!("quota exceeded for tenant '{tenant}'"),
                    retry_after,
                );
            }
        }
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/experiments") => self.create(req),
            ("POST", "/v1/batch") => self.batch(req),
            ("POST", "/v1/close") => self.close(req),
            ("GET", "/v1/sessions") => self.list(),
            ("GET" | "HEAD", _) => Response::error(405, "batch-execution routes want POST")
                .with_header("Allow", "POST"),
            _ => Response::error(404, "unknown /v1 route"),
        }
    }

    fn create(&self, req: &Request) -> Response {
        if self.is_draining() {
            self.metrics.count_shed(&self.metrics.drain_denials);
            return Response::shed(503, "draining: not accepting new sessions", Duration::from_secs(2));
        }
        let doc = match from_json(&req.body_text()) {
            Ok(doc) => doc,
            Err(e) => return Response::error(400, &format!("bad config JSON: {e}")),
        };
        let config = match AppConfig::from_value(&doc) {
            Ok(config) => config,
            Err(e) => return Response::error(400, &format!("bad config: {e}")),
        };
        let mut backend = match SimBackend::new(&config) {
            Ok(backend) => backend,
            Err(e) => return Response::error(400, &format!("cannot build lab: {e}")),
        };
        // An out-of-plates failure at open is a *termination criterion*,
        // not a setup error: register the session anyway (so the client
        // can `/v1/close` it for telemetry, mirroring the in-process flow)
        // and tunnel the structured error alongside the capabilities.
        let (caps, open_error) = match backend.open() {
            Ok(caps) => (caps, None),
            Err(e) if is_out_of_plates(&e) => {
                let caps = backend.capabilities().expect("sim capabilities are static");
                (caps, Some(e))
            }
            Err(e) => return lab_error(e),
        };
        let id = format!("lab-{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let session = LabSession { backend, last_batch: None, last_used: Instant::now() };
        self.sessions.lock().insert(id.clone(), Arc::new(Mutex::new(session)));
        self.metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
        let mut v = wire::caps_to_value(&caps);
        v.set("session", id.as_str());
        if let Some(e) = open_error {
            v.set("error_kind", "out_of_plates");
            v.set("error", e.to_string().as_str());
        }
        Response::json(to_json(&v))
    }

    /// Drop sessions idle past [`SESSION_TTL`] (a busy session — one whose
    /// lock is held by an in-flight request — is by definition not idle).
    fn evict_idle(&self) {
        let mut evicted = 0u64;
        self.sessions.lock().retain(|_, s| match s.try_lock() {
            Some(state) => {
                let keep = state.last_used.elapsed() < SESSION_TTL;
                if !keep {
                    evicted += 1;
                }
                keep
            }
            None => true,
        });
        if evicted > 0 {
            self.metrics.sessions_evicted.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    fn session(&self, req: &Request) -> Result<Arc<Mutex<LabSession>>, Response> {
        let Some(id) = req.query_param("session") else {
            return Err(Response::error(400, "missing ?session=ID"));
        };
        self.sessions
            .lock()
            .get(id)
            .cloned()
            .ok_or_else(|| Response::error(404, &format!("no lab session '{id}'")))
    }

    fn batch(&self, req: &Request) -> Response {
        let session = match self.session(req) {
            Ok(session) => session,
            Err(resp) => return resp,
        };
        let batch = match from_json(&req.body_text())
            .map_err(|e| e.to_string())
            .and_then(|doc| wire::batch_from_value(&doc).map_err(|e| e.to_string()))
        {
            Ok(batch) => batch,
            Err(e) => return Response::error(400, &format!("bad batch: {e}")),
        };
        // Bounded in-flight work: past the cap, shed instead of queuing
        // more lab execution behind the session locks.
        if self.max_inflight > 0
            && self.metrics.batches_inflight.load(Ordering::Relaxed) >= self.max_inflight
        {
            self.metrics.count_shed(&self.metrics.capacity_denials);
            return Response::shed(503, "batch capacity reached", Duration::from_secs(1));
        }
        // Sessions are driven by one client at a time; the per-session lock
        // serializes stray concurrent submissions without blocking other
        // sessions.
        let _inflight = InflightGuard::enter(&self.metrics.batches_inflight);
        let mut state = session.lock();
        state.last_used = Instant::now();
        // Idempotent resend: a client that lost the response re-posts the
        // same run; replay the cached response instead of mixing the batch
        // a second time.
        if let Some((run, cached)) = &state.last_batch {
            if *run == batch.run {
                self.metrics.batch_replays.fetch_add(1, Ordering::Relaxed);
                return Response::json(to_json(cached));
            }
        }
        let result = state.backend.submit_batch(&batch);
        match result {
            Ok(result) => {
                self.metrics.batches_executed.fetch_add(1, Ordering::Relaxed);
                let v = wire::result_to_value(&result);
                let body = to_json(&v);
                state.last_batch = Some((batch.run, v));
                Response::json(body)
            }
            Err(e) => lab_error(e),
        }
    }

    fn close(&self, req: &Request) -> Response {
        let Some(id) = req.query_param("session").map(str::to_string) else {
            return Response::error(400, "missing ?session=ID");
        };
        let Some(session) = self.sessions.lock().remove(&id) else {
            // Lost-response replay: the session may already be closed —
            // resending `/v1/close` must return the telemetry, not a 404.
            let closed = self.closed.lock();
            return match closed.iter().find(|(cid, _)| *cid == id) {
                Some((_, cached)) => Response::json(to_json(cached)),
                None => Response::error(404, &format!("no lab session '{id}'")),
            };
        };
        let samples = from_json(&req.body_text())
            .ok()
            .and_then(|doc| doc.opt_i64("samples"))
            .unwrap_or(0)
            .max(0) as u32;
        let result = session.lock().backend.close(samples);
        match result {
            Ok(close) => {
                self.metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
                let v = wire::close_to_value(&close);
                let body = to_json(&v);
                let mut closed = self.closed.lock();
                if closed.len() >= CLOSED_CACHE {
                    closed.remove(0);
                }
                closed.push((id, v));
                Response::json(body)
            }
            Err(e) => lab_error(e),
        }
    }

    fn list(&self) -> Response {
        let mut ids = Value::seq();
        for id in self.sessions.lock().keys() {
            ids.push(id.as_str());
        }
        let mut v = Value::map();
        v.set("sessions", ids);
        Response::json(to_json(&v))
    }
}

/// Is this the sciclops running dry — a termination criterion rather than
/// a failure?
fn is_out_of_plates(e: &AppError) -> bool {
    matches!(
        e,
        AppError::Wei(sdl_wei::WeiError::CommandAborted {
            cause: sdl_instruments::InstrumentError::OutOfPlates,
            ..
        })
    )
}

/// Encode a lab-side failure. Out-of-plates is a *structured* error (a
/// termination criterion client-side), everything else a plain 500.
fn lab_error(e: AppError) -> Response {
    if is_out_of_plates(&e) {
        let mut v = Value::map();
        v.set("error_kind", "out_of_plates");
        v.set("error", e.to_string().as_str());
        return Response::json(to_json(&v));
    }
    Response::error(500, &format!("lab error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_request;
    use std::io::BufReader;

    fn post(host: &LabHost, target: &str, body: &str) -> Response {
        let raw = format!("POST {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
        let req = read_request(&mut BufReader::new(raw.as_bytes())).unwrap().unwrap();
        host.handle(&req)
    }

    fn json(resp: &Response) -> Value {
        from_json(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    #[test]
    fn full_session_lifecycle() {
        let host = LabHost::new();
        let created = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        assert_eq!(created.status, 200, "{}", String::from_utf8_lossy(&created.body));
        let v = json(&created);
        let session = v.opt_str("session").unwrap().to_string();
        assert_eq!(v.opt_i64("plate_capacity"), Some(96));
        assert_eq!(host.len(), 1);

        let batch = post(
            &host,
            &format!("/v1/batch?session={session}"),
            r#"{"run": 1, "ratios": [[0.5, 0.25, 0.0, 0.1], [0.0, 0.0, 0.0, 1.0]]}"#,
        );
        assert_eq!(batch.status, 200, "{}", String::from_utf8_lossy(&batch.body));
        let result = json(&batch);
        assert_eq!(result.get("measurements").unwrap().as_seq().unwrap().len(), 2);
        assert!(result.opt_i64("elapsed_us").unwrap() > 0);

        let closed = post(&host, &format!("/v1/close?session={session}"), r#"{"samples": 2}"#);
        assert_eq!(closed.status, 200);
        let telemetry = json(&closed);
        assert!(telemetry.opt_i64("duration_us").unwrap() > 0);
        assert_eq!(telemetry.opt_i64("plates_used"), Some(1));
        assert!(host.is_empty(), "close deletes the session");
    }

    #[test]
    fn duplicate_run_replays_cached_response_without_reexecuting() {
        let host = LabHost::new();
        let created = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        let session = json(&created).opt_str("session").unwrap().to_string();
        let body = r#"{"run": 1, "ratios": [[0.5, 0.25, 0.0, 0.1], [0.0, 0.0, 0.0, 1.0]]}"#;
        let first = post(&host, &format!("/v1/batch?session={session}"), body);
        assert_eq!(first.status, 200);
        // A resend of the same run (lost-response recovery) must not mix a
        // second batch: identical response, identical lab clock.
        let second = post(&host, &format!("/v1/batch?session={session}"), body);
        assert_eq!(second.status, 200);
        assert_eq!(first.body, second.body, "duplicate run must replay, not re-execute");
        let e1 = json(&first).opt_i64("elapsed_us").unwrap();
        let e2 = json(&second).opt_i64("elapsed_us").unwrap();
        assert_eq!(e1, e2);
        // The next run executes normally and advances the clock.
        let third = post(
            &host,
            &format!("/v1/batch?session={session}"),
            r#"{"run": 2, "ratios": [[0.1, 0.2, 0.3, 0.4], [0.2, 0.2, 0.2, 0.2]]}"#,
        );
        assert_eq!(third.status, 200);
        assert!(json(&third).opt_i64("elapsed_us").unwrap() > e1);
    }

    #[test]
    fn dispatch_metrics_count_sessions_batches_and_replays() {
        let host = LabHost::new();
        let created = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        let session = json(&created).opt_str("session").unwrap().to_string();
        let body = r#"{"run": 1, "ratios": [[0.5, 0.25, 0.0, 0.1], [0.0, 0.0, 0.0, 1.0]]}"#;
        post(&host, &format!("/v1/batch?session={session}"), body);
        post(&host, &format!("/v1/batch?session={session}"), body); // idempotent replay
        post(&host, &format!("/v1/close?session={session}"), r#"{"samples": 2}"#);
        assert_eq!(host.metrics().executed(), 1, "replay must not count as execution");
        assert_eq!(host.metrics().replays(), 1);
        assert_eq!(host.metrics().inflight(), 0, "gauge returns to zero");
        assert_eq!(host.metrics().evicted(), 0);
        let text = host.render_prometheus();
        assert!(text.contains("sdl_lab_sessions_open 0"));
        assert!(text.contains("sdl_lab_sessions_opened_total 1"));
        assert!(text.contains("sdl_lab_sessions_closed_total 1"));
        assert!(text.contains("sdl_lab_batches_executed_total 1"));
        assert!(text.contains("sdl_lab_batch_replays_total 1"));
        assert!(text.contains("sdl_lab_batches_inflight 0"));
    }

    #[test]
    fn worker_chaos_faults_fire_on_schedule() {
        // kill=1: every /v1 request is a hangup, and /metrics says so.
        let host = LabHost::new().with_chaos(ChaosPolicy::parse("seed=1,kill=1").unwrap());
        let resp = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        assert!(resp.hangup);
        assert_eq!(host.metrics().chaos_injected(), 1);
        assert!(host.render_prometheus().contains("sdl_lab_chaos_kills_total 1"));

        // error=1: every request answers a real 500.
        let host = LabHost::new().with_chaos(ChaosPolicy::parse("seed=1,error=1").unwrap());
        let resp = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        assert_eq!(resp.status, 500);
        assert!(!resp.hangup);
        assert!(host.render_prometheus().contains("sdl_lab_chaos_errors_total 1"));

        // stall=1 with a tiny nap: the request still succeeds.
        let host =
            LabHost::new().with_chaos(ChaosPolicy::parse("seed=1,stall=1,stall_ms=1").unwrap());
        let resp = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        assert_eq!(resp.status, 200);
        assert!(host.render_prometheus().contains("sdl_lab_chaos_stalls_total 1"));

        // A no-op policy attaches no clock at all.
        let host = LabHost::new().with_chaos(ChaosPolicy::default());
        let resp = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        assert_eq!(resp.status, 200);
        assert_eq!(host.metrics().chaos_injected(), 0);
    }

    #[test]
    fn errors_are_4xx() {
        let host = LabHost::new();
        assert_eq!(post(&host, "/v1/experiments", "not json").status, 400);
        assert_eq!(post(&host, "/v1/experiments", r#"{"samples": -3}"#).status, 400);
        assert_eq!(post(&host, "/v1/batch", "{}").status, 400);
        assert_eq!(post(&host, "/v1/batch?session=nope", r#"{"run":1,"ratios":[]}"#).status, 404);
        assert_eq!(post(&host, "/v1/close?session=nope", "{}").status, 404);
        assert_eq!(post(&host, "/v1/nothing", "{}").status, 404);
    }

    fn retry_after(resp: &Response) -> Option<u64> {
        resp.headers
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case("retry-after"))
            .and_then(|(_, value)| value.parse().ok())
    }

    #[test]
    fn quota_sheds_over_budget_with_retry_after() {
        // burst 1 at a slow refill: the first session creation drains the
        // shared "open" bucket, the second is shed with a back-off hint.
        let host = LabHost::new().with_quota(QuotaPolicy { rate: 0.5, burst: 1.0 });
        let first = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        assert_eq!(first.status, 200, "{}", String::from_utf8_lossy(&first.body));
        let session = json(&first).opt_str("session").unwrap().to_string();

        let second = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        assert_eq!(second.status, 429, "{}", String::from_utf8_lossy(&second.body));
        assert!(retry_after(&second).unwrap() >= 1, "shed must carry a Retry-After hint");
        assert_eq!(host.metrics().quota_denials(), 1);
        assert_eq!(host.metrics().shed(), 1);

        // The open session is a *different tenant*: its own bucket still
        // holds a token, so its batch is admitted.
        let batch = post(
            &host,
            &format!("/v1/batch?session={session}"),
            r#"{"run": 1, "ratios": [[0.5, 0.25, 0.0, 0.1], [0.0, 0.0, 0.0, 1.0]]}"#,
        );
        assert_eq!(batch.status, 200, "{}", String::from_utf8_lossy(&batch.body));
        assert!(host.quota_tenants() >= 2, "per-tenant buckets, not one global");

        let text = host.render_prometheus();
        assert!(text.contains("sdl_lab_shed_total 1"), "{text}");
        assert!(text.contains("sdl_lab_quota_denials_total 1"), "{text}");
    }

    #[test]
    fn inflight_cap_sheds_batches_as_503() {
        let host = LabHost::new().with_max_inflight(1);
        let created = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        let session = json(&created).opt_str("session").unwrap().to_string();
        // Simulate a batch already executing on another connection.
        host.metrics.batches_inflight.fetch_add(1, Ordering::Relaxed);
        let shed = post(
            &host,
            &format!("/v1/batch?session={session}"),
            r#"{"run": 1, "ratios": [[0.5, 0.25, 0.0, 0.1], [0.0, 0.0, 0.0, 1.0]]}"#,
        );
        assert_eq!(shed.status, 503, "{}", String::from_utf8_lossy(&shed.body));
        assert!(retry_after(&shed).is_some());
        assert_eq!(host.metrics().capacity_denials(), 1);
        // Capacity frees up: the same batch is admitted and executes.
        host.metrics.batches_inflight.fetch_sub(1, Ordering::Relaxed);
        let ok = post(
            &host,
            &format!("/v1/batch?session={session}"),
            r#"{"run": 1, "ratios": [[0.5, 0.25, 0.0, 0.1], [0.0, 0.0, 0.0, 1.0]]}"#,
        );
        assert_eq!(ok.status, 200, "{}", String::from_utf8_lossy(&ok.body));
    }

    #[test]
    fn drain_refuses_new_sessions_but_finishes_in_flight_work() {
        let host = LabHost::new();
        let created = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        let session = json(&created).opt_str("session").unwrap().to_string();

        host.begin_drain();
        assert!(host.is_draining());
        let refused = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        assert_eq!(refused.status, 503, "{}", String::from_utf8_lossy(&refused.body));
        assert!(retry_after(&refused).is_some());
        assert_eq!(host.metrics().drain_denials(), 1);

        // Sessions accepted before the drain run to completion.
        let batch = post(
            &host,
            &format!("/v1/batch?session={session}"),
            r#"{"run": 1, "ratios": [[0.5, 0.25, 0.0, 0.1], [0.0, 0.0, 0.0, 1.0]]}"#,
        );
        assert_eq!(batch.status, 200, "{}", String::from_utf8_lossy(&batch.body));
        let closed = post(&host, &format!("/v1/close?session={session}"), r#"{"samples": 2}"#);
        assert_eq!(closed.status, 200);
        assert!(host.render_prometheus().contains("sdl_lab_draining 1"));
    }

    #[test]
    fn shed_chaos_is_a_retryable_429() {
        let host = LabHost::new().with_chaos(ChaosPolicy::parse("seed=1,shed=1").unwrap());
        let resp = post(&host, "/v1/experiments", r#"{"samples": 4, "batch": 2}"#);
        assert_eq!(resp.status, 429);
        assert!(retry_after(&resp).is_some());
        assert!(host.render_prometheus().contains("sdl_lab_chaos_sheds_total 1"));
    }

    #[test]
    fn quota_policy_parses_rate_and_burst() {
        assert_eq!(QuotaPolicy::parse("5").unwrap(), QuotaPolicy { rate: 5.0, burst: 5.0 });
        assert_eq!(
            QuotaPolicy::parse("2.5:20").unwrap(),
            QuotaPolicy { rate: 2.5, burst: 20.0 }
        );
        assert_eq!(QuotaPolicy::parse("0.5").unwrap().burst, 1.0, "burst floor of one token");
        assert!(QuotaPolicy::parse("0").is_err());
        assert!(QuotaPolicy::parse("-1").is_err());
        assert!(QuotaPolicy::parse("5:0.2").is_err());
        assert!(QuotaPolicy::parse("nope").is_err());
    }
}
