//! `sdl-portal-server` — the HTTP serving layer for the ACDC portal.
//!
//! The paper publishes every run to the ACDC data portal so people and
//! tools outside the lab process can watch campaigns as they execute
//! (§2.3, Figure 3). This crate is that front door: a thread-pooled
//! HTTP/1.1 server over [`std::net::TcpListener`] exposing a live
//! [`AcdcPortal`](sdl_datapub::AcdcPortal) and
//! [`BlobStore`](sdl_datapub::BlobStore):
//!
//! | endpoint | serves |
//! |---|---|
//! | `GET /records` | JSON-lines stream; dotted-path query filters, `limit`/`offset` paging |
//! | `GET /events` | campaign event log as JSON lines; `from`/`limit` paging, `timeout_ms` long-poll |
//! | `GET /events/stream` | the same log as a server-sent-events stream |
//! | `GET /summary` | the Figure-3 experiment summary (HTML) |
//! | `GET /runs/<run>` | the Figure-3 run detail table (HTML) |
//! | `GET /blobs/<ref>` | raw plate images from the blob store |
//! | `GET /healthz` | liveness + portal size (JSON) |
//! | `GET /metrics` | Prometheus text: request counts, latency histogram, portal gauges |
//! | `POST /v1/experiments` · `/v1/batch` · `/v1/close` | the batch-execution API: remote experiment sessions drive hosted simulated labs (see [`LabHost`]) |
//!
//! Built only on `std` — no external HTTP dependency — so the offline
//! build stays self-contained. The portal and store are shared `Arc`s:
//! a campaign runner can keep publishing records while the server is
//! answering requests, which is what `sdl-lab serve --campaign` does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod http;
mod lab;
mod metrics;
mod pool;
mod server;

pub use http::{percent_decode, Request, Response};
pub use lab::{LabHost, LabMetrics, QuotaPolicy, SESSION_TTL};
pub use metrics::{route_label, ServerMetrics};
pub use pool::ThreadPool;
pub use server::{spawn, PortalServer, ServerConfig, ServerHandle};
