//! End-to-end tests against a live in-process server: real sockets, the
//! full request path, concurrent clients.

use bytes::Bytes;
use sdl_conf::{from_json, ValueExt};
use sdl_datapub::{AcdcPortal, BlobStore, ExperimentRecord, SampleRecord};
use sdl_portal_server::client::{self, HttpClient};
use sdl_portal_server::{spawn, PortalServer, ServerConfig};
use std::sync::Arc;

const PLATE_IMAGE: &[u8] = b"BMplate-image-bytes-for-testing";

fn seeded() -> (Arc<AcdcPortal>, Arc<BlobStore>, String) {
    let portal = Arc::new(AcdcPortal::new());
    let store = Arc::new(BlobStore::in_memory());
    let blob = store.put(Bytes::from_static(PLATE_IMAGE));
    portal.ingest(
        ExperimentRecord {
            experiment_id: "exp-live".into(),
            name: "ColorPickerRPL".into(),
            date: "2023-08-16".into(),
            target: [120, 120, 120],
            solver: "genetic".into(),
            batch: 15,
            sample_budget: 180,
        }
        .to_value(),
    );
    for run in 1..=12u32 {
        for i in 1..=15u32 {
            let sample = (run - 1) * 15 + i;
            portal.ingest(
                SampleRecord {
                    experiment_id: "exp-live".into(),
                    run,
                    sample,
                    well: format!("A{}", (i % 12) + 1),
                    ratios: vec![0.25; 4],
                    volumes_ul: vec![8.0; 4],
                    measured: [120, 119, 122],
                    target: [120, 120, 120],
                    score: 30.0 - sample as f64 / 10.0,
                    best_so_far: 30.0 - sample as f64 / 10.0,
                    elapsed_s: sample as f64 * 228.0,
                    batch_wall_s: None,
                    image_ref: Some(blob.0.clone()),
                }
                .to_value(),
            );
        }
    }
    (portal, store, blob.0)
}

fn live_server() -> (sdl_portal_server::ServerHandle, String) {
    let (portal, store, blob) = seeded();
    let server = PortalServer::new(portal, store);
    let handle = spawn(server, &ServerConfig { addr: "127.0.0.1:0".into(), threads: 8, ..ServerConfig::default() }).unwrap();
    (handle, blob)
}

#[test]
fn batch_execution_api_over_real_sockets() {
    // A worker-mode server: the lab host behind POST /v1/*, driven with
    // the crate's own keep-alive client (request bodies over the wire).
    let server = PortalServer::new(Arc::new(AcdcPortal::new()), Arc::new(BlobStore::in_memory()))
        .with_lab(Arc::new(sdl_portal_server::LabHost::new()));
    let handle = spawn(server, &ServerConfig { addr: "127.0.0.1:0".into(), threads: 4, ..ServerConfig::default() }).unwrap();
    let addr = handle.addr();

    let mut c = HttpClient::connect(addr).unwrap();
    let created = c
        .post("/v1/experiments", r#"{"samples": 4, "batch": 2, "publish_images": false}"#)
        .unwrap();
    assert_eq!(created.status, 200, "{}", created.text());
    let v = from_json(&created.text()).unwrap();
    let session = v.opt_str("session").unwrap().to_string();
    assert_eq!(v.opt_i64("plate_capacity"), Some(96));

    let batch = c
        .post(
            &format!("/v1/batch?session={session}"),
            r#"{"run": 1, "ratios": [[0.5, 0.25, 0.0, 0.1], [0.0, 0.0, 0.0, 1.0]]}"#,
        )
        .unwrap();
    assert_eq!(batch.status, 200, "{}", batch.text());
    let result = from_json(&batch.text()).unwrap();
    assert_eq!(result.get("measurements").and_then(|m| m.as_seq()).map(<[_]>::len), Some(2));

    // One-shot POST helper over a fresh connection.
    let closed =
        client::post(addr, &format!("/v1/close?session={session}"), r#"{"samples": 2}"#).unwrap();
    assert_eq!(closed.status, 200, "{}", closed.text());
    assert!(from_json(&closed.text()).unwrap().opt_i64("duration_us").unwrap() > 0);

    // Sessions list is empty again; GET on a POST-only route is a 405.
    let sessions = c.get("/v1/sessions").unwrap();
    assert!(sessions.text().contains("[]"), "{}", sessions.text());
    assert_eq!(c.get("/v1/batch").unwrap().status, 405);
    handle.shutdown();
}

#[test]
fn all_endpoints_answer_over_real_sockets() {
    let (handle, blob) = live_server();
    let addr = handle.addr();

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let v = from_json(&health.text()).unwrap();
    assert_eq!(v.opt_str("status"), Some("ok"));
    assert_eq!(v.opt_i64("records"), Some(181));

    let records = client::get(addr, "/records?kind=sample&run=12&limit=100").unwrap();
    assert_eq!(records.status, 200);
    assert_eq!(records.header("content-type"), Some("application/x-ndjson"));
    assert_eq!(records.header("x-total-count"), Some("15"));
    let lines: Vec<_> = records.text().lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 15);
    for line in &lines {
        let v = from_json(line).unwrap();
        assert_eq!(v.opt_i64("run"), Some(12));
        assert_eq!(v.opt_str("kind"), Some("sample"));
    }

    // Typed float filter through the query string.
    let scored = client::get(addr, "/records?score=29.9").unwrap();
    assert_eq!(scored.text().lines().count(), 1);

    let summary = client::get(addr, "/summary").unwrap();
    assert_eq!(summary.status, 200);
    let body = summary.text();
    assert!(body.contains("exp-live"));
    assert!(body.contains("12 runs"));
    assert!(body.contains("/runs/12?experiment=exp-live"));

    let run = client::get(addr, "/runs/12?experiment=exp-live").unwrap();
    assert_eq!(run.status, 200);
    assert!(run.text().contains("run #12"));
    assert!(run.text().contains("/blobs/"));

    let img = client::get(addr, &format!("/blobs/{blob}")).unwrap();
    assert_eq!(img.status, 200);
    assert_eq!(img.header("content-type"), Some("image/bmp"));
    assert_eq!(img.body, PLATE_IMAGE);

    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("sdl_portal_requests_total{route=\"/records\"} 2"), "{text}");
    assert!(text.contains("sdl_portal_request_seconds_bucket{le=\"+Inf\"}"));
    assert!(text.contains("sdl_portal_records 181"));
    assert!(text.contains("sdl_portal_blobs 1"));

    handle.shutdown();
}

#[test]
fn eight_concurrent_clients_get_correct_bodies() {
    let (handle, blob) = live_server();
    let addr = handle.addr();

    let threads: Vec<_> = (0..8)
        .map(|worker| {
            let blob = blob.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for round in 0..25 {
                    // Every client walks all endpoints on one keep-alive
                    // connection, offset so requests interleave.
                    let run = 1 + (worker + round) % 12;
                    let page =
                        client.get(&format!("/records?kind=sample&run={run}&limit=100")).unwrap();
                    assert_eq!(page.status, 200);
                    assert_eq!(page.text().lines().count(), 15);

                    let summary = client.get("/summary?experiment=exp-live").unwrap();
                    assert!(summary.text().contains("12 runs"));

                    let detail = client.get(&format!("/runs/{run}")).unwrap();
                    assert!(detail.text().contains(&format!("run #{run}")));

                    let img = client.get(&format!("/blobs/{blob}")).unwrap();
                    assert_eq!(img.body, PLATE_IMAGE);

                    let health = client.get("/healthz").unwrap();
                    assert_eq!(health.status, 200);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }

    // 8 clients * 25 rounds * 5 requests each, all counted (the /metrics
    // scrape renders before its own request is recorded).
    let metrics = client::get(addr, "/metrics").unwrap().text();
    assert!(metrics.contains("sdl_portal_request_seconds_count 1000"), "{metrics}");
    handle.shutdown();
}

#[test]
fn records_stream_live_while_server_runs() {
    let portal = Arc::new(AcdcPortal::new());
    let store = Arc::new(BlobStore::in_memory());
    let handle = spawn(
        PortalServer::new(Arc::clone(&portal), store),
        &ServerConfig { addr: "127.0.0.1:0".into(), threads: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = handle.addr();

    assert_eq!(client::get(addr, "/records").unwrap().header("x-total-count"), Some("0"));
    // A producer publishes while the server is up — the next scrape sees it.
    let mut v = sdl_conf::Value::map();
    v.set("kind", "campaign_scenario");
    v.set("label", "late-arrival");
    portal.ingest(v);
    let resp = client::get(addr, "/records?kind=campaign_scenario").unwrap();
    assert_eq!(resp.header("x-total-count"), Some("1"));
    assert!(resp.text().contains("late-arrival"));
    handle.shutdown();
}

#[test]
fn protocol_errors_are_4xx() {
    let (handle, _) = live_server();
    let addr = handle.addr();

    // Unknown path.
    assert_eq!(client::get(addr, "/definitely-not-a-route").unwrap().status, 404);
    // Unsupported method, with a body and a pipelined follow-up. The body
    // is fully consumed (request bodies are first-class since the batch
    // API), so the 405 must NOT desync the keep-alive stream: the
    // pipelined GET is parsed cleanly and answered next.
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(
            b"DELETE /records HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello\
              GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap(); // close on the 2nd request → EOF
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 405"), "{text}");
        assert_eq!(text.matches("HTTP/1.1").count(), 2, "pipelined GET must be answered");
        assert!(text.contains("HTTP/1.1 200"), "{text}");
    }
    // Garbage on the wire.
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = [0u8; 64];
        let n = s.read(&mut buf).unwrap();
        assert!(std::str::from_utf8(&buf[..n]).unwrap().starts_with("HTTP/1.1 400"));
    }
    handle.shutdown();
}

#[test]
fn shutdown_is_clean_and_idempotent_under_drop() {
    let (handle, _) = live_server();
    let addr = handle.addr();
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    drop(handle); // Drop path must also join cleanly.
    assert!(client::get(addr, "/healthz").is_err(), "server still answering after drop");
}
