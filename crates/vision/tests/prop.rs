//! Property tests for the imaging substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdl_color::{LinRgb, Rgb8};
use sdl_vision::{
    fit_grid, render, render_tiled, Detector, GridModel, ImageRgb8, PlateScene, Pose,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The counter-based render is a pure function of (scene, frame seed):
    /// bit-identical at every tile size and thread count, for arbitrary
    /// scenes, poses and odd/even frame widths.
    #[test]
    fn counter_render_is_tile_and_thread_independent(
        frame_seed in any::<u64>(),
        width in 37usize..96,
        height in 23usize..64,
        dx in -4.0..4.0f64,
        dy in -4.0..4.0f64,
        rot in -1.2..1.2f64,
        fills in proptest::collection::vec((0usize..96, 0.0..0.6f64), 0..6),
    ) {
        let mut scene = PlateScene::empty_plate();
        scene.camera.width_px = width;
        scene.camera.height_px = height;
        scene.pose = Pose { dx_px: dx, dy_px: dy, rot_deg: rot };
        for (idx, shade) in fills {
            scene.set_well(idx / 12, idx % 12, LinRgb::new(shade, 0.1, 0.4 - shade / 2.0));
        }
        let mut baseline = ImageRgb8::new(1, 1, Rgb8::default());
        render_tiled(&scene, frame_seed, &mut baseline, 1, 1);
        for tile_rows in [7usize, 64] {
            for threads in [1usize, 2, 8] {
                let mut img = ImageRgb8::new(3, 5, Rgb8::new(9, 9, 9));
                render_tiled(&scene, frame_seed, &mut img, tile_rows, threads);
                prop_assert_eq!(
                    &img, &baseline,
                    "tile_rows={} threads={} diverged", tile_rows, threads
                );
            }
        }
    }

    /// PPM round-trips any image contents.
    #[test]
    fn ppm_roundtrip(
        w in 1usize..24,
        h in 1usize..24,
        bytes in proptest::collection::vec(any::<u8>(), 3),
    ) {
        let mut img = ImageRgb8::new(w, h, Rgb8::new(bytes[0], bytes[1], bytes[2]));
        img.put(0, 0, Rgb8::new(bytes[2], bytes[0], bytes[1]));
        let back = ImageRgb8::from_ppm(&img.to_ppm()).unwrap();
        prop_assert_eq!(back, img);
    }

    /// BMP output always has the declared file size and magic.
    #[test]
    fn bmp_size_is_consistent(w in 1usize..24, h in 1usize..24) {
        let img = ImageRgb8::new(w, h, Rgb8::new(1, 2, 3));
        let bmp = img.to_bmp();
        prop_assert_eq!(&bmp[0..2], b"BM");
        let declared = u32::from_le_bytes([bmp[2], bmp[3], bmp[4], bmp[5]]) as usize;
        prop_assert_eq!(declared, bmp.len());
    }

    /// Grid fit recovers a known affine grid from noiseless full detections,
    /// for any modest rotation/pitch/origin.
    #[test]
    fn grid_fit_recovers_exactly(
        ox in 80.0..160.0f64,
        oy in 60.0..120.0f64,
        pitch in 25.0..35.0f64,
        rot_deg in -1.5..1.5f64,
    ) {
        let th = rot_deg.to_radians();
        let truth = GridModel {
            origin: (ox, oy),
            u: (pitch * th.cos(), pitch * th.sin()),
            v: (-pitch * th.sin(), pitch * th.cos()),
        };
        let pts: Vec<(f64, f64)> = (0..8)
            .flat_map(|r| (0..12).map(move |c| (r, c)))
            .map(|(r, c)| truth.predict(r, c))
            .collect();
        let approx = GridModel { origin: (ox - 4.0, oy + 4.0), u: (pitch, 0.0), v: (0.0, pitch) };
        let fit = fit_grid(&pts, 8, 12, &approx, 3).unwrap();
        prop_assert!(fit.rms_px < 1e-6, "rms {}", fit.rms_px);
        let (px, py) = fit.model.predict(7, 11);
        let (tx, ty) = truth.predict(7, 11);
        prop_assert!((px - tx).abs() < 1e-6 && (py - ty).abs() < 1e-6);
    }

    /// The full pipeline reads back what the renderer drew: for arbitrary
    /// liquid colors and small poses, every filled well's reading stays
    /// within sensor-noise distance of the truth.
    #[test]
    fn render_detect_roundtrip(
        seed in 0u64..500,
        dx in -4.0..4.0f64,
        dy in -4.0..4.0f64,
        rot in -0.8..0.8f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut scene = PlateScene::empty_plate();
        let mut truth = Vec::new();
        for i in 0..24 {
            let c = LinRgb::new(
                rng.gen_range(0.03..0.5),
                rng.gen_range(0.03..0.5),
                rng.gen_range(0.03..0.5),
            );
            scene.set_well(i / 12, i % 12, c);
            truth.push(c);
        }
        scene.pose = Pose { dx_px: dx, dy_px: dy, rot_deg: rot };
        let img = render(&scene, &mut rng);
        let reading = Detector::default().detect(&img).unwrap();
        for (i, t) in truth.iter().enumerate() {
            let w = reading.well(i / 12, i % 12).unwrap();
            let err = w.color.distance(t.to_srgb());
            prop_assert!(err < 25.0, "well {} read {} vs truth {} (err {err:.1})",
                w.label(), w.color, t.to_srgb());
        }
    }
}
