//! The full image-processing pipeline of paper §2.4:
//! ArUco marker → approximate plate bounds → HoughCircles → grid alignment
//! → per-well color extraction.

use crate::aruco::{detect_markers_with, ArucoParams, ArucoScratch, MarkerDetection};
use crate::grid::{fit_grid, GridModel};
use crate::hough::{hough_circles_with, Circle, HoughParams, HoughScratch};
use crate::image::ImageRgb8;
use crate::layout::{MarkerLayout, PlateLayout};
use sdl_color::Rgb8;
use std::fmt;

/// One well's extracted reading.
#[derive(Debug, Clone, PartialEq)]
pub struct WellReading {
    /// Row index (0 = A).
    pub row: usize,
    /// Column index (0 = 1).
    pub col: usize,
    /// Mean color sampled at the predicted center.
    pub color: Rgb8,
    /// Predicted center, px.
    pub center_px: (f64, f64),
    /// Whether HoughCircles found this well directly (false = recovered by
    /// the grid).
    pub found_by_hough: bool,
}

impl WellReading {
    /// "A1"-style label.
    pub fn label(&self) -> String {
        format!("{}{}", (b'A' + self.row as u8) as char, self.col + 1)
    }
}

/// Result of processing one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct PlateReading {
    /// The fiducial detection that anchored the plate.
    pub marker: MarkerDetection,
    /// All wells, row-major.
    pub wells: Vec<WellReading>,
    /// Circles HoughCircles reported inside the plate region.
    pub hough_hits: usize,
    /// Wells whose centers came from grid prediction only.
    pub grid_recovered: usize,
    /// RMS residual of the grid fit, px (NaN when the fallback model was
    /// used).
    pub grid_rms_px: f64,
}

impl PlateReading {
    /// Reading for a given (row, col).
    pub fn well(&self, row: usize, col: usize) -> Option<&WellReading> {
        self.wells.iter().find(|w| w.row == row && w.col == col)
    }
}

/// Pipeline failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VisionError {
    /// No fiducial marker could be decoded in the frame.
    MarkerNotFound,
    /// The fitted grid disagreed wildly with the rig geometry.
    ImplausibleGrid,
}

impl fmt::Display for VisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisionError::MarkerNotFound => write!(f, "no ArUco marker detected in frame"),
            VisionError::ImplausibleGrid => write!(f, "grid fit inconsistent with rig geometry"),
        }
    }
}

impl std::error::Error for VisionError {}

/// Detector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorParams {
    /// Plate geometry (shared rig knowledge).
    pub plate: PlateLayout,
    /// Marker geometry and placement.
    pub marker: MarkerLayout,
    /// ArUco detector tuning.
    pub aruco: ArucoParams,
    /// Hough tuning; radius bounds are rescaled from the marker size at run
    /// time, so the defaults here only matter as ratios.
    pub hough: HoughParams,
    /// Fraction of the well radius sampled for the color mean.
    pub sample_fraction: f64,
    /// Disable grid alignment (E8 ablation: raw Hough detections only).
    pub grid_alignment: bool,
    /// Flat-field correction: divide each well reading by the local plate
    /// body shade (normalized to the plate-wide mean), canceling most of the
    /// ring-light vignette. Off by default to mirror the paper's pipeline.
    pub flat_field: bool,
}

impl Default for DetectorParams {
    fn default() -> Self {
        DetectorParams {
            plate: PlateLayout::default(),
            marker: MarkerLayout::default(),
            aruco: ArucoParams::default(),
            hough: HoughParams::default(),
            sample_fraction: 0.55,
            grid_alignment: true,
            flat_field: false,
        }
    }
}

/// Reusable working memory for [`Detector::detect_with`]: the shared luma
/// plane (computed once per frame instead of once per stage), the Hough
/// vote planes and the ArUco labelling buffers — several megabytes that the
/// measurement loop would otherwise reallocate per frame. One instance per
/// campaign worker thread.
#[derive(Debug, Clone, Default)]
pub struct DetectorScratch {
    luma: Vec<u8>,
    hough: HoughScratch,
    aruco: ArucoScratch,
    centers: Vec<(f64, f64)>,
    patches: Vec<sdl_color::LinRgb>,
}

/// The §2.4 pipeline.
#[derive(Debug, Clone, Default)]
pub struct Detector {
    /// Configuration.
    pub params: DetectorParams,
}

impl Detector {
    /// Build with explicit parameters.
    pub fn new(params: DetectorParams) -> Detector {
        Detector { params }
    }

    /// Process one frame into per-well readings.
    pub fn detect(&self, img: &ImageRgb8) -> Result<PlateReading, VisionError> {
        self.detect_with(img, &mut DetectorScratch::default())
    }

    /// [`Detector::detect`] over reusable scratch buffers. Readings are
    /// identical to the allocating path; only the allocation traffic
    /// differs.
    pub fn detect_with(
        &self,
        img: &ImageRgb8,
        scratch: &mut DetectorScratch,
    ) -> Result<PlateReading, VisionError> {
        let p = &self.params;
        img.luma_into(&mut scratch.luma);

        // 1. Fiducial: gives scale and the approximate plate origin.
        let markers = detect_markers_with(img, &p.aruco, &scratch.luma, &mut scratch.aruco);
        let marker = markers.into_iter().next().ok_or(VisionError::MarkerNotFound)?;
        let px_per_mm = marker.size_px / p.marker.size_mm;

        // Marker center in plate-local mm.
        let marker_center_mm = (
            p.marker.offset_x_mm + p.marker.size_mm / 2.0,
            p.marker.offset_y_mm + p.marker.size_mm / 2.0,
        );
        let plate_origin_px = (
            marker.center.0 - marker_center_mm.0 * px_per_mm,
            marker.center.1 - marker_center_mm.1 * px_per_mm,
        );

        // 2. Approximate (unrotated) grid from rig geometry.
        let approx = GridModel {
            origin: (
                plate_origin_px.0 + p.plate.a1_x_mm * px_per_mm,
                plate_origin_px.1 + p.plate.a1_y_mm * px_per_mm,
            ),
            u: (p.plate.pitch_mm * px_per_mm, 0.0),
            v: (0.0, p.plate.pitch_mm * px_per_mm),
        };

        // 3. HoughCircles over the well radius band, restricted to a margin
        // around the approximate plate bounds.
        let well_r_px = p.plate.well_radius_mm * px_per_mm;
        let hough = HoughParams {
            r_min: well_r_px * 0.8,
            r_max: well_r_px * 1.25,
            min_center_dist: p.plate.pitch_mm * px_per_mm * 0.6,
            max_circles: p.plate.well_count() + 16,
            ..p.hough.clone()
        };
        let circles = hough_circles_with(img, &hough, &scratch.luma, &mut scratch.hough);
        let margin = p.plate.pitch_mm * px_per_mm;
        let in_plate = |c: &Circle| {
            let x_mm = (c.cx - plate_origin_px.0) / px_per_mm;
            let y_mm = (c.cy - plate_origin_px.1) / px_per_mm;
            x_mm > -margin
                && y_mm > -margin
                && x_mm < p.plate.width_mm + margin
                && y_mm < p.plate.height_mm + margin
        };
        scratch.centers.clear();
        scratch.centers.extend(circles.iter().filter(|c| in_plate(c)).map(|c| (c.cx, c.cy)));
        let centers: &[(f64, f64)] = &scratch.centers;

        // 4. Grid alignment (the false-negative correction).
        let (model, rms, fitted) = if p.grid_alignment {
            match fit_grid(centers, p.plate.rows, p.plate.cols, &approx, 3) {
                Some(fit) => {
                    let pitch_ok =
                        (fit.model.pitch_px() / (p.plate.pitch_mm * px_per_mm) - 1.0).abs() < 0.12;
                    if !pitch_ok {
                        return Err(VisionError::ImplausibleGrid);
                    }
                    (fit.model, fit.rms_px, true)
                }
                None => (approx, f64::NAN, false),
            }
        } else {
            (approx, f64::NAN, false)
        };
        let _ = fitted;

        // 5. Extraction at every predicted center (optionally flat-field
        // corrected against the local plate body shade).
        let sample_r = well_r_px * p.sample_fraction;
        let body = if p.flat_field {
            // Plate body patches at the diagonal midpoints between wells.
            let patches = &mut scratch.patches;
            patches.clear();
            patches.reserve(p.plate.well_count());
            for row in 0..p.plate.rows {
                for col in 0..p.plate.cols {
                    let (ax, ay) = model.predict(row, col);
                    let (bx, by) =
                        (ax + (model.u.0 + model.v.0) / 2.0, ay + (model.u.1 + model.v.1) / 2.0);
                    let (c, n) = img.mean_disk(bx, by, well_r_px * 0.25);
                    if n > 0 {
                        patches.push(c.to_linear());
                    } else {
                        patches.push(sdl_color::LinRgb::new(1.0, 1.0, 1.0));
                    }
                }
            }
            // Correct against the known plate-body reflectance (the rig's
            // built-in white reference), not just the plate-wide mean.
            Some((&scratch.patches, crate::render::PLATE_BODY_REFLECTANCE))
        } else {
            None
        };
        let near = |cx: f64, cy: f64| {
            centers.iter().any(|&(x, y)| {
                let dx = x - cx;
                let dy = y - cy;
                (dx * dx + dy * dy).sqrt() < well_r_px * 0.8
            })
        };
        let mut wells = Vec::with_capacity(p.plate.well_count());
        let mut recovered = 0usize;
        for row in 0..p.plate.rows {
            for col in 0..p.plate.cols {
                let (cx, cy) = model.predict(row, col);
                let (mut color, _n) = img.mean_disk(cx, cy, sample_r);
                if let Some((patches, reference)) = &body {
                    let local = patches[row * p.plate.cols + col];
                    let lin = color.to_linear();
                    let corrected = sdl_color::LinRgb::new(
                        lin.r * (reference.r / local.r.max(1e-4)),
                        lin.g * (reference.g / local.g.max(1e-4)),
                        lin.b * (reference.b / local.b.max(1e-4)),
                    );
                    color = corrected.to_srgb();
                }
                let by_hough = near(cx, cy);
                if !by_hough {
                    recovered += 1;
                }
                wells.push(WellReading {
                    row,
                    col,
                    color,
                    center_px: (cx, cy),
                    found_by_hough: by_hough,
                });
            }
        }

        Ok(PlateReading {
            marker,
            hough_hits: centers.len(),
            grid_recovered: recovered,
            grid_rms_px: rms,
            wells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{render, PlateScene, Pose};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sdl_color::LinRgb;

    fn scene_with_samples(n: usize) -> PlateScene {
        let mut scene = PlateScene::empty_plate();
        let colors = [
            LinRgb::new(0.35, 0.08, 0.08),
            LinRgb::new(0.07, 0.25, 0.10),
            LinRgb::new(0.08, 0.10, 0.40),
            LinRgb::new(0.18, 0.18, 0.19),
        ];
        for i in 0..n {
            let row = i / 12;
            let col = i % 12;
            scene.set_well(row, col, colors[i % colors.len()]);
        }
        scene
    }

    #[test]
    fn full_pipeline_reads_filled_wells() {
        let scene = scene_with_samples(24);
        let img = render(&scene, &mut StdRng::seed_from_u64(7));
        let reading = Detector::default().detect(&img).unwrap();
        assert_eq!(reading.wells.len(), 96);
        assert_eq!(reading.marker.id, 0);
        // Filled wells must be found by Hough directly.
        let first = reading.well(0, 0).unwrap();
        assert!(first.found_by_hough, "filled A1 should be a Hough hit");
        // A dark red well reads as dark red.
        assert!(first.color.r > first.color.g + 30, "A1 color {}", first.color);
        assert_eq!(first.label(), "A1");
    }

    #[test]
    fn empty_wells_are_recovered_by_grid() {
        let scene = scene_with_samples(12);
        let img = render(&scene, &mut StdRng::seed_from_u64(8));
        let reading = Detector::default().detect(&img).unwrap();
        // 84 empty wells have weak edges; most must come from grid recovery.
        // Hough finds nearly every filled well (the odd marginal miss is
        // noise-realization luck on either render path).
        assert!(reading.grid_recovered > 40, "recovered {}", reading.grid_recovered);
        assert!(reading.hough_hits >= 11, "hough hits {}", reading.hough_hits);
        let empty = reading.well(7, 11).unwrap();
        assert!(!empty.found_by_hough);
        assert!(empty.color.r > 180, "empty well color {}", empty.color);
    }

    #[test]
    fn pose_jitter_is_compensated() {
        let mut scene = scene_with_samples(48);
        scene.pose = Pose { dx_px: 5.0, dy_px: -4.0, rot_deg: 1.0 };
        let img = render(&scene, &mut StdRng::seed_from_u64(9));
        let reading = Detector::default().detect(&img).unwrap();
        assert!(reading.grid_rms_px < 2.0, "rms {}", reading.grid_rms_px);
        // Reading a known well still returns its color despite the shift.
        let w = reading.well(0, 0).unwrap();
        assert!(w.color.r > w.color.g + 30, "A1 under jitter: {}", w.color);
    }

    #[test]
    fn reused_scratch_reproduces_fresh_detection() {
        let det = Detector::new(DetectorParams { flat_field: true, ..DetectorParams::default() });
        let mut scratch = DetectorScratch::default();
        for seed in [31u64, 32, 33] {
            let mut scene = scene_with_samples(30);
            scene.pose = Pose { dx_px: 2.0, dy_px: -1.0, rot_deg: 0.4 };
            let img = render(&scene, &mut StdRng::seed_from_u64(seed));
            let fresh = det.detect(&img).unwrap();
            let reused = det.detect_with(&img, &mut scratch).unwrap();
            assert_eq!(fresh, reused, "seed {seed}");
        }
    }

    #[test]
    fn missing_marker_is_an_error() {
        let mut scene = scene_with_samples(4);
        // Point the camera far away from the marker.
        scene.camera.look_at_mm = (400.0, 400.0);
        let img = render(&scene, &mut StdRng::seed_from_u64(10));
        assert_eq!(Detector::default().detect(&img), Err(VisionError::MarkerNotFound));
    }

    #[test]
    fn flat_field_correction_reduces_vignette_error() {
        // Strong vignette: readings at plate corners darken; flat-field
        // correction should pull them back toward the truth.
        let mut scene = scene_with_samples(96);
        scene.lighting.vignette = 0.18;
        let img = render(&scene, &mut StdRng::seed_from_u64(21));

        let plain = Detector::default().detect(&img).unwrap();
        let ff_params = DetectorParams { flat_field: true, ..DetectorParams::default() };
        let corrected = Detector::new(ff_params).detect(&img).unwrap();

        let mut err_plain = 0.0;
        let mut err_ff = 0.0;
        for (i, truth) in scene.well_colors.iter().enumerate() {
            let t = truth.unwrap().to_srgb();
            let (row, col) = (i / 12, i % 12);
            err_plain += plain.well(row, col).unwrap().color.distance(t);
            err_ff += corrected.well(row, col).unwrap().color.distance(t);
        }
        assert!(
            err_ff < err_plain,
            "flat field should help under heavy vignette: {err_ff:.0} vs {err_plain:.0}"
        );
    }

    #[test]
    fn ablation_without_grid_alignment_misreads_under_jitter() {
        let mut scene = scene_with_samples(96);
        scene.pose = Pose { dx_px: 0.0, dy_px: 0.0, rot_deg: 1.2 };
        let img = render(&scene, &mut StdRng::seed_from_u64(11));

        let aligned = Detector::default().detect(&img).unwrap();
        let raw_params = DetectorParams { grid_alignment: false, ..DetectorParams::default() };
        let raw = Detector::new(raw_params).detect(&img).unwrap();

        // Compare color error at the far corner (H12), where rotation bites:
        // alignment must beat the naive fixed grid.
        let truth = scene.well_colors[95].unwrap().to_srgb();
        let e_aligned = aligned.well(7, 11).unwrap().color.distance(truth);
        let e_raw = raw.well(7, 11).unwrap().color.distance(truth);
        assert!(
            e_aligned < e_raw,
            "alignment should help at the corner: aligned {e_aligned:.1} vs raw {e_raw:.1}"
        );
    }
}
