//! Deterministic polynomial kernels for the counter-based noise field.
//!
//! The fast render path needs `ln`, `sin` and `cos` per Box–Muller pair.
//! Calling libm would tie frame bytes to the host's math library; these
//! pure-arithmetic kernels (exponent split + atanh series for `ln`,
//! quarter-phase Taylor polynomials for sin/cos) make the fast path a
//! function of IEEE-754 arithmetic alone, so frames are bit-identical
//! across platforms as well as across tile sizes and thread counts.
//!
//! Accuracy: |relative error| < 1e-10 for `ln` on (0, 1], absolute error
//! < 1e-7 for the phase functions — noise is applied at sigma ~6e-3 in
//! linear light, so these errors sit far below the 8-bit quantization
//! floor (the noise field stays statistically indistinguishable from an
//! exact Box–Muller transform; the detector-accuracy gate enforces it).

use std::f64::consts::{FRAC_PI_2, LN_2, SQRT_2};

/// Natural log for `x` in (0, 1] (normal, finite).
#[inline]
pub(crate) fn fast_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x <= 1.0);
    let bits = x.to_bits();
    let mut e = ((bits >> 52) as i64 - 1023) as f64;
    // Mantissa in [1, 2), then renormalized into (1/sqrt2, sqrt2] so the
    // atanh argument stays small.
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if m > SQRT_2 {
        m *= 0.5;
        e += 1.0;
    }
    // ln m = 2 atanh(t), t = (m-1)/(m+1), |t| <= 0.1716.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let series = 2.0
        * t
        * (1.0
            + t2 * (1.0 / 3.0
                + t2 * (1.0 / 5.0 + t2 * (1.0 / 7.0 + t2 * (1.0 / 9.0 + t2 * (1.0 / 11.0))))));
    e * LN_2 + series
}

/// `(sin, cos)` of `2π·u` for `u` in [0, 1).
///
/// The quadrant selection is written as data-dependent selects rather than
/// a `match` so the whole function if-converts and stays vectorizable
/// inside the renderer's noise passes.
#[inline]
pub(crate) fn fast_sincos_2pi(u: f64) -> (f64, f64) {
    debug_assert!((0.0..1.0).contains(&u));
    // Quarter-phase reduction: 2πu = (π/2)(q + f), q in 0..4, f in [0, 1).
    let s = u * 4.0;
    let q = s as u32; // u < 1 so q in 0..=3
    let f = s - q as f64;
    let (sp, cp) = quarter_sincos(f);
    // q=0: ( sp,  cp)   q=1: ( cp, -sp)   q=2: (-sp, -cp)   q=3: (-cp, sp)
    let swap = q & 1 == 1;
    let (a, b) = if swap { (cp, sp) } else { (sp, cp) };
    let sin_sign = if q >= 2 { -1.0 } else { 1.0 };
    let cos_sign = if q == 1 || q == 2 { -1.0 } else { 1.0 };
    (a * sin_sign, b * cos_sign)
}

/// `(sin, cos)` of `(π/2)·f` for `f` in [0, 1): Taylor polynomials in `f²`.
#[inline]
fn quarter_sincos(f: f64) -> (f64, f64) {
    const A: f64 = FRAC_PI_2;
    const A2: f64 = A * A;
    // sin(af) = af · Σ (-a²f²)^k / (2k+1)!   truncated past (af)^13
    const S1: f64 = A;
    const S3: f64 = -A * A2 / 6.0;
    const S5: f64 = A * A2 * A2 / 120.0;
    const S7: f64 = -A * A2 * A2 * A2 / 5040.0;
    const S9: f64 = A * A2 * A2 * A2 * A2 / 362_880.0;
    const S11: f64 = -A * A2 * A2 * A2 * A2 * A2 / 39_916_800.0;
    const S13: f64 = A * A2 * A2 * A2 * A2 * A2 * A2 / 6_227_020_800.0;
    // cos(af) = Σ (-a²f²)^k / (2k)!          truncated past (af)^14
    const C0: f64 = 1.0;
    const C2: f64 = -A2 / 2.0;
    const C4: f64 = A2 * A2 / 24.0;
    const C6: f64 = -A2 * A2 * A2 / 720.0;
    const C8: f64 = A2 * A2 * A2 * A2 / 40_320.0;
    const C10: f64 = -A2 * A2 * A2 * A2 * A2 / 3_628_800.0;
    const C12: f64 = A2 * A2 * A2 * A2 * A2 * A2 / 479_001_600.0;
    const C14: f64 = -A2 * A2 * A2 * A2 * A2 * A2 * A2 / 87_178_291_200.0;

    let f2 = f * f;
    let sp = f * (S1 + f2 * (S3 + f2 * (S5 + f2 * (S7 + f2 * (S9 + f2 * (S11 + f2 * S13))))));
    let cp =
        C0 + f2 * (C2 + f2 * (C4 + f2 * (C6 + f2 * (C8 + f2 * (C10 + f2 * (C12 + f2 * C14))))));
    (sp, cp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_tracks_std_over_the_unit_interval() {
        // Includes the Box–Muller extremes: the smallest uniform the
        // counter stream can produce (2^-53) and exactly 1.0.
        let mut worst = 0.0f64;
        for i in 1..=100_000u64 {
            let x = i as f64 / 100_000.0;
            let rel = (fast_ln(x) - x.ln()).abs() / x.ln().abs().max(1e-300);
            worst = worst.max(rel);
        }
        assert!(worst < 1e-10, "worst relative error {worst:e}");
        let tiny = (1.0f64 / (1u64 << 53) as f64).ln();
        assert!((fast_ln(1.0 / (1u64 << 53) as f64) - tiny).abs() / tiny.abs() < 1e-12);
        assert_eq!(fast_ln(1.0), 0.0);
        assert_eq!(fast_ln(0.5), -LN_2);
    }

    #[test]
    fn sincos_tracks_std_over_the_phase_circle() {
        let mut worst = 0.0f64;
        for i in 0..400_000u64 {
            let u = i as f64 / 400_000.0;
            let (s, c) = fast_sincos_2pi(u);
            let a = 2.0 * std::f64::consts::PI * u;
            worst = worst.max((s - a.sin()).abs()).max((c - a.cos()).abs());
        }
        assert!(worst < 1e-7, "worst absolute error {worst:e}");
        // Exact quadrant corners.
        assert_eq!(fast_sincos_2pi(0.0), (0.0, 1.0));
        assert_eq!(fast_sincos_2pi(0.25), (1.0, -0.0));
        assert_eq!(fast_sincos_2pi(0.5), (-0.0, -1.0));
        assert_eq!(fast_sincos_2pi(0.75), (-1.0, 0.0));
    }

    #[test]
    fn unit_circle_identity_holds() {
        for i in 0..10_000u64 {
            let u = (i as f64 + 0.37) / 10_000.0;
            let (s, c) = fast_sincos_2pi(u);
            assert!((s * s + c * c - 1.0).abs() < 1e-7, "u = {u}");
        }
    }
}
