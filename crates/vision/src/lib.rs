//! `sdl-vision` — the imaging substrate: a synthetic webcam and the paper's
//! image-processing pipeline.
//!
//! The physical rig photographs the microplate with a Logitech webcam and
//! locates wells via an ArUco marker, HoughCircles, and grid alignment
//! (paper §2.4). This crate supplies both sides of that interface:
//!
//! * [`ImageRgb8`] — an 8-bit raster with PPM I/O;
//! * [`render`] / [`PlateScene`] — the camera substitute: renders the plate,
//!   marker, ring-light vignette, sensor noise and pose jitter;
//! * [`detect_markers`] — ArUco-style fiducial detection over a
//!   deterministic 4×4 dictionary;
//! * [`hough_circles`] — gradient-voting circular Hough transform;
//! * [`fit_grid`] — the affine grid alignment that recovers wells Hough
//!   missed;
//! * [`Detector`] — the full pipeline producing [`PlateReading`]s.
//!
//! The detector never sees scene ground truth — only the frame and the rig
//! geometry ([`PlateLayout`], [`MarkerLayout`]), exactly like the original.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aruco;
pub mod draw;
mod drift;
mod fastmath;
mod grid;
mod hough;
mod image;
mod layout;
mod pipeline;
mod reference;
mod render;

pub use aruco::{
    detect_markers, detect_markers_with, ArucoParams, ArucoScratch, MarkerDetection, DICT_SIZE,
};
pub use drift::DriftSpec;
pub use grid::{fit_grid, GridFit, GridModel};
pub use hough::{hough_circles, hough_circles_with, Circle, HoughParams, HoughScratch};
pub use image::ImageRgb8;
pub use layout::{CameraGeometry, Fidelity, MarkerLayout, PlateLayout};
pub use pipeline::{
    Detector, DetectorParams, DetectorScratch, PlateReading, VisionError, WellReading,
};
pub use reference::{render_reference, render_reference_into};
pub use render::{
    render, render_into, render_tiled, Lighting, PlateScene, Pose, PLATE_BODY_REFLECTANCE,
};
