//! A minimal 8-bit RGB raster with PPM I/O.
//!
//! The webcam substitute renders into this type and the detection pipeline
//! reads from it; PPM (P6) files let benches dump frames for inspection and
//! let the blob store archive "raw plate images for quality control"
//! (paper §2.3).

use sdl_color::Rgb8;

/// An owned 8-bit RGB image, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageRgb8 {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl ImageRgb8 {
    /// A `width` × `height` image filled with `fill`.
    pub fn new(width: usize, height: usize, fill: Rgb8) -> ImageRgb8 {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        let mut data = Vec::with_capacity(width * height * 3);
        for _ in 0..width * height {
            data.extend_from_slice(&[fill.r, fill.g, fill.b]);
        }
        ImageRgb8 { width, height, data }
    }

    /// Reshape in place to `width` × `height` filled with `fill`, reusing
    /// the existing pixel buffer — the renderer's per-frame allocation
    /// becomes a no-op once the buffer has reached frame size.
    pub fn reset(&mut self, width: usize, height: usize, fill: Rgb8) {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.reserve(width * height * 3);
        for _ in 0..width * height {
            self.data.extend_from_slice(&[fill.r, fill.g, fill.b]);
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw interleaved RGB bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw interleaved RGB bytes (the renderer's tile workers
    /// write row slices of this directly).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    #[inline]
    fn offset(&self, x: usize, y: usize) -> usize {
        (y * self.width + x) * 3
    }

    /// Pixel at (x, y); panics out of bounds (debug-friendly, hot paths use
    /// `get`).
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> Rgb8 {
        let o = self.offset(x, y);
        Rgb8::new(self.data[o], self.data[o + 1], self.data[o + 2])
    }

    /// Pixel at (x, y) or None when out of bounds.
    #[inline]
    pub fn get(&self, x: i64, y: i64) -> Option<Rgb8> {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return None;
        }
        Some(self.pixel(x as usize, y as usize))
    }

    /// Write pixel at (x, y); silently ignores out-of-bounds writes (drawing
    /// primitives clip at the edges).
    #[inline]
    pub fn put(&mut self, x: i64, y: i64, c: Rgb8) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        let o = self.offset(x as usize, y as usize);
        self.data[o] = c.r;
        self.data[o + 1] = c.g;
        self.data[o + 2] = c.b;
    }

    /// Luma (BT.601 integer approximation) of the pixel at (x, y).
    #[inline]
    pub fn luma(&self, x: usize, y: usize) -> u8 {
        let p = self.pixel(x, y);
        ((77 * p.r as u32 + 150 * p.g as u32 + 29 * p.b as u32) >> 8) as u8
    }

    /// Full grayscale plane.
    pub fn to_luma(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.width * self.height);
        self.luma_into(&mut out);
        out
    }

    /// Full grayscale plane into a reusable buffer (cleared first). One
    /// vectorizable pass over the interleaved bytes — same weights as
    /// [`ImageRgb8::luma`], bit for bit.
    pub fn luma_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.width * self.height);
        out.extend(
            self.data
                .chunks_exact(3)
                .map(|p| ((77 * p[0] as u32 + 150 * p[1] as u32 + 29 * p[2] as u32) >> 8) as u8),
        );
    }

    /// Mean color over a disk of radius `r` centered at (cx, cy); returns
    /// the mean and the number of pixels sampled (0 if fully out of bounds).
    pub fn mean_disk(&self, cx: f64, cy: f64, r: f64) -> (Rgb8, usize) {
        let mut sum = [0u64; 3];
        let mut n = 0usize;
        let r2 = r * r;
        let x0 = (cx - r).floor() as i64;
        let x1 = (cx + r).ceil() as i64;
        let y0 = (cy - r).floor() as i64;
        let y1 = (cy + r).ceil() as i64;
        for y in y0..=y1 {
            for x in x0..=x1 {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                if dx * dx + dy * dy > r2 {
                    continue;
                }
                if let Some(p) = self.get(x, y) {
                    sum[0] += p.r as u64;
                    sum[1] += p.g as u64;
                    sum[2] += p.b as u64;
                    n += 1;
                }
            }
        }
        if n == 0 {
            return (Rgb8::default(), 0);
        }
        (
            Rgb8::new(
                (sum[0] / n as u64) as u8,
                (sum[1] / n as u64) as u8,
                (sum[2] / n as u64) as u8,
            ),
            n,
        )
    }

    /// Serialize as binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.data);
        out
    }

    /// Serialize as a BMP (24-bit, bottom-up) — the format browsers render,
    /// used by the portal's HTML export.
    pub fn to_bmp(&self) -> Vec<u8> {
        let w = self.width;
        let h = self.height;
        let row_bytes = w * 3;
        let pad = (4 - row_bytes % 4) % 4;
        let data_size = (row_bytes + pad) * h;
        let file_size = 54 + data_size;
        let mut out = Vec::with_capacity(file_size);
        // BITMAPFILEHEADER
        out.extend_from_slice(b"BM");
        out.extend_from_slice(&(file_size as u32).to_le_bytes());
        out.extend_from_slice(&[0; 4]); // reserved
        out.extend_from_slice(&54u32.to_le_bytes()); // pixel data offset
                                                     // BITMAPINFOHEADER
        out.extend_from_slice(&40u32.to_le_bytes());
        out.extend_from_slice(&(w as i32).to_le_bytes());
        out.extend_from_slice(&(h as i32).to_le_bytes());
        out.extend_from_slice(&1u16.to_le_bytes()); // planes
        out.extend_from_slice(&24u16.to_le_bytes()); // bpp
        out.extend_from_slice(&[0; 24]); // no compression, default fields
                                         // Pixel rows, bottom-up, BGR order.
        for y in (0..h).rev() {
            for x in 0..w {
                let p = self.pixel(x, y);
                out.extend_from_slice(&[p.b, p.g, p.r]);
            }
            out.extend(std::iter::repeat_n(0u8, pad));
        }
        out
    }

    /// Parse a binary PPM (P6) produced by [`ImageRgb8::to_ppm`].
    pub fn from_ppm(bytes: &[u8]) -> Result<ImageRgb8, String> {
        let mut pos = 0usize;
        let mut fields = Vec::new();
        // Header: magic, width, height, maxval — whitespace separated, with
        // '#' comments allowed.
        while fields.len() < 4 {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
                continue;
            }
            let start = pos;
            while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if start == pos {
                return Err("truncated PPM header".into());
            }
            fields.push(
                std::str::from_utf8(&bytes[start..pos]).map_err(|_| "bad header")?.to_string(),
            );
        }
        if fields[0] != "P6" {
            return Err(format!("unsupported PPM magic '{}'", fields[0]));
        }
        let width: usize = fields[1].parse().map_err(|_| "bad width")?;
        let height: usize = fields[2].parse().map_err(|_| "bad height")?;
        if fields[3] != "255" {
            return Err("only maxval 255 supported".into());
        }
        pos += 1; // single whitespace after maxval
        let need = width * height * 3;
        let data = bytes.get(pos..pos + need).ok_or("truncated PPM data")?.to_vec();
        Ok(ImageRgb8 { width, height, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_pixels() {
        let mut img = ImageRgb8::new(4, 3, Rgb8::new(10, 20, 30));
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.pixel(3, 2), Rgb8::new(10, 20, 30));
        img.put(1, 1, Rgb8::new(255, 0, 0));
        assert_eq!(img.pixel(1, 1), Rgb8::new(255, 0, 0));
    }

    #[test]
    fn out_of_bounds_are_safe() {
        let mut img = ImageRgb8::new(2, 2, Rgb8::default());
        assert_eq!(img.get(-1, 0), None);
        assert_eq!(img.get(0, 5), None);
        img.put(-3, 9, Rgb8::new(1, 2, 3)); // no panic
        assert_eq!(img.get(1, 1), Some(Rgb8::default()));
    }

    #[test]
    fn luma_ordering() {
        let mut img = ImageRgb8::new(3, 1, Rgb8::default());
        img.put(0, 0, Rgb8::new(255, 255, 255));
        img.put(1, 0, Rgb8::new(128, 128, 128));
        assert!(img.luma(0, 0) > img.luma(1, 0));
        assert!(img.luma(1, 0) > img.luma(2, 0));
        assert_eq!(img.to_luma().len(), 3);
    }

    #[test]
    fn mean_disk_averages() {
        let mut img = ImageRgb8::new(20, 20, Rgb8::new(100, 100, 100));
        for y in 0..20 {
            for x in 0..10 {
                img.put(x, y, Rgb8::new(200, 100, 100));
            }
        }
        let (c, n) = img.mean_disk(5.0, 10.0, 3.0);
        assert!(n > 20);
        assert_eq!(c, Rgb8::new(200, 100, 100));
        let (_, zero) = img.mean_disk(-100.0, -100.0, 2.0);
        assert_eq!(zero, 0);
    }

    #[test]
    fn ppm_roundtrip() {
        let mut img = ImageRgb8::new(7, 5, Rgb8::new(1, 2, 3));
        img.put(6, 4, Rgb8::new(250, 251, 252));
        let bytes = img.to_ppm();
        let back = ImageRgb8::from_ppm(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn bmp_has_valid_header_and_size() {
        let img = ImageRgb8::new(5, 3, Rgb8::new(10, 20, 30));
        let bmp = img.to_bmp();
        assert_eq!(&bmp[0..2], b"BM");
        let file_size = u32::from_le_bytes(bmp[2..6].try_into().unwrap()) as usize;
        assert_eq!(file_size, bmp.len());
        // 5 px * 3 B = 15 B rows padded to 16; 3 rows; 54 B headers.
        assert_eq!(bmp.len(), 54 + 16 * 3);
        // First pixel datum is the bottom-left pixel in BGR.
        assert_eq!(&bmp[54..57], &[30, 20, 10]);
    }

    #[test]
    fn ppm_rejects_garbage() {
        assert!(ImageRgb8::from_ppm(b"P5\n1 1\n255\nx").is_err());
        assert!(ImageRgb8::from_ppm(b"P6\n4 4\n255\nxx").is_err());
        assert!(ImageRgb8::from_ppm(b"").is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        ImageRgb8::new(0, 10, Rgb8::default());
    }
}
