//! Grid alignment: recovering every well center from partial detections.
//!
//! "…we further align a grid to all well-sized circles within the
//! approximate plate position, and use this grid's size and orientation to
//! predict the center points for all wells in the image, even those
//! originally missed by the HoughCircles algorithm." (paper §2.4)
//!
//! The grid is the affine model `p(row, col) = origin + col·u + row·v`.
//! Fitting alternates nearest-node assignment with a linear least-squares
//! update of `(origin, u, v)` — three iterations suffice at the pose jitter
//! the rig exhibits.

/// Affine 8×12 grid model in pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridModel {
    /// Center of well A1, px.
    pub origin: (f64, f64),
    /// Column step vector, px.
    pub u: (f64, f64),
    /// Row step vector, px.
    pub v: (f64, f64),
}

impl GridModel {
    /// Predicted center of the well at (row, col).
    pub fn predict(&self, row: usize, col: usize) -> (f64, f64) {
        (
            self.origin.0 + col as f64 * self.u.0 + row as f64 * self.v.0,
            self.origin.1 + col as f64 * self.u.1 + row as f64 * self.v.1,
        )
    }

    /// Invert the affine map: fractional (row, col) for a pixel point.
    pub fn locate(&self, p: (f64, f64)) -> Option<(f64, f64)> {
        let det = self.u.0 * self.v.1 - self.u.1 * self.v.0;
        if det.abs() < 1e-9 {
            return None;
        }
        let dx = p.0 - self.origin.0;
        let dy = p.1 - self.origin.1;
        let col = (dx * self.v.1 - dy * self.v.0) / det;
        let row = (dy * self.u.0 - dx * self.u.1) / det;
        Some((row, col))
    }

    /// The grid's mean pitch in px (for sanity checks).
    pub fn pitch_px(&self) -> f64 {
        let pu = (self.u.0 * self.u.0 + self.u.1 * self.u.1).sqrt();
        let pv = (self.v.0 * self.v.0 + self.v.1 * self.v.1).sqrt();
        (pu + pv) / 2.0
    }

    /// Grid rotation in degrees (angle of the column axis).
    pub fn rotation_deg(&self) -> f64 {
        self.u.1.atan2(self.u.0).to_degrees()
    }
}

/// Result of a grid fit.
#[derive(Debug, Clone, PartialEq)]
pub struct GridFit {
    /// The fitted model.
    pub model: GridModel,
    /// Points used in the final iteration (index into the input slice,
    /// assigned row, assigned col).
    pub assignments: Vec<(usize, usize, usize)>,
    /// Root-mean-square residual of the final fit, px.
    pub rms_px: f64,
}

/// Fit the grid to detected centers starting from `approx`.
///
/// Points landing outside the grid (fractional index off by more than half a
/// pitch beyond the edge) are treated as spurious and dropped. Returns
/// `None` when fewer than four usable points remain or the system is
/// degenerate (e.g. all points collinear) — callers then fall back to the
/// approximate model.
pub fn fit_grid(
    points: &[(f64, f64)],
    rows: usize,
    cols: usize,
    approx: &GridModel,
    iterations: usize,
) -> Option<GridFit> {
    let mut model = *approx;
    let mut assignments: Vec<(usize, usize, usize)> = Vec::new();
    for _ in 0..iterations.max(1) {
        assignments.clear();
        for (i, &p) in points.iter().enumerate() {
            let (row_f, col_f) = model.locate(p)?;
            let row = row_f.round();
            let col = col_f.round();
            if row < -0.25 || col < -0.25 || row > rows as f64 - 0.75 || col > cols as f64 - 0.75 {
                continue; // outside the plate: spurious detection
            }
            // Reject points far from their nearest node (> 0.4 pitch).
            if (row_f - row).abs() > 0.4 || (col_f - col).abs() > 0.4 {
                continue;
            }
            let row = row.max(0.0) as usize;
            let col = col.max(0.0) as usize;
            assignments.push((i, row.min(rows - 1), col.min(cols - 1)));
        }
        model = solve_least_squares(points, &assignments)?;
    }

    // Final residual.
    let mut ss = 0.0;
    for &(i, row, col) in &assignments {
        let (px, py) = model.predict(row, col);
        let dx = points[i].0 - px;
        let dy = points[i].1 - py;
        ss += dx * dx + dy * dy;
    }
    let rms =
        if assignments.is_empty() { f64::INFINITY } else { (ss / assignments.len() as f64).sqrt() };
    Some(GridFit { model, assignments, rms_px: rms })
}

/// Least squares for x and y separately against design [1, col, row].
fn solve_least_squares(
    points: &[(f64, f64)],
    assignments: &[(usize, usize, usize)],
) -> Option<GridModel> {
    if assignments.len() < 4 {
        return None;
    }
    // Normal equations A^T A θ = A^T b with A rows [1, col, row].
    let n = assignments.len() as f64;
    let (mut sc, mut sr, mut scc, mut srr, mut scr) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(_, row, col) in assignments {
        let (c, r) = (col as f64, row as f64);
        sc += c;
        sr += r;
        scc += c * c;
        srr += r * r;
        scr += c * r;
    }
    let ata = [[n, sc, sr], [sc, scc, scr], [sr, scr, srr]];
    let mut atb_x = [0.0f64; 3];
    let mut atb_y = [0.0f64; 3];
    for &(i, row, col) in assignments {
        let (c, r) = (col as f64, row as f64);
        let (x, y) = points[i];
        atb_x[0] += x;
        atb_x[1] += c * x;
        atb_x[2] += r * x;
        atb_y[0] += y;
        atb_y[1] += c * y;
        atb_y[2] += r * y;
    }
    let tx = solve3(ata, atb_x)?;
    let ty = solve3(ata, atb_y)?;
    Some(GridModel { origin: (tx[0], ty[0]), u: (tx[1], ty[1]), v: (tx[2], ty[2]) })
}

/// Solve a 3×3 system by Gaussian elimination with partial pivoting.
fn solve3(a: [[f64; 3]; 3], b: [f64; 3]) -> Option<[f64; 3]> {
    let mut m = [[0.0f64; 4]; 3];
    for i in 0..3 {
        m[i][..3].copy_from_slice(&a[i]);
        m[i][3] = b[i];
    }
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot][col].abs() < 1e-9 {
            return None;
        }
        m.swap(col, pivot);
        let p = m[col][col];
        for v in m[col][col..4].iter_mut() {
            *v /= p;
        }
        for i in 0..3 {
            if i != col {
                let f = m[i][col];
                let pivot_row = m[col];
                for (j, v) in m[i].iter_mut().enumerate().skip(col) {
                    *v -= f * pivot_row[j];
                }
            }
        }
    }
    Some([m[0][3], m[1][3], m[2][3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GridModel {
        // 30.6 px pitch, rotated ~1°.
        let th = 1.0f64.to_radians();
        GridModel {
            origin: (120.0, 80.0),
            u: (30.6 * th.cos(), 30.6 * th.sin()),
            v: (-30.6 * th.sin(), 30.6 * th.cos()),
        }
    }

    fn approx() -> GridModel {
        GridModel { origin: (116.0, 84.0), u: (30.0, 0.0), v: (0.0, 30.0) }
    }

    #[test]
    fn predict_locate_roundtrip() {
        let g = truth();
        for row in 0..8 {
            for col in 0..12 {
                let p = g.predict(row, col);
                let (rf, cf) = g.locate(p).unwrap();
                assert!((rf - row as f64).abs() < 1e-9);
                assert!((cf - col as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn recovers_model_from_partial_noisy_detections() {
        let g = truth();
        // Only 60 of 96 wells detected, small detection noise.
        let mut pts = Vec::new();
        let mut k = 0u32;
        for row in 0..8 {
            for col in 0..12 {
                k += 1;
                if k % 8 < 3 {
                    continue;
                }
                let (x, y) = g.predict(row, col);
                let nx = ((k * 37) % 11) as f64 / 10.0 - 0.5;
                let ny = ((k * 53) % 11) as f64 / 10.0 - 0.5;
                pts.push((x + nx, y + ny));
            }
        }
        let fit = fit_grid(&pts, 8, 12, &approx(), 3).unwrap();
        assert!(fit.rms_px < 1.0, "rms {}", fit.rms_px);
        for row in [0, 7] {
            for col in [0, 11] {
                let (px, py) = fit.model.predict(row, col);
                let (tx, ty) = g.predict(row, col);
                assert!((px - tx).abs() < 1.2 && (py - ty).abs() < 1.2, "corner ({row},{col})");
            }
        }
        assert!((fit.model.pitch_px() - 30.6).abs() < 0.3);
        assert!((fit.model.rotation_deg() - 1.0).abs() < 0.3);
    }

    #[test]
    fn spurious_points_are_rejected() {
        let g = truth();
        let mut pts: Vec<(f64, f64)> = (0..8)
            .flat_map(|row| (0..12).map(move |col| (row, col)))
            .map(|(r, c)| g.predict(r, c))
            .collect();
        // Junk far outside the plate.
        pts.push((700.0, 700.0));
        pts.push((2.0, 2.0));
        let fit = fit_grid(&pts, 8, 12, &approx(), 3).unwrap();
        assert_eq!(fit.assignments.len(), 96);
        assert!(fit.rms_px < 0.2);
    }

    #[test]
    fn too_few_points_fails() {
        let g = truth();
        let pts = vec![g.predict(0, 0), g.predict(0, 1), g.predict(0, 2)];
        assert!(fit_grid(&pts, 8, 12, &approx(), 3).is_none());
    }

    #[test]
    fn collinear_points_are_degenerate() {
        let g = truth();
        let pts: Vec<_> = (0..12).map(|c| g.predict(0, c)).collect();
        // All in one row: the row axis is unobservable.
        assert!(fit_grid(&pts, 8, 12, &approx(), 3).is_none());
    }

    #[test]
    fn solve3_known_system() {
        // x=1, y=2, z=3 for a simple invertible matrix.
        let a = [[2.0, 0.0, 0.0], [0.0, 3.0, 0.0], [1.0, 0.0, 1.0]];
        let b = [2.0, 6.0, 4.0];
        let s = solve3(a, b).unwrap();
        assert!(
            (s[0] - 1.0).abs() < 1e-12 && (s[1] - 2.0).abs() < 1e-12 && (s[2] - 3.0).abs() < 1e-12
        );
        assert!(solve3([[1.0, 1.0, 1.0]; 3], [1.0, 2.0, 3.0]).is_none());
    }
}
