//! Drawing primitives for the synthetic renderer.

use crate::image::ImageRgb8;
use sdl_color::Rgb8;

/// Fill an axis-aligned rectangle (clipped to the image).
pub fn fill_rect(img: &mut ImageRgb8, x0: i64, y0: i64, w: i64, h: i64, c: Rgb8) {
    for y in y0..y0 + h {
        for x in x0..x0 + w {
            img.put(x, y, c);
        }
    }
}

/// Fill a disk of radius `r` at (cx, cy) (clipped to the image).
pub fn fill_circle(img: &mut ImageRgb8, cx: f64, cy: f64, r: f64, c: Rgb8) {
    let r2 = r * r;
    let x0 = (cx - r).floor() as i64;
    let x1 = (cx + r).ceil() as i64;
    let y0 = (cy - r).floor() as i64;
    let y1 = (cy + r).ceil() as i64;
    for y in y0..=y1 {
        for x in x0..=x1 {
            let dx = x as f64 + 0.5 - cx;
            let dy = y as f64 + 0.5 - cy;
            if dx * dx + dy * dy <= r2 {
                img.put(x, y, c);
            }
        }
    }
}

/// Draw a circle outline of radius `r` and stroke width `stroke`.
pub fn stroke_circle(img: &mut ImageRgb8, cx: f64, cy: f64, r: f64, stroke: f64, c: Rgb8) {
    let outer = r + stroke / 2.0;
    let inner = (r - stroke / 2.0).max(0.0);
    let o2 = outer * outer;
    let i2 = inner * inner;
    let x0 = (cx - outer).floor() as i64;
    let x1 = (cx + outer).ceil() as i64;
    let y0 = (cy - outer).floor() as i64;
    let y1 = (cy + outer).ceil() as i64;
    for y in y0..=y1 {
        for x in x0..=x1 {
            let dx = x as f64 + 0.5 - cx;
            let dy = y as f64 + 0.5 - cy;
            let d2 = dx * dx + dy * dy;
            if d2 <= o2 && d2 >= i2 {
                img.put(x, y, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_fills_and_clips() {
        let mut img = ImageRgb8::new(10, 10, Rgb8::default());
        fill_rect(&mut img, 8, 8, 5, 5, Rgb8::new(9, 9, 9));
        assert_eq!(img.pixel(9, 9), Rgb8::new(9, 9, 9));
        assert_eq!(img.pixel(7, 7), Rgb8::default());
    }

    #[test]
    fn circle_is_round() {
        let mut img = ImageRgb8::new(21, 21, Rgb8::default());
        fill_circle(&mut img, 10.5, 10.5, 5.0, Rgb8::new(255, 0, 0));
        assert_eq!(img.pixel(10, 10), Rgb8::new(255, 0, 0));
        // Corners of the bounding box stay background.
        assert_eq!(img.pixel(6, 6), Rgb8::default());
        assert_eq!(img.pixel(15, 15), Rgb8::default());
        // Area roughly pi*r^2.
        let filled = (0..21)
            .flat_map(|y| (0..21).map(move |x| (x, y)))
            .filter(|&(x, y)| img.pixel(x, y) == Rgb8::new(255, 0, 0))
            .count();
        let expected = std::f64::consts::PI * 25.0;
        assert!((filled as f64 - expected).abs() < 12.0, "filled {filled}");
    }

    #[test]
    fn stroke_leaves_interior() {
        let mut img = ImageRgb8::new(31, 31, Rgb8::default());
        stroke_circle(&mut img, 15.5, 15.5, 10.0, 2.0, Rgb8::new(1, 1, 1));
        assert_eq!(img.pixel(15, 15), Rgb8::default(), "center untouched");
        assert_eq!(img.pixel(15, 5), Rgb8::new(1, 1, 1), "ring drawn");
    }
}
