//! Circular Hough transform for well detection.
//!
//! "With the HoughCircles algorithm from OpenCV, we can detect circular
//! features in the image to precisely identify the center of wells. As this
//! method is prone to false negatives…" (paper §2.4). This implementation
//! follows the gradient-voting variant: Sobel edges vote along their
//! gradient direction at the candidate radii; peaks above a vote threshold
//! become circles, with non-maximum suppression at the well pitch.

use crate::image::ImageRgb8;

/// A detected circle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center x, px.
    pub cx: f64,
    /// Center y, px.
    pub cy: f64,
    /// Radius used for the vote, px.
    pub r: f64,
    /// Accumulated votes (higher = stronger evidence).
    pub votes: u32,
}

/// Tuning for [`hough_circles`].
#[derive(Debug, Clone, PartialEq)]
pub struct HoughParams {
    /// Minimum candidate radius, px.
    pub r_min: f64,
    /// Maximum candidate radius, px.
    pub r_max: f64,
    /// Sobel magnitude below which a pixel is not an edge (0–255 scale).
    pub gradient_threshold: f64,
    /// Fraction of the theoretical maximum votes (circle circumference in
    /// px) a peak must reach.
    pub vote_fraction: f64,
    /// Minimum distance between accepted centers, px.
    pub min_center_dist: f64,
    /// Upper bound on returned circles.
    pub max_circles: usize,
}

impl Default for HoughParams {
    fn default() -> Self {
        HoughParams {
            r_min: 9.0,
            r_max: 14.0,
            gradient_threshold: 40.0,
            vote_fraction: 0.45,
            min_center_dist: 18.0,
            max_circles: 128,
        }
    }
}

/// Reusable vote planes for [`hough_circles_with`]; the two full-frame
/// accumulators dominate the detector's per-frame allocations, so the
/// measurement loop keeps one of these per worker.
#[derive(Debug, Clone, Default)]
pub struct HoughScratch {
    acc: Vec<u32>,
    hsum: Vec<u32>,
    pooled: Vec<u32>,
    peaks: Vec<(u32, usize, usize)>,
    radii: Vec<f64>,
}

/// Detect circles, strongest first.
pub fn hough_circles(img: &ImageRgb8, params: &HoughParams) -> Vec<Circle> {
    hough_circles_with(img, params, &img.to_luma(), &mut HoughScratch::default())
}

/// [`hough_circles`] over a precomputed luma plane and caller-owned scratch
/// buffers. The buffers are fully re-zeroed, so results are identical to a
/// fresh-allocation run.
pub fn hough_circles_with(
    img: &ImageRgb8,
    params: &HoughParams,
    luma: &[u8],
    scratch: &mut HoughScratch,
) -> Vec<Circle> {
    let w = img.width();
    let h = img.height();
    assert_eq!(luma.len(), w * h, "luma plane must match the frame");

    // Accumulate votes over all radii into one plane; radius resolution is
    // not needed because the wells share a known radius band.
    let acc = &mut scratch.acc;
    acc.clear();
    acc.resize(w * h, 0);
    let r_mid = (params.r_min + params.r_max) / 2.0;
    let radii = &mut scratch.radii;
    radii.clear();
    {
        let mut r = params.r_min;
        while r <= params.r_max + 1e-9 {
            radii.push(r);
            r += 1.0;
        }
    }

    // The Sobel taps are small integers (exact in f64), so the historical
    // float filter can run in integer registers as long as the threshold
    // decision stays the *exact* float predicate `sqrt(gx²+gy²)/4 < t`.
    // Precompute the smallest squared magnitude that passes it; the hot
    // loop then compares integers and only touches floats on real edges.
    let s_cut = {
        let passes = |s: i32| (s as f64).sqrt() / 4.0 >= params.gradient_threshold;
        const S_MAX: i32 = 2 * 1020 * 1020; // both gradients saturated
        if passes(0) {
            0
        } else if !passes(S_MAX) {
            S_MAX + 1 // nothing can pass
        } else {
            let (mut lo, mut hi) = (0i32, S_MAX); // lo fails, hi passes
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if passes(mid) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            hi
        }
    };

    for y in 1..h - 1 {
        let above = &luma[(y - 1) * w..y * w];
        let row = &luma[y * w..(y + 1) * w];
        let below = &luma[(y + 1) * w..(y + 2) * w];
        for x in 1..w - 1 {
            // Sobel, in integer registers (bit-identical to the f64 taps).
            let (a, b, c) = (above[x - 1] as i32, above[x] as i32, above[x + 1] as i32);
            let (d, e) = (row[x - 1] as i32, row[x + 1] as i32);
            let (f, g, k) = (below[x - 1] as i32, below[x] as i32, below[x + 1] as i32);
            let gx = c + 2 * e + k - a - 2 * d - f;
            let gy = f + 2 * g + k - a - 2 * b - c;
            let s = gx * gx + gy * gy;
            if s < s_cut {
                continue;
            }
            // `mag * 4.0` of the float formulation is exactly `sqrt(s)`
            // (the /4 and *4 only move the exponent), so the vote geometry
            // below is unchanged bit for bit.
            let sqrt_s = (s as f64).sqrt();
            let ux = gx as f64 / sqrt_s;
            let uy = gy as f64 / sqrt_s;
            // Vote on both sides of the edge (dark–light polarity varies
            // between liquid/wall and wall/plate transitions).
            for &r in radii.iter() {
                for sign in [-1.0, 1.0] {
                    let cx = x as f64 + sign * r * ux;
                    let cy = y as f64 + sign * r * uy;
                    if cx >= 0.0 && cy >= 0.0 && (cx as usize) < w && (cy as usize) < h {
                        acc[cy as usize * w + cx as usize] += 1;
                    }
                }
            }
        }
    }

    // Blur the accumulator lightly (3×3 box) so near-miss votes pool.
    // Separable two-pass form: horizontal run sums, then vertical — u32
    // adds are exact in any association, so the pooled plane is identical
    // to the direct 9-tap window.
    let hsum = &mut scratch.hsum;
    hsum.clear();
    hsum.resize(w * h, 0);
    for y in 0..h {
        let row = &acc[y * w..(y + 1) * w];
        let out = &mut hsum[y * w..(y + 1) * w];
        for x in 1..w - 1 {
            out[x] = row[x - 1] + row[x] + row[x + 1];
        }
    }
    let pooled = &mut scratch.pooled;
    pooled.clear();
    pooled.resize(w * h, 0);
    for y in 1..h - 1 {
        let (above, row, below) =
            (&hsum[(y - 1) * w..y * w], &hsum[y * w..(y + 1) * w], &hsum[(y + 1) * w..(y + 2) * w]);
        let out = &mut pooled[y * w..(y + 1) * w];
        for x in 1..w - 1 {
            out[x] = above[x] + row[x] + below[x];
        }
    }

    // Peak pick with NMS. The vote ceiling for a perfect circle is roughly
    // its circumference (one vote per edge pixel per matching radius),
    // pooled over the 3×3 window and the radius band.
    let ceiling = 2.0 * std::f64::consts::PI * r_mid * radii.len() as f64;
    let threshold = (params.vote_fraction * ceiling) as u32;
    let peaks = &mut scratch.peaks;
    peaks.clear();
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let v = pooled[y * w + x];
            if v >= threshold.max(1) {
                peaks.push((v, x, y));
            }
        }
    }
    peaks.sort_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)).then(a.1.cmp(&b.1)));

    let mut out: Vec<Circle> = Vec::new();
    let min_d2 = params.min_center_dist * params.min_center_dist;
    for &(votes, x, y) in peaks.iter() {
        if out.len() >= params.max_circles {
            break;
        }
        let (xf, yf) = (x as f64, y as f64);
        if out.iter().any(|c| {
            let dx = c.cx - xf;
            let dy = c.cy - yf;
            dx * dx + dy * dy < min_d2
        }) {
            continue;
        }
        out.push(Circle { cx: xf, cy: yf, r: r_mid, votes });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw::{fill_circle, stroke_circle};
    use sdl_color::Rgb8;

    fn params() -> HoughParams {
        HoughParams { r_min: 9.0, r_max: 13.0, ..HoughParams::default() }
    }

    #[test]
    fn finds_a_single_strong_circle() {
        let mut img = ImageRgb8::new(100, 100, Rgb8::new(200, 200, 200));
        fill_circle(&mut img, 50.0, 50.0, 11.0, Rgb8::new(30, 30, 120));
        let found = hough_circles(&img, &params());
        assert_eq!(found.len(), 1, "found {found:?}");
        assert!((found[0].cx - 50.0).abs() <= 2.0);
        assert!((found[0].cy - 50.0).abs() <= 2.0);
    }

    #[test]
    fn finds_a_grid_of_circles() {
        let mut img = ImageRgb8::new(300, 200, Rgb8::new(210, 210, 210));
        let mut expected = Vec::new();
        for row in 0..3 {
            for col in 0..5 {
                let cx = 50.0 + col as f64 * 50.0;
                let cy = 40.0 + row as f64 * 55.0;
                stroke_circle(&mut img, cx, cy, 11.0, 2.0, Rgb8::new(40, 40, 40));
                fill_circle(&mut img, cx, cy, 10.0, Rgb8::new(90, 60, 140));
                expected.push((cx, cy));
            }
        }
        let found = hough_circles(&img, &params());
        assert_eq!(found.len(), expected.len(), "found {}", found.len());
        for (cx, cy) in expected {
            assert!(
                found.iter().any(|c| (c.cx - cx).abs() <= 2.5 && (c.cy - cy).abs() <= 2.5),
                "missing circle at ({cx},{cy})"
            );
        }
    }

    #[test]
    fn low_contrast_circle_is_missed() {
        // The false-negative mode the paper's grid alignment compensates for.
        let mut img = ImageRgb8::new(100, 100, Rgb8::new(200, 200, 200));
        fill_circle(&mut img, 50.0, 50.0, 11.0, Rgb8::new(212, 212, 212));
        let found = hough_circles(&img, &params());
        assert!(found.is_empty(), "near-invisible circle should be missed: {found:?}");
    }

    #[test]
    fn blank_image_yields_nothing() {
        let img = ImageRgb8::new(64, 64, Rgb8::new(128, 128, 128));
        assert!(hough_circles(&img, &params()).is_empty());
    }

    #[test]
    fn nms_respects_min_distance() {
        let mut img = ImageRgb8::new(100, 100, Rgb8::new(220, 220, 220));
        fill_circle(&mut img, 48.0, 50.0, 11.0, Rgb8::new(20, 20, 20));
        let found = hough_circles(&img, &params());
        // One physical circle must never be reported twice.
        assert_eq!(found.len(), 1, "{found:?}");
    }
}
