//! The frozen pre-optimization renderer — the runnable baseline.
//!
//! This is the sequential-RNG measurement renderer exactly as it stood
//! before the counter-based rework (the `RefGp` precedent from the solver
//! optimization PR): one RNG stream drawn pixel by pixel, per-pixel
//! Box–Muller with the sine variate discarded, a per-pixel
//! `linear_to_srgb` and `round`, and per-pixel rectangle re-testing in
//! `material_at`. It is the `Fidelity::Full` render path, the "before"
//! arm of the `hotpath` bench, and the behavior the pre-refactor golden
//! campaign fingerprints pin — do not optimize it.

use crate::aruco::cell_is_white;
use crate::image::ImageRgb8;
use crate::render::{
    PlateScene, BENCH, EMPTY_WELL, MARKER_BLACK, MARKER_WHITE, PLATE_BODY, WALL_MM, WELL_WALL,
};
use rand::Rng;
use sdl_color::{linear_to_srgb, LinRgb, Rgb8};

/// Minimal normal sampler (Box–Muller) so we do not need an extra crate.
mod rand_distr_normal {
    use rand::Rng;

    /// One standard-normal draw.
    pub fn sample_normal(rng: &mut impl Rng) -> f64 {
        // Box–Muller; u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

use rand_distr_normal::sample_normal;

/// Render the scene to an 8-bit frame through the frozen reference path.
pub fn render_reference(scene: &PlateScene, rng: &mut impl Rng) -> ImageRgb8 {
    let mut img = ImageRgb8::new(scene.camera.width_px, scene.camera.height_px, Rgb8::default());
    render_reference_into(scene, rng, &mut img);
    img
}

/// [`render_reference`] into an existing frame buffer (resized as needed).
/// Every pixel is overwritten and the RNG is consumed identically, so the
/// frame is bit-identical to a freshly allocated render.
pub fn render_reference_into(scene: &PlateScene, rng: &mut impl Rng, img: &mut ImageRgb8) {
    let cam = &scene.camera;
    let w = cam.width_px;
    let h = cam.height_px;
    if img.width() != w || img.height() != h {
        img.reset(w, h, Rgb8::default());
    }
    let cx = w as f64 / 2.0 + scene.pose.dx_px;
    let cy = h as f64 / 2.0 + scene.pose.dy_px;
    let s = cam.px_per_mm;
    let theta = scene.pose.rot_deg.to_radians();
    let (sin_t, cos_t) = theta.sin_cos();
    let corner_d2 = {
        let dx = w as f64 / 2.0;
        let dy = h as f64 / 2.0;
        dx * dx + dy * dy
    };

    for py in 0..h {
        for px in 0..w {
            // Inverse map pixel -> scene mm (rotate then unscale).
            let rx = px as f64 + 0.5 - cx;
            let ry = py as f64 + 0.5 - cy;
            let mm_x = (rx * cos_t + ry * sin_t) / s + cam.look_at_mm.0;
            let mm_y = (-rx * sin_t + ry * cos_t) / s + cam.look_at_mm.1;
            let base = material_at(scene, mm_x, mm_y);

            // Ring-light vignette (quadratic falloff from frame center).
            let d2 = rx * rx + ry * ry;
            let gain = scene.lighting.gain * (1.0 - scene.lighting.vignette * d2 / corner_d2);

            let noisy = LinRgb::new(
                base.r * gain + scene.lighting.noise_sigma * sample_normal(rng),
                base.g * gain + scene.lighting.noise_sigma * sample_normal(rng),
                base.b * gain + scene.lighting.noise_sigma * sample_normal(rng),
            )
            .clamped();
            img.put(
                px as i64,
                py as i64,
                Rgb8::new(
                    (linear_to_srgb(noisy.r) * 255.0).round() as u8,
                    (linear_to_srgb(noisy.g) * 255.0).round() as u8,
                    (linear_to_srgb(noisy.b) * 255.0).round() as u8,
                ),
            );
        }
    }
}

/// The material color at a scene point (plate-local mm coordinates).
/// Crate-visible so the `SceneIndex` equivalence test compares against the
/// actual frozen geometry rather than a copy.
pub(crate) fn material_at(scene: &PlateScene, x: f64, y: f64) -> LinRgb {
    // Marker backing card (one-cell quiet zone) and cells.
    let mk = &scene.marker;
    let cell = mk.size_mm / 6.0;
    let bx = mk.offset_x_mm - cell;
    let by = mk.offset_y_mm - cell;
    let bsize = mk.size_mm + 2.0 * cell;
    if x >= bx && x < bx + bsize && y >= by && y < by + bsize {
        let ix = x - mk.offset_x_mm;
        let iy = y - mk.offset_y_mm;
        if ix >= 0.0 && ix < mk.size_mm && iy >= 0.0 && iy < mk.size_mm {
            let col = (ix / cell) as usize;
            let row = (iy / cell) as usize;
            return if cell_is_white(scene.marker_id, row.min(5), col.min(5)) {
                MARKER_WHITE
            } else {
                MARKER_BLACK
            };
        }
        return MARKER_WHITE; // quiet zone
    }

    // Plate.
    let p = &scene.plate;
    if x >= 0.0 && x < p.width_mm && y >= 0.0 && y < p.height_mm {
        // Nearest well.
        let col_f = (x - p.a1_x_mm) / p.pitch_mm;
        let row_f = (y - p.a1_y_mm) / p.pitch_mm;
        let col = col_f.round().clamp(0.0, (p.cols - 1) as f64) as usize;
        let row = row_f.round().clamp(0.0, (p.rows - 1) as f64) as usize;
        let (wx, wy) = p.well_center_mm(row, col);
        let dx = x - wx;
        let dy = y - wy;
        let d = (dx * dx + dy * dy).sqrt();
        let idx = row * p.cols + col;
        match scene.well_colors.get(idx).copied().flatten() {
            Some(liquid) => {
                if d <= p.well_radius_mm {
                    return liquid;
                }
                if d <= p.well_radius_mm + WALL_MM {
                    return WELL_WALL;
                }
            }
            None => {
                if d <= p.well_radius_mm {
                    return EMPTY_WELL;
                }
            }
        }
        return PLATE_BODY;
    }

    BENCH
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_render_is_seed_reproducible() {
        let scene = PlateScene::empty_plate();
        let a = render_reference(&scene, &mut StdRng::seed_from_u64(1));
        let b = render_reference(&scene, &mut StdRng::seed_from_u64(1));
        let c = render_reference(&scene, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn reference_into_recycled_buffer_is_bit_identical() {
        let scene = PlateScene::empty_plate();
        let fresh = render_reference(&scene, &mut StdRng::seed_from_u64(5));
        let mut buf = ImageRgb8::new(3, 2, Rgb8::new(9, 9, 9));
        render_reference_into(&scene, &mut StdRng::seed_from_u64(5), &mut buf);
        assert_eq!(buf, fresh);
    }
}
