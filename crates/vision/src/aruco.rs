//! ArUco-style fiducial markers: generation and detection.
//!
//! The rig locates the plate via an ArUco marker (paper §2.4, citing
//! Garrido-Jurado et al.). This module implements a compatible scheme from
//! scratch: a deterministic 4×4-bit dictionary with guaranteed Hamming
//! separation under rotation, a renderer, and a detector based on
//! thresholding, connected components and 6×6 cell sampling.

use crate::image::ImageRgb8;
use sdl_color::Rgb8;
use std::sync::OnceLock;

/// Number of codes in the built-in dictionary.
pub const DICT_SIZE: usize = 8;
/// Minimum Hamming distance enforced between any two dictionary codes under
/// any relative rotation (and between distinct rotations of one code).
pub const MIN_HAMMING: u32 = 5;

/// Rotate a 4×4 bit pattern 90° clockwise.
fn rot90(code: u16) -> u16 {
    let mut out = 0u16;
    for r in 0..4 {
        for c in 0..4 {
            // new[r][c] = old[3-c][r]
            if code & (1 << ((3 - c) * 4 + r)) != 0 {
                out |= 1 << (r * 4 + c);
            }
        }
    }
    out
}

/// All four rotations of a code.
fn rotations(code: u16) -> [u16; 4] {
    let r1 = rot90(code);
    let r2 = rot90(r1);
    let r3 = rot90(r2);
    [code, r1, r2, r3]
}

fn hamming(a: u16, b: u16) -> u32 {
    (a ^ b).count_ones()
}

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The marker dictionary: generated greedily and deterministically so the
/// renderer and detector always agree, with [`MIN_HAMMING`] separation
/// between all rotations of all codes (making orientation unambiguous).
pub fn dictionary() -> &'static [u16; DICT_SIZE] {
    static DICT: OnceLock<[u16; DICT_SIZE]> = OnceLock::new();
    DICT.get_or_init(|| {
        let mut codes: Vec<u16> = Vec::new();
        let mut state = 0x5eed_c0de_u64;
        while codes.len() < DICT_SIZE {
            let cand = (splitmix(&mut state) & 0xffff) as u16;
            let cand_rots = rotations(cand);
            // Self-distance: all rotations distinct enough to identify
            // orientation.
            let self_ok = (1..4).all(|i| hamming(cand_rots[0], cand_rots[i]) >= MIN_HAMMING);
            let cross_ok = codes.iter().all(|&existing| {
                rotations(existing)
                    .iter()
                    .all(|&er| cand_rots.iter().all(|&cr| hamming(er, cr) >= MIN_HAMMING))
            });
            if self_ok && cross_ok {
                codes.push(cand);
            }
        }
        codes.try_into().expect("exact dictionary size")
    })
}

/// Is cell (row, col) of the 6×6 marker grid white for marker `id`?
/// Border cells are always black; inner 4×4 cells carry the code bits
/// (bit set = white).
pub fn cell_is_white(id: usize, row: usize, col: usize) -> bool {
    if row == 0 || row == 5 || col == 0 || col == 5 {
        return false;
    }
    let code = dictionary()[id];
    code & (1 << ((row - 1) * 4 + (col - 1))) != 0
}

/// Render marker `id` into a `cells_px`-per-cell image (with a one-cell white
/// quiet zone), for documentation and tests.
pub fn render_marker(id: usize, cell_px: usize) -> ImageRgb8 {
    let size = 8 * cell_px; // 6 cells + quiet zone on each side
    let mut img = ImageRgb8::new(size, size, Rgb8::new(255, 255, 255));
    for row in 0..6 {
        for col in 0..6 {
            let c = if cell_is_white(id, row, col) {
                Rgb8::new(255, 255, 255)
            } else {
                Rgb8::new(0, 0, 0)
            };
            crate::draw::fill_rect(
                &mut img,
                ((col + 1) * cell_px) as i64,
                ((row + 1) * cell_px) as i64,
                cell_px as i64,
                cell_px as i64,
                c,
            );
        }
    }
    img
}

/// A detected marker.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkerDetection {
    /// Dictionary index.
    pub id: usize,
    /// Marker center, px.
    pub center: (f64, f64),
    /// Side length, px (mean of the bounding box sides).
    pub size_px: f64,
    /// Number of 90° clockwise rotations applied to match the dictionary.
    pub rotation: usize,
}

/// Detector tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct ArucoParams {
    /// Luma threshold below which a pixel counts as marker-black.
    pub black_threshold: u8,
    /// Smallest plausible marker component area, px².
    pub min_area: usize,
    /// Largest plausible marker component area, px².
    pub max_area: usize,
    /// Maximum Hamming distance accepted when matching codes.
    pub max_code_errors: u32,
}

impl Default for ArucoParams {
    fn default() -> Self {
        ArucoParams { black_threshold: 90, min_area: 300, max_area: 40_000, max_code_errors: 1 }
    }
}

/// Reusable component-labelling buffers for [`detect_markers_with`].
#[derive(Debug, Clone, Default)]
pub struct ArucoScratch {
    visited: Vec<bool>,
    spans: Vec<(usize, usize, usize)>,
}

/// Find markers in the frame. Returns detections sorted by component size
/// (largest first).
pub fn detect_markers(img: &ImageRgb8, params: &ArucoParams) -> Vec<MarkerDetection> {
    detect_markers_with(img, params, &img.to_luma(), &mut ArucoScratch::default())
}

/// [`detect_markers`] over a precomputed luma plane and caller-owned
/// scratch buffers; results are identical to a fresh-allocation run.
pub fn detect_markers_with(
    img: &ImageRgb8,
    params: &ArucoParams,
    luma: &[u8],
    scratch: &mut ArucoScratch,
) -> Vec<MarkerDetection> {
    let w = img.width();
    let h = img.height();
    assert_eq!(luma.len(), w * h, "luma plane must match the frame");
    let is_black = |x: usize, y: usize| luma[y * w + x] < params.black_threshold;

    let visited = &mut scratch.visited;
    visited.clear();
    visited.resize(w * h, false);
    let spans = &mut scratch.spans;
    let mut detections = Vec::new();

    for sy in 0..h {
        for sx in 0..w {
            if visited[sy * w + sx] || !is_black(sx, sy) {
                continue;
            }
            // Scanline flood fill over the black component: claim maximal
            // horizontal runs and enqueue one span per run instead of one
            // queue entry per pixel (the dark bench is one huge component,
            // so this is the detector's scan cost). The component — and
            // hence area and bounding box — is identical to a per-pixel
            // BFS; only the traversal order differs, which nothing
            // downstream observes.
            spans.clear();
            let (mut minx, mut maxx, mut miny, mut maxy) = (sx, sx, sy, sy);
            let mut area = 0usize;
            let claim_span = |x: usize, y: usize, visited: &mut Vec<bool>| {
                let row = y * w;
                let mut xl = x;
                while xl > 0 && !visited[row + xl - 1] && is_black(xl - 1, y) {
                    xl -= 1;
                }
                let mut xr = x;
                while xr + 1 < w && !visited[row + xr + 1] && is_black(xr + 1, y) {
                    xr += 1;
                }
                for v in &mut visited[row + xl..=row + xr] {
                    *v = true;
                }
                (xl, xr)
            };
            let (xl, xr) = claim_span(sx, sy, visited);
            area += xr - xl + 1;
            minx = minx.min(xl);
            maxx = maxx.max(xr);
            spans.push((xl, xr, sy));
            let mut qi = 0;
            while qi < spans.len() {
                let (xl, xr, y) = spans[qi];
                qi += 1;
                for ny in [y.wrapping_sub(1), y + 1] {
                    if ny >= h {
                        continue;
                    }
                    let mut x = xl;
                    while x <= xr {
                        if !visited[ny * w + x] && is_black(x, ny) {
                            let (nl, nr) = claim_span(x, ny, visited);
                            area += nr - nl + 1;
                            minx = minx.min(nl);
                            maxx = maxx.max(nr);
                            miny = miny.min(ny);
                            maxy = maxy.max(ny);
                            spans.push((nl, nr, ny));
                            x = nr + 1;
                        } else {
                            x += 1;
                        }
                    }
                }
            }
            if area < params.min_area || area > params.max_area {
                continue;
            }
            let bw = (maxx - minx + 1) as f64;
            let bh = (maxy - miny + 1) as f64;
            let aspect = bw / bh;
            if !(0.75..=1.33).contains(&aspect) {
                continue;
            }
            if let Some(det) = decode_candidate(img, params, minx, miny, bw, bh) {
                detections.push((area, det));
            }
        }
    }
    detections.sort_by_key(|(area, _)| std::cmp::Reverse(*area));
    detections.into_iter().map(|(_, d)| d).collect()
}

/// Sample the 6×6 grid inside a candidate bounding box and match the code.
fn decode_candidate(
    img: &ImageRgb8,
    params: &ArucoParams,
    minx: usize,
    miny: usize,
    bw: f64,
    bh: f64,
) -> Option<MarkerDetection> {
    let cell_w = bw / 6.0;
    let cell_h = bh / 6.0;
    let mut bits = [[false; 6]; 6];
    for (row, bits_row) in bits.iter_mut().enumerate() {
        for (col, bit) in bits_row.iter_mut().enumerate() {
            let cx = minx as f64 + (col as f64 + 0.5) * cell_w;
            let cy = miny as f64 + (row as f64 + 0.5) * cell_h;
            // Average a small patch at the cell center for noise immunity.
            let (mean, n) = img.mean_disk(cx, cy, (cell_w.min(cell_h) * 0.3).max(1.0));
            if n == 0 {
                return None;
            }
            let l = (77 * mean.r as u32 + 150 * mean.g as u32 + 29 * mean.b as u32) >> 8;
            *bit = l as u8 >= params.black_threshold;
        }
    }
    // Border must be black.
    let border_white: usize = (0..6)
        .flat_map(|i| [(0usize, i), (5, i), (i, 0), (i, 5)])
        .filter(|&(r, c)| bits[r][c])
        .count();
    if border_white > 2 {
        return None;
    }
    // Pack inner bits.
    let mut code = 0u16;
    for r in 0..4 {
        for c in 0..4 {
            if bits[r + 1][c + 1] {
                code |= 1 << (r * 4 + c);
            }
        }
    }
    // Match against the dictionary under rotation.
    let mut best: Option<(usize, usize, u32)> = None;
    for (id, &dict_code) in dictionary().iter().enumerate() {
        for (rot, &rotated) in rotations(dict_code).iter().enumerate() {
            let d = hamming(code, rotated);
            if best.is_none_or(|(_, _, bd)| d < bd) {
                best = Some((id, rot, d));
            }
        }
    }
    let (id, rotation, dist) = best?;
    if dist > params.max_code_errors {
        return None;
    }
    Some(MarkerDetection {
        id,
        center: (minx as f64 + bw / 2.0, miny as f64 + bh / 2.0),
        size_px: (bw + bh) / 2.0,
        rotation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw::fill_rect;

    #[test]
    fn dictionary_is_deterministic_and_separated() {
        let d1 = dictionary();
        let d2 = dictionary();
        assert_eq!(d1, d2);
        for (i, &a) in d1.iter().enumerate() {
            let ra = rotations(a);
            for k in 1..4 {
                assert!(hamming(ra[0], ra[k]) >= MIN_HAMMING, "code {i} self-rotation");
            }
            for (j, &b) in d1.iter().enumerate().skip(i + 1) {
                for &x in &rotations(a) {
                    for &y in &rotations(b) {
                        assert!(hamming(x, y) >= MIN_HAMMING, "codes {i}/{j}");
                    }
                }
            }
        }
    }

    #[test]
    fn rot90_has_period_four() {
        for &code in dictionary() {
            assert_eq!(rot90(rot90(rot90(rot90(code)))), code);
        }
    }

    #[test]
    fn rendered_marker_is_detected() {
        for id in 0..DICT_SIZE {
            let marker = render_marker(id, 10);
            // Paste into a larger gray frame.
            let mut frame = ImageRgb8::new(200, 160, Rgb8::new(120, 120, 120));
            fill_rect(&mut frame, 40, 30, 80, 80, Rgb8::new(255, 255, 255));
            for y in 0..marker.height() {
                for x in 0..marker.width() {
                    frame.put(44 + x as i64, 34 + y as i64, marker.pixel(x, y));
                }
            }
            let found = detect_markers(&frame, &ArucoParams::default());
            assert_eq!(found.len(), 1, "marker {id} not found");
            assert_eq!(found[0].id, id);
            assert_eq!(found[0].rotation, 0);
            // 6 cells × 10 px: center at 44+10+30, 34+10+30.
            assert!((found[0].center.0 - 84.0).abs() < 2.0);
            assert!((found[0].center.1 - 74.0).abs() < 2.0);
            assert!((found[0].size_px - 60.0).abs() < 3.0);
        }
    }

    #[test]
    fn rotated_marker_reports_rotation() {
        let marker = render_marker(3, 10);
        // Rotate the marker image 90° clockwise before pasting.
        let mut frame = ImageRgb8::new(200, 160, Rgb8::new(255, 255, 255));
        let n = marker.width();
        for y in 0..n {
            for x in 0..n {
                let p = marker.pixel(x, y);
                // (x,y) -> (n-1-y, x) is a 90° clockwise image rotation.
                frame.put(40 + (n - 1 - y) as i64, 40 + x as i64, p);
            }
        }
        let found = detect_markers(&frame, &ArucoParams::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, 3);
        assert_ne!(found[0].rotation, 0);
    }

    #[test]
    fn plain_black_square_is_rejected() {
        let mut frame = ImageRgb8::new(200, 160, Rgb8::new(255, 255, 255));
        fill_rect(&mut frame, 50, 40, 60, 60, Rgb8::new(0, 0, 0));
        let found = detect_markers(&frame, &ArucoParams::default());
        assert!(found.is_empty(), "solid square must not decode");
    }

    #[test]
    fn no_marker_in_noise_free_background() {
        let frame = ImageRgb8::new(100, 100, Rgb8::new(200, 200, 200));
        assert!(detect_markers(&frame, &ArucoParams::default()).is_empty());
    }
}
