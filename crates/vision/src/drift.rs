//! Deterministic illumination drift — the stress axis for robustness
//! scenarios.
//!
//! Real rigs do not sit under a constant illuminant: ring-light warm-up,
//! ambient light and auto-exposure all move the effective white balance and
//! sensor gain between captures. [`DriftSpec`] models this as per-channel
//! illumination gains that wander smoothly from frame to frame.
//!
//! # Determinism contract
//!
//! The gains are a **pure function of `(spec, seed, frame index)`**: anchor
//! values are drawn from the counter-based splitmix hash ([`rand::counter`],
//! the same primitive as the renderer's noise field) at window boundaries
//! and linearly interpolated between them. No RNG stream is consumed, so
//! enabling drift never perturbs pose jitter, sensor noise, or any other
//! draw — and the same scenario seed always reproduces the same drift
//! trajectory regardless of thread count, sharding or resume.

use rand::counter::{hash, unit_f64};

/// Domain-separation tag so drift draws can never collide with the
/// renderer's per-pixel noise counters even under equal seeds.
const DRIFT_TAG: u64 = 0xD21F_7A3B_9E4C_0815;

/// Default anchor spacing, in frames.
const DEFAULT_PERIOD: u32 = 4;

/// An illumination-drift profile: white-balance wander amplitude, shared
/// gain wander amplitude, and the anchor period of the random walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSpec {
    /// Per-channel white-balance amplitude: each channel's gain wanders
    /// within `1 ± wb`.
    pub wb: f64,
    /// Shared sensor-gain amplitude: overall exposure wanders within
    /// `1 ± gain` (multiplied on top of the white-balance term).
    pub gain: f64,
    /// Frames between random-walk anchors; gains interpolate linearly
    /// between consecutive anchors.
    pub period: u32,
}

impl DriftSpec {
    /// Preset: white-balance drift only (`wb`).
    pub const WB: DriftSpec = DriftSpec { wb: 0.06, gain: 0.0, period: DEFAULT_PERIOD };
    /// Preset: sensor-gain drift only (`gain`).
    pub const GAIN: DriftSpec = DriftSpec { wb: 0.0, gain: 0.12, period: DEFAULT_PERIOD };
    /// Preset: both axes at once (`wb+gain`).
    pub const WB_GAIN: DriftSpec = DriftSpec { wb: 0.06, gain: 0.12, period: DEFAULT_PERIOD };

    /// Per-channel illumination gains for frame `frame` under `seed`.
    ///
    /// A pure function — see the module docs for the determinism contract.
    /// With both amplitudes zero the result is exactly `[1.0; 3]`.
    pub fn channel_gain(&self, seed: u64, frame: u64) -> [f64; 3] {
        let period = self.period.max(1) as u64;
        let window = frame / period;
        let frac = (frame % period) as f64 / period as f64;
        // Anchor draw in [-1, 1) for lane `c` (0–2 per-channel, 3 shared).
        let anchor = |w: u64, lane: u64| 2.0 * unit_f64(hash(seed ^ DRIFT_TAG, w * 4 + lane)) - 1.0;
        let walk = |lane: u64| {
            let d0 = anchor(window, lane);
            let d1 = anchor(window + 1, lane);
            d0 + (d1 - d0) * frac
        };
        let shared = 1.0 + self.gain * walk(3);
        [
            ((1.0 + self.wb * walk(0)) * shared).max(0.0),
            ((1.0 + self.wb * walk(1)) * shared).max(0.0),
            ((1.0 + self.wb * walk(2)) * shared).max(0.0),
        ]
    }

    /// Canonical machine-readable name: a preset name when the spec matches
    /// one, else the full `wb=..,gain=..,period=..` key-value form. Always
    /// reparses to an equal spec via [`DriftSpec::parse`].
    pub fn name(&self) -> String {
        if *self == DriftSpec::WB {
            "wb".to_string()
        } else if *self == DriftSpec::GAIN {
            "gain".to_string()
        } else if *self == DriftSpec::WB_GAIN {
            "wb+gain".to_string()
        } else {
            format!("wb={},gain={},period={}", self.wb, self.gain, self.period)
        }
    }

    /// Parse a drift profile: a preset name (`wb`, `gain`, `wb+gain`) or a
    /// comma-separated key-value list (`wb=0.08,gain=0.2,period=8`; missing
    /// keys default to zero amplitude and the standard period).
    pub fn parse(s: &str) -> Option<DriftSpec> {
        match s.trim() {
            "wb" => return Some(DriftSpec::WB),
            "gain" => return Some(DriftSpec::GAIN),
            "wb+gain" | "gain+wb" => return Some(DriftSpec::WB_GAIN),
            _ => {}
        }
        let mut spec = DriftSpec { wb: 0.0, gain: 0.0, period: DEFAULT_PERIOD };
        let mut any = false;
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part.split_once('=')?;
            match k.trim() {
                "wb" => spec.wb = v.trim().parse().ok()?,
                "gain" => spec.gain = v.trim().parse().ok()?,
                "period" => spec.period = v.trim().parse::<u32>().ok().filter(|&p| p >= 1)?,
                _ => return None,
            }
            any = true;
        }
        let sane = |x: f64| x.is_finite() && (0.0..=1.0).contains(&x);
        (any && sane(spec.wb) && sane(spec.gain)).then_some(spec)
    }

    /// The valid preset names, for error messages.
    pub fn valid_names() -> &'static str {
        "wb, gain, wb+gain, or wb=..,gain=..,period=.."
    }
}

impl std::fmt::Display for DriftSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_amplitudes_are_the_exact_identity() {
        let spec = DriftSpec { wb: 0.0, gain: 0.0, period: 4 };
        for frame in [0, 1, 7, 1000] {
            assert_eq!(spec.channel_gain(42, frame), [1.0, 1.0, 1.0]);
        }
    }

    #[test]
    fn gains_are_a_pure_function_of_seed_and_frame() {
        let spec = DriftSpec::WB_GAIN;
        for frame in 0..32 {
            assert_eq!(spec.channel_gain(9, frame), spec.channel_gain(9, frame));
        }
        assert_ne!(spec.channel_gain(9, 3), spec.channel_gain(10, 3), "seed must matter");
    }

    #[test]
    fn gains_stay_inside_the_advertised_band() {
        let spec = DriftSpec::WB_GAIN;
        let lo = (1.0 - spec.wb) * (1.0 - spec.gain) - 1e-12;
        let hi = (1.0 + spec.wb) * (1.0 + spec.gain) + 1e-12;
        for frame in 0..256 {
            for g in spec.channel_gain(7, frame) {
                assert!((lo..=hi).contains(&g), "frame {frame}: gain {g} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn drift_moves_between_anchor_windows() {
        let spec = DriftSpec::WB;
        let a = spec.channel_gain(1, 0);
        let b = spec.channel_gain(1, spec.period as u64 * 3);
        assert_ne!(a, b, "gains must wander across windows");
    }

    #[test]
    fn interpolation_is_smooth_within_a_window() {
        // Per-frame steps are at most the window swing over the period.
        let spec = DriftSpec::WB_GAIN;
        let max_step =
            2.0 * (spec.wb + spec.gain + spec.wb * spec.gain) / spec.period as f64 + 1e-12;
        for frame in 0..64u64 {
            let now = spec.channel_gain(3, frame);
            let next = spec.channel_gain(3, frame + 1);
            for c in 0..3 {
                let step = (next[c] - now[c]).abs();
                assert!(step <= max_step, "frame {frame} ch {c}: step {step} > {max_step}");
            }
        }
    }

    #[test]
    fn wb_only_preserves_no_shared_gain() {
        // The shared lane is off for the wb preset: channels move
        // independently, so they should not all share one multiplier.
        let g = DriftSpec::WB.channel_gain(5, 2);
        assert!(g[0] != g[1] || g[1] != g[2], "channels drift independently: {g:?}");
    }

    #[test]
    fn names_roundtrip() {
        for spec in [
            DriftSpec::WB,
            DriftSpec::GAIN,
            DriftSpec::WB_GAIN,
            DriftSpec { wb: 0.03, gain: 0.25, period: 8 },
            DriftSpec { wb: 0.0, gain: 0.5, period: 1 },
        ] {
            let name = spec.name();
            assert_eq!(DriftSpec::parse(&name), Some(spec), "{name}");
        }
        assert_eq!(DriftSpec::parse("wb").unwrap().name(), "wb");
        assert_eq!(DriftSpec::parse("gain+wb"), Some(DriftSpec::WB_GAIN));
        assert_eq!(DriftSpec::parse("wb=0.1"), Some(DriftSpec { wb: 0.1, gain: 0.0, period: 4 }));
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in ["", "vibes", "wb=", "wb=-0.1", "gain=2.0", "period=0", "wb=nan", "wb=0.1;"] {
            assert_eq!(DriftSpec::parse(bad), None, "{bad:?} should not parse");
        }
    }
}
