//! Physical geometry of the imaged scene.
//!
//! The camera module photographs a standard ANSI/SLAS 96-well microplate
//! "stationed at a known distance from an ArUco marker" (paper §2.4). These
//! constants are rig knowledge shared by the renderer and the detector —
//! they describe the *nominal* scene; the actual frame adds pose jitter that
//! the detector must undo.

/// Geometry of a 96-well microplate, in millimeters (ANSI/SLAS 1-2004).
#[derive(Debug, Clone, PartialEq)]
pub struct PlateLayout {
    /// Number of well rows (A–H).
    pub rows: usize,
    /// Number of well columns (1–12).
    pub cols: usize,
    /// Center-to-center well pitch, mm.
    pub pitch_mm: f64,
    /// Center of well A1 from the plate's top-left corner, mm (x).
    pub a1_x_mm: f64,
    /// Center of well A1 from the plate's top-left corner, mm (y).
    pub a1_y_mm: f64,
    /// Well opening radius, mm.
    pub well_radius_mm: f64,
    /// Plate footprint width, mm.
    pub width_mm: f64,
    /// Plate footprint height, mm.
    pub height_mm: f64,
}

impl Default for PlateLayout {
    fn default() -> Self {
        PlateLayout {
            rows: 8,
            cols: 12,
            pitch_mm: 9.0,
            a1_x_mm: 14.38,
            a1_y_mm: 11.24,
            well_radius_mm: 3.43,
            width_mm: 127.76,
            height_mm: 85.48,
        }
    }
}

impl PlateLayout {
    /// Number of wells.
    pub fn well_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Well center in plate-local mm coordinates.
    pub fn well_center_mm(&self, row: usize, col: usize) -> (f64, f64) {
        (self.a1_x_mm + col as f64 * self.pitch_mm, self.a1_y_mm + row as f64 * self.pitch_mm)
    }
}

/// Placement of the fiducial marker relative to the plate.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkerLayout {
    /// Side length of the printed marker, mm.
    pub size_mm: f64,
    /// Marker top-left x relative to the plate's top-left corner, mm.
    pub offset_x_mm: f64,
    /// Marker top-left y relative to the plate's top-left corner, mm.
    pub offset_y_mm: f64,
}

impl Default for MarkerLayout {
    fn default() -> Self {
        MarkerLayout { size_mm: 18.0, offset_x_mm: -28.0, offset_y_mm: 4.0 }
    }
}

/// Nominal camera geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraGeometry {
    /// Frame width, px.
    pub width_px: usize,
    /// Frame height, px.
    pub height_px: usize,
    /// Nominal magnification, px per mm.
    pub px_per_mm: f64,
    /// Scene point (mm, in plate-local coordinates) projected to the frame
    /// center when the pose is unjittered.
    pub look_at_mm: (f64, f64),
}

impl Default for CameraGeometry {
    fn default() -> Self {
        CameraGeometry { width_px: 640, height_px: 480, px_per_mm: 3.4, look_at_mm: (50.0, 43.0) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plate_is_96_wells() {
        let p = PlateLayout::default();
        assert_eq!(p.well_count(), 96);
        let (x, y) = p.well_center_mm(0, 0);
        assert_eq!((x, y), (14.38, 11.24));
        let (x, y) = p.well_center_mm(7, 11);
        assert!((x - (14.38 + 99.0)).abs() < 1e-9);
        assert!((y - (11.24 + 63.0)).abs() < 1e-9);
        // H12 stays inside the plate footprint.
        assert!(x < p.width_mm && y < p.height_mm);
    }

    #[test]
    fn scene_fits_in_frame() {
        let cam = CameraGeometry::default();
        let plate = PlateLayout::default();
        let marker = MarkerLayout::default();
        // Leftmost scene content (marker backing) and rightmost (plate edge)
        // both project inside the frame at nominal pose.
        let left_mm = marker.offset_x_mm - 4.0;
        let right_mm = plate.width_mm + 2.0;
        let to_px =
            |x_mm: f64| (x_mm - cam.look_at_mm.0) * cam.px_per_mm + cam.width_px as f64 / 2.0;
        assert!(to_px(left_mm) > 4.0, "left edge at {}", to_px(left_mm));
        assert!(to_px(right_mm) < cam.width_px as f64 - 4.0, "right edge at {}", to_px(right_mm));
    }
}
