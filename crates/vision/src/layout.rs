//! Physical geometry of the imaged scene.
//!
//! The camera module photographs a standard ANSI/SLAS 96-well microplate
//! "stationed at a known distance from an ArUco marker" (paper §2.4). These
//! constants are rig knowledge shared by the renderer and the detector —
//! they describe the *nominal* scene; the actual frame adds pose jitter that
//! the detector must undo.

/// Geometry of a 96-well microplate, in millimeters (ANSI/SLAS 1-2004).
#[derive(Debug, Clone, PartialEq)]
pub struct PlateLayout {
    /// Number of well rows (A–H).
    pub rows: usize,
    /// Number of well columns (1–12).
    pub cols: usize,
    /// Center-to-center well pitch, mm.
    pub pitch_mm: f64,
    /// Center of well A1 from the plate's top-left corner, mm (x).
    pub a1_x_mm: f64,
    /// Center of well A1 from the plate's top-left corner, mm (y).
    pub a1_y_mm: f64,
    /// Well opening radius, mm.
    pub well_radius_mm: f64,
    /// Plate footprint width, mm.
    pub width_mm: f64,
    /// Plate footprint height, mm.
    pub height_mm: f64,
}

impl Default for PlateLayout {
    fn default() -> Self {
        PlateLayout {
            rows: 8,
            cols: 12,
            pitch_mm: 9.0,
            a1_x_mm: 14.38,
            a1_y_mm: 11.24,
            well_radius_mm: 3.43,
            width_mm: 127.76,
            height_mm: 85.48,
        }
    }
}

impl PlateLayout {
    /// Number of wells.
    pub fn well_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Well center in plate-local mm coordinates.
    pub fn well_center_mm(&self, row: usize, col: usize) -> (f64, f64) {
        (self.a1_x_mm + col as f64 * self.pitch_mm, self.a1_y_mm + row as f64 * self.pitch_mm)
    }
}

/// Placement of the fiducial marker relative to the plate.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkerLayout {
    /// Side length of the printed marker, mm.
    pub size_mm: f64,
    /// Marker top-left x relative to the plate's top-left corner, mm.
    pub offset_x_mm: f64,
    /// Marker top-left y relative to the plate's top-left corner, mm.
    pub offset_y_mm: f64,
}

impl Default for MarkerLayout {
    fn default() -> Self {
        MarkerLayout { size_mm: 18.0, offset_x_mm: -28.0, offset_y_mm: 4.0 }
    }
}

/// Camera fidelity profile: the single axis DriveNetBench-style sweeps
/// tune to trade simulated-measurement cost against image fidelity.
///
/// * [`Fidelity::Full`] — the frozen pre-optimization renderer (sequential
///   RNG, libm transfer curve) at native resolution: bit-identical to the
///   historical measurement path, and the slowest.
/// * [`Fidelity::Fast`] — the counter-based noise field at native
///   resolution (the default): statistically equivalent frames, order- and
///   tile-independent, several times cheaper.
/// * [`Fidelity::Lowres`] — the counter-based path at half resolution
///   (320×240): cheapest; detector accuracy degrades gracefully.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Frozen reference renderer, native resolution.
    Full,
    /// Counter-based renderer, native resolution.
    #[default]
    Fast,
    /// Counter-based renderer, half resolution.
    Lowres,
}

impl Fidelity {
    /// Every profile, in decreasing fidelity order.
    pub const ALL: [Fidelity; 3] = [Fidelity::Full, Fidelity::Fast, Fidelity::Lowres];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Full => "full",
            Fidelity::Fast => "fast",
            Fidelity::Lowres => "lowres",
        }
    }

    /// Parse a profile name (case-insensitive).
    pub fn parse(s: &str) -> Option<Fidelity> {
        Fidelity::ALL.into_iter().find(|f| f.name().eq_ignore_ascii_case(s.trim()))
    }

    /// The valid names, for error messages.
    pub fn valid_names() -> String {
        Fidelity::ALL.map(Fidelity::name).join(", ")
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Nominal camera geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraGeometry {
    /// Frame width, px.
    pub width_px: usize,
    /// Frame height, px.
    pub height_px: usize,
    /// Nominal magnification, px per mm.
    pub px_per_mm: f64,
    /// Scene point (mm, in plate-local coordinates) projected to the frame
    /// center when the pose is unjittered.
    pub look_at_mm: (f64, f64),
    /// Which render path (and resolution class) produces this camera's
    /// frames.
    pub fidelity: Fidelity,
}

impl Default for CameraGeometry {
    fn default() -> Self {
        CameraGeometry {
            width_px: 640,
            height_px: 480,
            px_per_mm: 3.4,
            look_at_mm: (50.0, 43.0),
            fidelity: Fidelity::Fast,
        }
    }
}

impl CameraGeometry {
    /// The geometry a fidelity profile implies: `full` and `fast` image at
    /// the native 640×480, `lowres` halves both resolution and
    /// magnification (the same scene footprint on a quarter of the
    /// pixels).
    pub fn for_fidelity(fidelity: Fidelity) -> CameraGeometry {
        let base = CameraGeometry::default();
        match fidelity {
            Fidelity::Full | Fidelity::Fast => CameraGeometry { fidelity, ..base },
            Fidelity::Lowres => CameraGeometry {
                width_px: base.width_px / 2,
                height_px: base.height_px / 2,
                px_per_mm: base.px_per_mm / 2.0,
                fidelity,
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plate_is_96_wells() {
        let p = PlateLayout::default();
        assert_eq!(p.well_count(), 96);
        let (x, y) = p.well_center_mm(0, 0);
        assert_eq!((x, y), (14.38, 11.24));
        let (x, y) = p.well_center_mm(7, 11);
        assert!((x - (14.38 + 99.0)).abs() < 1e-9);
        assert!((y - (11.24 + 63.0)).abs() < 1e-9);
        // H12 stays inside the plate footprint.
        assert!(x < p.width_mm && y < p.height_mm);
    }

    #[test]
    fn fidelity_parses_and_maps_to_geometry() {
        assert_eq!(Fidelity::parse("full"), Some(Fidelity::Full));
        assert_eq!(Fidelity::parse(" FAST "), Some(Fidelity::Fast));
        assert_eq!(Fidelity::parse("LowRes"), Some(Fidelity::Lowres));
        assert_eq!(Fidelity::parse("hd"), None);
        assert_eq!(Fidelity::default(), Fidelity::Fast);
        for f in Fidelity::ALL {
            assert_eq!(Fidelity::parse(f.name()), Some(f));
            assert!(Fidelity::valid_names().contains(f.name()));
        }
        let full = CameraGeometry::for_fidelity(Fidelity::Full);
        assert_eq!((full.width_px, full.height_px), (640, 480));
        assert_eq!(full.fidelity, Fidelity::Full);
        let low = CameraGeometry::for_fidelity(Fidelity::Lowres);
        assert_eq!((low.width_px, low.height_px), (320, 240));
        assert_eq!(low.px_per_mm, 1.7);
        // Same field of view: the scene footprint in mm is unchanged.
        assert_eq!(low.width_px as f64 / low.px_per_mm, full.width_px as f64 / full.px_per_mm);
    }

    #[test]
    fn scene_fits_in_frame() {
        let cam = CameraGeometry::default();
        let plate = PlateLayout::default();
        let marker = MarkerLayout::default();
        // Leftmost scene content (marker backing) and rightmost (plate edge)
        // both project inside the frame at nominal pose.
        let left_mm = marker.offset_x_mm - 4.0;
        let right_mm = plate.width_mm + 2.0;
        let to_px =
            |x_mm: f64| (x_mm - cam.look_at_mm.0) * cam.px_per_mm + cam.width_px as f64 / 2.0;
        assert!(to_px(left_mm) > 4.0, "left edge at {}", to_px(left_mm));
        assert!(to_px(right_mm) < cam.width_px as f64 - 4.0, "right edge at {}", to_px(right_mm));
    }
}
