//! Synthetic plate-scene renderer — the webcam substitute.
//!
//! Renders what the Logitech camera with its ring light would see: a
//! microplate on a dark bench next to an ArUco marker on white backing,
//! with ring-light vignetting, sensor noise and small pose jitter. The
//! detection pipeline (§2.4) runs unchanged on these frames.
//!
//! # Two render paths
//!
//! The default path ([`Fidelity::Fast`] / [`Fidelity::Lowres`]) derives
//! each pixel's Gaussian noise from `(frame_seed, pixel, channel)` through
//! a counter-based splitmix hash ([`rand::counter`]) instead of one
//! sequential RNG stream. Rendering is therefore embarrassingly parallel:
//! [`render_tiled`] splits the frame into row tiles and produces
//! bit-identical bytes at any tile size and thread count. The per-pixel
//! costs of the old path are gone too — both Box–Muller variates of each
//! uniform pair are consumed, the sRGB encode goes through the
//! [`SrgbQuantizer`] cutpoint table instead of `powf`, and marker/well
//! geometry is hoisted into a per-scene [`SceneIndex`] so the inner loop
//! stops re-testing rectangles.
//!
//! The frozen pre-optimization path ([`Fidelity::Full`]) lives in
//! [`crate::reference`] and remains bit-identical to the historical
//! renderer; [`render`] dispatches on [`CameraGeometry::fidelity`].

use crate::aruco::cell_is_white;
use crate::fastmath::{fast_ln, fast_sincos_2pi};
use crate::image::ImageRgb8;
use crate::layout::{CameraGeometry, Fidelity, MarkerLayout, PlateLayout};
use crate::reference::render_reference_into;
use rand::counter::{hash, unit_f64, unit_f64_open0};
use rand::Rng;
use sdl_color::{LinRgb, Rgb8, SrgbQuantizer};
use std::sync::OnceLock;

/// Camera pose jitter for one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Horizontal translation, px.
    pub dx_px: f64,
    /// Vertical translation, px.
    pub dy_px: f64,
    /// In-plane rotation, degrees.
    pub rot_deg: f64,
}

impl Pose {
    /// The unjittered pose.
    pub const IDENTITY: Pose = Pose { dx_px: 0.0, dy_px: 0.0, rot_deg: 0.0 };

    /// Draw a random small pose ("to account for potential shifting in the
    /// camera position", §2.4).
    pub fn jittered(rng: &mut impl Rng, max_shift_px: f64, max_rot_deg: f64) -> Pose {
        Pose {
            dx_px: rng.gen_range(-max_shift_px..=max_shift_px),
            dy_px: rng.gen_range(-max_shift_px..=max_shift_px),
            rot_deg: rng.gen_range(-max_rot_deg..=max_rot_deg),
        }
    }
}

/// Lighting and sensor model.
#[derive(Debug, Clone, PartialEq)]
pub struct Lighting {
    /// Quadratic vignette strength at the frame corner (0 = flat field).
    pub vignette: f64,
    /// Gaussian noise sigma in linear light (per channel).
    pub noise_sigma: f64,
    /// Global illumination gain.
    pub gain: f64,
    /// Per-channel illumination gains (white balance × sensor gain), the
    /// hook the deterministic drift axes ([`crate::DriftSpec`]) set per
    /// frame. `[1.0; 3]` is bit-exactly the undrifted frame; the frozen
    /// [`Fidelity::Full`] reference path ignores this field.
    pub channel_gain: [f64; 3],
}

impl Default for Lighting {
    fn default() -> Self {
        Lighting { vignette: 0.08, noise_sigma: 0.006, gain: 1.0, channel_gain: [1.0; 3] }
    }
}

/// Everything needed to render one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct PlateScene {
    /// True liquid colors by well index (row-major, A1 = 0); `None` = empty.
    pub well_colors: Vec<Option<LinRgb>>,
    /// Which dictionary marker is printed on the rig.
    pub marker_id: usize,
    /// Frame pose jitter.
    pub pose: Pose,
    /// Lighting model.
    pub lighting: Lighting,
    /// Plate geometry.
    pub plate: PlateLayout,
    /// Marker placement.
    pub marker: MarkerLayout,
    /// Camera geometry.
    pub camera: CameraGeometry,
}

impl PlateScene {
    /// A scene with every well empty.
    pub fn empty_plate() -> PlateScene {
        let plate = PlateLayout::default();
        PlateScene {
            well_colors: vec![None; plate.well_count()],
            marker_id: 0,
            pose: Pose::IDENTITY,
            lighting: Lighting::default(),
            plate,
            marker: MarkerLayout::default(),
            camera: CameraGeometry::default(),
        }
    }

    /// Set one well's liquid color.
    pub fn set_well(&mut self, row: usize, col: usize, color: LinRgb) {
        let idx = row * self.plate.cols + col;
        self.well_colors[idx] = Some(color);
    }
}

// Scene material colors, in linear light.
pub(crate) const BENCH: LinRgb = LinRgb::new(0.022, 0.023, 0.025);
/// Reflectance of the plate body material — rig knowledge usable as a
/// white-balance reference by the detector's flat-field correction.
pub const PLATE_BODY_REFLECTANCE: LinRgb = LinRgb::new(0.62, 0.62, 0.64);
pub(crate) const PLATE_BODY: LinRgb = PLATE_BODY_REFLECTANCE;
pub(crate) const EMPTY_WELL: LinRgb = LinRgb::new(0.75, 0.75, 0.76);
pub(crate) const WELL_WALL: LinRgb = LinRgb::new(0.045, 0.045, 0.048);
pub(crate) const MARKER_WHITE: LinRgb = LinRgb::new(0.92, 0.92, 0.92);
pub(crate) const MARKER_BLACK: LinRgb = LinRgb::new(0.012, 0.012, 0.012);

/// Width of the dark rim drawn around *filled* wells, mm. Empty wells get no
/// rim, which is what makes HoughCircles prone to false negatives on them.
pub(crate) const WALL_MM: f64 = 0.7;

/// Default row-tile height for the counter-based path: tall enough to
/// amortize dispatch, short enough to load-balance across a worker pool.
const DEFAULT_TILE_ROWS: usize = 32;

/// The process-wide sRGB cutpoint table (built once, ~16 µs).
fn quantizer() -> &'static SrgbQuantizer {
    static Q: OnceLock<SrgbQuantizer> = OnceLock::new();
    Q.get_or_init(SrgbQuantizer::new)
}

/// Worker threads the default render entry points use for tiling: the
/// `SDL_RENDER_THREADS` environment variable, else 1. Campaign workers
/// already saturate the cores with whole scenarios, so intra-frame
/// parallelism is opt-in; frames are bit-identical at any setting.
fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("SDL_RENDER_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Render the scene to an 8-bit frame.
///
/// Dispatches on [`CameraGeometry::fidelity`]: `full` runs the frozen
/// sequential reference path (consuming `rng` exactly as the historical
/// renderer did); `fast`/`lowres` draw one `frame_seed` word from `rng`
/// and evaluate the counter-based noise field.
pub fn render(scene: &PlateScene, rng: &mut impl Rng) -> ImageRgb8 {
    let mut img = ImageRgb8::new(scene.camera.width_px, scene.camera.height_px, Rgb8::default());
    render_into(scene, rng, &mut img);
    img
}

/// Render the scene into an existing frame buffer (resized as needed),
/// avoiding the per-frame megabyte allocation of [`render`]. Every pixel is
/// overwritten and the RNG is consumed identically, so the frame is
/// bit-identical to a freshly allocated render.
pub fn render_into(scene: &PlateScene, rng: &mut impl Rng, img: &mut ImageRgb8) {
    match scene.camera.fidelity {
        Fidelity::Full => render_reference_into(scene, rng, img),
        Fidelity::Fast | Fidelity::Lowres => {
            let frame_seed = rng.next_u64();
            render_tiled(scene, frame_seed, img, DEFAULT_TILE_ROWS, configured_threads());
        }
    }
}

/// The counter-based render path with explicit tiling: split the frame
/// into `tile_rows`-row tiles and render them across `threads` workers.
///
/// The output is a pure function of `(scene, frame_seed)` — **bit-identical
/// for every `tile_rows` ≥ 1 and `threads` ≥ 1** — because each pixel's
/// noise comes from the order-independent counter field, not from a shared
/// sequential stream. This is the property the tile/order-independence
/// suite pins.
pub fn render_tiled(
    scene: &PlateScene,
    frame_seed: u64,
    img: &mut ImageRgb8,
    tile_rows: usize,
    threads: usize,
) {
    let w = scene.camera.width_px;
    let h = scene.camera.height_px;
    if img.width() != w || img.height() != h {
        img.reset(w, h, Rgb8::default());
    }
    let tile_rows = tile_rows.max(1);
    let index = SceneIndex::new(scene);
    let quant = quantizer();

    let tile_bytes = tile_rows * w * 3;
    if threads <= 1 || h <= tile_rows {
        for (t, tile) in img.bytes_mut().chunks_mut(tile_bytes).enumerate() {
            render_rows(scene, &index, quant, frame_seed, t * tile_rows, tile);
        }
        return;
    }

    // Deal tiles round-robin onto the workers: consecutive tiles land on
    // different threads, which load-balances the (slightly) cheaper bench
    // rows at the frame edges.
    let mut buckets: Vec<Vec<(usize, &mut [u8])>> = (0..threads).map(|_| Vec::new()).collect();
    for (t, tile) in img.bytes_mut().chunks_mut(tile_bytes).enumerate() {
        buckets[t % threads].push((t, tile));
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            let index = &index;
            scope.spawn(move || {
                for (t, tile) in bucket {
                    render_rows(scene, index, quant, frame_seed, t * tile_rows, tile);
                }
            });
        }
    });
}

/// Render rows `[row0, row0 + rows)` of the frame into `out` (the tile's
/// interleaved RGB bytes; its length determines the row count).
fn render_rows(
    scene: &PlateScene,
    index: &SceneIndex,
    quant: &SrgbQuantizer,
    frame_seed: u64,
    row0: usize,
    out: &mut [u8],
) {
    let cam = &scene.camera;
    let w = cam.width_px;
    let h = cam.height_px;
    debug_assert_eq!(out.len() % (w * 3), 0);

    let cx = w as f64 / 2.0 + scene.pose.dx_px;
    let cy = h as f64 / 2.0 + scene.pose.dy_px;
    let inv_s = 1.0 / cam.px_per_mm;
    let theta = scene.pose.rot_deg.to_radians();
    let (sin_t, cos_t) = theta.sin_cos();
    // Walking one pixel right moves the scene point by a fixed mm step.
    let step_x = cos_t * inv_s;
    let step_y = -sin_t * inv_s;
    let corner_d2 = {
        let dx = w as f64 / 2.0;
        let dy = h as f64 / 2.0;
        dx * dx + dy * dy
    };
    let sigma = scene.lighting.noise_sigma;
    let [cg_r, cg_g, cg_b] = scene.lighting.channel_gain;
    // Vignette gain as a row-constant minus a pure rx² term.
    let vig_b = scene.lighting.gain * scene.lighting.vignette / corner_d2;

    // Noise indexing: channel `c` of pixel `(px, py)` consumes standard
    // normal `3·px + c` of row `py`; Box–Muller pair `j` of a row yields
    // normals `2j` and `2j + 1` (both variates used), and rows advance the
    // global pair counter by a fixed stride. Rows are never split across
    // tiles, so every tile can evaluate its rows' pairs independently.
    let pairs_per_row = (3 * w).div_ceil(2);
    let chunks_per_row = pairs_per_row.div_ceil(NOISE_CHUNK);
    let mut z = vec![0.0f64; chunks_per_row * NOISE_CHUNK * 2];

    for (r, row_bytes) in out.chunks_exact_mut(w * 3).enumerate() {
        let py = row0 + r;
        let row_base = py as u64 * pairs_per_row as u64;
        for (ci, chunk) in z.chunks_exact_mut(NOISE_CHUNK * 2).enumerate() {
            noise_chunk(
                frame_seed,
                row_base + (ci * NOISE_CHUNK) as u64,
                chunk.try_into().expect("chunk size"),
            );
        }

        let ry = py as f64 + 0.5 - cy;
        let rx0 = 0.5 - cx;
        let mut mm_x = (rx0 * cos_t + ry * sin_t) * inv_s + cam.look_at_mm.0;
        let mut mm_y = (-rx0 * sin_t + ry * cos_t) * inv_s + cam.look_at_mm.1;
        let gain_row = scene.lighting.gain - vig_b * ry * ry;
        let mut rx = rx0;

        for (px, out_px) in row_bytes.chunks_exact_mut(3).enumerate() {
            let base = index.material(mm_x, mm_y);
            let gain = gain_row - vig_b * rx * rx;
            mm_x += step_x;
            mm_y += step_y;
            rx += 1.0;
            let n = 3 * px;
            out_px[0] = quant.encode_channel((base.r * gain * cg_r + sigma * z[n]).clamp(0.0, 1.0));
            out_px[1] =
                quant.encode_channel((base.g * gain * cg_g + sigma * z[n + 1]).clamp(0.0, 1.0));
            out_px[2] =
                quant.encode_channel((base.b * gain * cg_b + sigma * z[n + 2]).clamp(0.0, 1.0));
        }
    }
}

/// Box–Muller pairs per generation chunk: large enough that the uniform,
/// log/sqrt and phase passes each auto-vectorize over plain arrays.
const NOISE_CHUNK: usize = 64;

/// Evaluate counter-stream Box–Muller pairs `j0 .. j0 + NOISE_CHUNK`,
/// writing both variates of pair `k` to `z[2k]` / `z[2k + 1]`. Three
/// branch-free array passes (uniforms, radius, phase) so the compiler can
/// keep the divide/sqrt/polynomial work in SIMD lanes.
#[inline]
fn noise_chunk(frame_seed: u64, j0: u64, z: &mut [f64; 2 * NOISE_CHUNK]) {
    let mut u1 = [0.0f64; NOISE_CHUNK];
    let mut u2 = [0.0f64; NOISE_CHUNK];
    for (k, (u1, u2)) in u1.iter_mut().zip(&mut u2).enumerate() {
        let j = j0 + k as u64;
        *u1 = unit_f64_open0(hash(frame_seed, 2 * j));
        *u2 = unit_f64(hash(frame_seed, 2 * j + 1));
    }
    let mut radius = [0.0f64; NOISE_CHUNK];
    for (r, u1) in radius.iter_mut().zip(&u1) {
        *r = (-2.0 * fast_ln(*u1)).sqrt();
    }
    for (k, (u2, r)) in u2.iter().zip(&radius).enumerate() {
        let (s, c) = fast_sincos_2pi(*u2);
        z[2 * k] = r * c;
        z[2 * k + 1] = r * s;
    }
}

/// Per-scene geometry hoisted out of the pixel loop: marker cells resolved
/// into a flat color grid, wells into squared-radius material spans. Built
/// once per frame; `material` then runs without rectangle re-tests,
/// divisions or square roots.
struct SceneIndex {
    // Marker backing card (quiet zone included): an 8×8 color grid.
    mk_x: f64,
    mk_y: f64,
    mk_size: f64,
    mk_inv_cell: f64,
    mk_grid: [LinRgb; 64],
    // Plate bounds and well grid.
    plate_w: f64,
    plate_h: f64,
    a1_x: f64,
    a1_y: f64,
    inv_pitch: f64,
    max_col: f64,
    max_row: f64,
    cols: usize,
    wells: Vec<WellSpan>,
}

/// One well's precomputed material data.
#[derive(Clone, Copy)]
struct WellSpan {
    cx: f64,
    cy: f64,
    /// Squared liquid/empty-well radius.
    r2_inner: f64,
    /// Squared outer wall radius (== `r2_inner` for empty wells, which
    /// draw no rim).
    r2_wall: f64,
    inner: LinRgb,
}

impl SceneIndex {
    fn new(scene: &PlateScene) -> SceneIndex {
        let mk = &scene.marker;
        let cell = mk.size_mm / 6.0;
        let mut mk_grid = [MARKER_WHITE; 64];
        for row in 0..6 {
            for col in 0..6 {
                mk_grid[(row + 1) * 8 + (col + 1)] = if cell_is_white(scene.marker_id, row, col) {
                    MARKER_WHITE
                } else {
                    MARKER_BLACK
                };
            }
        }

        let p = &scene.plate;
        let r2_inner = p.well_radius_mm * p.well_radius_mm;
        let r_wall = p.well_radius_mm + WALL_MM;
        let mut wells = Vec::with_capacity(p.well_count());
        for row in 0..p.rows {
            for col in 0..p.cols {
                let (cx, cy) = p.well_center_mm(row, col);
                let (inner, r2_wall) =
                    match scene.well_colors.get(row * p.cols + col).copied().flatten() {
                        Some(liquid) => (liquid, r_wall * r_wall),
                        None => (EMPTY_WELL, r2_inner),
                    };
                wells.push(WellSpan { cx, cy, r2_inner, r2_wall, inner });
            }
        }

        SceneIndex {
            mk_x: mk.offset_x_mm - cell,
            mk_y: mk.offset_y_mm - cell,
            mk_size: mk.size_mm + 2.0 * cell,
            mk_inv_cell: 1.0 / cell,
            mk_grid,
            plate_w: p.width_mm,
            plate_h: p.height_mm,
            a1_x: p.a1_x_mm,
            a1_y: p.a1_y_mm,
            inv_pitch: 1.0 / p.pitch_mm,
            max_col: (p.cols - 1) as f64,
            max_row: (p.rows - 1) as f64,
            cols: p.cols,
            wells,
        }
    }

    /// The material color at a scene point (plate-local mm coordinates).
    #[inline]
    fn material(&self, x: f64, y: f64) -> LinRgb {
        // Marker backing card (cells and quiet zone share the grid).
        let ux = x - self.mk_x;
        let uy = y - self.mk_y;
        if ux >= 0.0 && ux < self.mk_size && uy >= 0.0 && uy < self.mk_size {
            let gx = ((ux * self.mk_inv_cell) as usize).min(7);
            let gy = ((uy * self.mk_inv_cell) as usize).min(7);
            return self.mk_grid[gy * 8 + gx];
        }

        // Plate: nearest well by grid rounding, then squared-distance spans.
        if x >= 0.0 && x < self.plate_w && y >= 0.0 && y < self.plate_h {
            let col = ((x - self.a1_x) * self.inv_pitch).round().clamp(0.0, self.max_col) as usize;
            let row = ((y - self.a1_y) * self.inv_pitch).round().clamp(0.0, self.max_row) as usize;
            let well = &self.wells[row * self.cols + col];
            let dx = x - well.cx;
            let dy = y - well.cy;
            let d2 = dx * dx + dy * dy;
            if d2 <= well.r2_inner {
                return well.inner;
            }
            if d2 <= well.r2_wall {
                return WELL_WALL;
            }
            return PLATE_BODY;
        }

        BENCH
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::render_reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn renders_expected_frame_size() {
        let scene = PlateScene::empty_plate();
        let img = render(&scene, &mut rng());
        assert_eq!(img.width(), 640);
        assert_eq!(img.height(), 480);
    }

    #[test]
    fn well_centers_show_liquid_color() {
        let mut scene = PlateScene::empty_plate();
        scene.lighting.noise_sigma = 0.0;
        scene.lighting.vignette = 0.0;
        // A strongly red liquid in well C4 (row 2, col 3).
        scene.set_well(2, 3, LinRgb::new(0.5, 0.05, 0.05));
        let img = render(&scene, &mut rng());
        // Project the well center to pixels at identity pose.
        let cam = &scene.camera;
        let (mx, my) = scene.plate.well_center_mm(2, 3);
        let px = (mx - cam.look_at_mm.0) * cam.px_per_mm + cam.width_px as f64 / 2.0;
        let py = (my - cam.look_at_mm.1) * cam.px_per_mm + cam.height_px as f64 / 2.0;
        let (mean, n) = img.mean_disk(px, py, 5.0);
        assert!(n > 50);
        assert!(mean.r > 150 && mean.g < 100, "well color {mean}");
    }

    #[test]
    fn empty_wells_are_light() {
        let mut scene = PlateScene::empty_plate();
        scene.lighting.noise_sigma = 0.0;
        let img = render(&scene, &mut rng());
        let cam = &scene.camera;
        let (mx, my) = scene.plate.well_center_mm(0, 0);
        let px = (mx - cam.look_at_mm.0) * cam.px_per_mm + cam.width_px as f64 / 2.0;
        let py = (my - cam.look_at_mm.1) * cam.px_per_mm + cam.height_px as f64 / 2.0;
        let (mean, _) = img.mean_disk(px, py, 4.0);
        assert!(mean.r > 180, "empty well should be light, got {mean}");
    }

    #[test]
    fn marker_appears_black_and_white() {
        let scene = PlateScene::empty_plate();
        let img = render(&scene, &mut rng());
        let found = crate::aruco::detect_markers(&img, &crate::aruco::ArucoParams::default());
        assert_eq!(found.len(), 1, "marker must be detectable in a rendered frame");
        assert_eq!(found[0].id, 0);
    }

    #[test]
    fn pose_jitter_moves_the_marker() {
        let mut scene = PlateScene::empty_plate();
        let img1 = render(&scene, &mut rng());
        // Pure translation: rotation would additionally swing the marker,
        // which sits far from the frame center.
        scene.pose = Pose { dx_px: 8.0, dy_px: -5.0, rot_deg: 0.0 };
        let img2 = render(&scene, &mut rng());
        let p = crate::aruco::ArucoParams::default();
        let m1 = &crate::aruco::detect_markers(&img1, &p)[0];
        let m2 = &crate::aruco::detect_markers(&img2, &p)[0];
        assert!((m2.center.0 - m1.center.0 - 8.0).abs() < 2.5);
        assert!((m2.center.1 - m1.center.1 + 5.0).abs() < 2.5);
    }

    #[test]
    fn noise_changes_between_frames_but_seed_reproduces() {
        let scene = PlateScene::empty_plate();
        let a = render(&scene, &mut StdRng::seed_from_u64(1));
        let b = render(&scene, &mut StdRng::seed_from_u64(1));
        let c = render(&scene, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn render_into_recycled_buffer_is_bit_identical() {
        let scene = PlateScene::empty_plate();
        let fresh = render(&scene, &mut StdRng::seed_from_u64(5));
        // A stale buffer of the wrong shape and garbage contents.
        let mut buf = ImageRgb8::new(3, 2, Rgb8::new(9, 9, 9));
        render_into(&scene, &mut StdRng::seed_from_u64(5), &mut buf);
        assert_eq!(buf, fresh);
        // Re-render into the now right-sized buffer: still identical.
        render_into(&scene, &mut StdRng::seed_from_u64(5), &mut buf);
        assert_eq!(buf, fresh);
    }

    #[test]
    fn unit_channel_gain_is_bit_identical_to_the_undrifted_frame() {
        // `x * 1.0` is an exact IEEE identity, so the drift hook at its
        // neutral setting must not change a single byte — this is what
        // keeps default campaigns golden-stable.
        let mut scene = PlateScene::empty_plate();
        scene.set_well(2, 3, LinRgb::new(0.5, 0.05, 0.05));
        let baseline = render(&scene, &mut StdRng::seed_from_u64(11));
        scene.lighting.channel_gain = [1.0, 1.0, 1.0];
        assert_eq!(render(&scene, &mut StdRng::seed_from_u64(11)), baseline);
    }

    #[test]
    fn channel_gain_tints_the_frame() {
        let mut scene = PlateScene::empty_plate();
        scene.lighting.noise_sigma = 0.0;
        let neutral = render(&scene, &mut StdRng::seed_from_u64(11));
        scene.lighting.channel_gain = [1.1, 1.0, 0.9];
        let tinted = render(&scene, &mut StdRng::seed_from_u64(11));
        assert_ne!(neutral, tinted);
        // The plate body (a near-neutral gray) must read warmer.
        let (n_mean, _) = neutral.mean_disk(320.0, 240.0, 30.0);
        let (t_mean, _) = tinted.mean_disk(320.0, 240.0, 30.0);
        assert!(t_mean.r >= n_mean.r && t_mean.b <= n_mean.b, "{n_mean} -> {t_mean}");
        assert!(t_mean.r as i32 - t_mean.b as i32 > n_mean.r as i32 - n_mean.b as i32);
    }

    #[test]
    fn pose_jitter_is_bounded() {
        let mut r = rng();
        for _ in 0..100 {
            let p = Pose::jittered(&mut r, 6.0, 1.2);
            assert!(p.dx_px.abs() <= 6.0 && p.dy_px.abs() <= 6.0 && p.rot_deg.abs() <= 1.2);
        }
    }

    #[test]
    fn full_fidelity_dispatches_to_the_reference_path() {
        let mut scene = PlateScene::empty_plate();
        scene.camera = CameraGeometry::for_fidelity(Fidelity::Full);
        let via_dispatch = render(&scene, &mut StdRng::seed_from_u64(9));
        let direct = render_reference(&scene, &mut StdRng::seed_from_u64(9));
        assert_eq!(via_dispatch, direct);
        // And the fast path differs (statistically equivalent, not equal).
        scene.camera.fidelity = Fidelity::Fast;
        assert_ne!(render(&scene, &mut StdRng::seed_from_u64(9)), direct);
    }

    #[test]
    fn lowres_profile_renders_quarter_frames_the_detector_still_reads() {
        let mut scene = PlateScene::empty_plate();
        scene.camera = CameraGeometry::for_fidelity(Fidelity::Lowres);
        scene.set_well(2, 3, LinRgb::new(0.5, 0.05, 0.05));
        let img = render(&scene, &mut rng());
        assert_eq!((img.width(), img.height()), (320, 240));
        let reading = crate::pipeline::Detector::default().detect(&img).unwrap();
        let well = reading.well(2, 3).unwrap();
        assert!(well.color.r > well.color.g + 40, "C4 at lowres: {}", well.color);
    }

    #[test]
    fn scene_index_matches_reference_materials_off_boundaries() {
        // Sample the scene densely at points away from exact span edges:
        // the hoisted index must agree with the frozen per-pixel geometry.
        let mut scene = PlateScene::empty_plate();
        scene.set_well(0, 0, LinRgb::new(0.3, 0.1, 0.1));
        scene.set_well(7, 11, LinRgb::new(0.1, 0.3, 0.1));
        scene.lighting.noise_sigma = 0.0;
        let idx = SceneIndex::new(&scene);
        let mut checked = 0usize;
        for iy in 0..600 {
            for ix in 0..900 {
                let x = ix as f64 * 0.171 - 40.0;
                let y = iy as f64 * 0.163 - 10.0;
                let got = idx.material(x, y);
                let want = crate::reference::material_at(&scene, x, y);
                if got != want {
                    // Tolerate float-boundary flips only within a hair of a
                    // geometric edge.
                    panic!("material mismatch at ({x}, {y}): {got:?} vs {want:?}");
                }
                checked += 1;
            }
        }
        assert!(checked > 500_000);
    }
}
