//! Synthetic plate-scene renderer — the webcam substitute.
//!
//! Renders what the Logitech camera with its ring light would see: a
//! microplate on a dark bench next to an ArUco marker on white backing,
//! with ring-light vignetting, sensor noise and small pose jitter. The
//! detection pipeline (§2.4) runs unchanged on these frames.

use crate::aruco::cell_is_white;
use crate::image::ImageRgb8;
use crate::layout::{CameraGeometry, MarkerLayout, PlateLayout};
use rand::Rng;
use rand_distr_normal::sample_normal;
use sdl_color::{linear_to_srgb, LinRgb, Rgb8};

/// Minimal normal sampler (Box–Muller) so we do not need an extra crate.
mod rand_distr_normal {
    use rand::Rng;

    /// One standard-normal draw.
    pub fn sample_normal(rng: &mut impl Rng) -> f64 {
        // Box–Muller; u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Camera pose jitter for one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Horizontal translation, px.
    pub dx_px: f64,
    /// Vertical translation, px.
    pub dy_px: f64,
    /// In-plane rotation, degrees.
    pub rot_deg: f64,
}

impl Pose {
    /// The unjittered pose.
    pub const IDENTITY: Pose = Pose { dx_px: 0.0, dy_px: 0.0, rot_deg: 0.0 };

    /// Draw a random small pose ("to account for potential shifting in the
    /// camera position", §2.4).
    pub fn jittered(rng: &mut impl Rng, max_shift_px: f64, max_rot_deg: f64) -> Pose {
        Pose {
            dx_px: rng.gen_range(-max_shift_px..=max_shift_px),
            dy_px: rng.gen_range(-max_shift_px..=max_shift_px),
            rot_deg: rng.gen_range(-max_rot_deg..=max_rot_deg),
        }
    }
}

/// Lighting and sensor model.
#[derive(Debug, Clone, PartialEq)]
pub struct Lighting {
    /// Quadratic vignette strength at the frame corner (0 = flat field).
    pub vignette: f64,
    /// Gaussian noise sigma in linear light (per channel).
    pub noise_sigma: f64,
    /// Global illumination gain.
    pub gain: f64,
}

impl Default for Lighting {
    fn default() -> Self {
        Lighting { vignette: 0.08, noise_sigma: 0.006, gain: 1.0 }
    }
}

/// Everything needed to render one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct PlateScene {
    /// True liquid colors by well index (row-major, A1 = 0); `None` = empty.
    pub well_colors: Vec<Option<LinRgb>>,
    /// Which dictionary marker is printed on the rig.
    pub marker_id: usize,
    /// Frame pose jitter.
    pub pose: Pose,
    /// Lighting model.
    pub lighting: Lighting,
    /// Plate geometry.
    pub plate: PlateLayout,
    /// Marker placement.
    pub marker: MarkerLayout,
    /// Camera geometry.
    pub camera: CameraGeometry,
}

impl PlateScene {
    /// A scene with every well empty.
    pub fn empty_plate() -> PlateScene {
        let plate = PlateLayout::default();
        PlateScene {
            well_colors: vec![None; plate.well_count()],
            marker_id: 0,
            pose: Pose::IDENTITY,
            lighting: Lighting::default(),
            plate,
            marker: MarkerLayout::default(),
            camera: CameraGeometry::default(),
        }
    }

    /// Set one well's liquid color.
    pub fn set_well(&mut self, row: usize, col: usize, color: LinRgb) {
        let idx = row * self.plate.cols + col;
        self.well_colors[idx] = Some(color);
    }
}

// Scene material colors, in linear light.
const BENCH: LinRgb = LinRgb::new(0.022, 0.023, 0.025);
/// Reflectance of the plate body material — rig knowledge usable as a
/// white-balance reference by the detector's flat-field correction.
pub const PLATE_BODY_REFLECTANCE: LinRgb = LinRgb::new(0.62, 0.62, 0.64);
const PLATE_BODY: LinRgb = PLATE_BODY_REFLECTANCE;
const EMPTY_WELL: LinRgb = LinRgb::new(0.75, 0.75, 0.76);
const WELL_WALL: LinRgb = LinRgb::new(0.045, 0.045, 0.048);
const MARKER_WHITE: LinRgb = LinRgb::new(0.92, 0.92, 0.92);
const MARKER_BLACK: LinRgb = LinRgb::new(0.012, 0.012, 0.012);

/// Width of the dark rim drawn around *filled* wells, mm. Empty wells get no
/// rim, which is what makes HoughCircles prone to false negatives on them.
const WALL_MM: f64 = 0.7;

/// Render the scene to an 8-bit frame.
pub fn render(scene: &PlateScene, rng: &mut impl Rng) -> ImageRgb8 {
    let mut img = ImageRgb8::new(scene.camera.width_px, scene.camera.height_px, Rgb8::default());
    render_into(scene, rng, &mut img);
    img
}

/// Render the scene into an existing frame buffer (resized as needed),
/// avoiding the per-frame megabyte allocation of [`render`]. Every pixel is
/// overwritten and the RNG is consumed identically, so the frame is
/// bit-identical to a freshly allocated render.
pub fn render_into(scene: &PlateScene, rng: &mut impl Rng, img: &mut ImageRgb8) {
    let cam = &scene.camera;
    let w = cam.width_px;
    let h = cam.height_px;
    if img.width() != w || img.height() != h {
        img.reset(w, h, Rgb8::default());
    }
    let cx = w as f64 / 2.0 + scene.pose.dx_px;
    let cy = h as f64 / 2.0 + scene.pose.dy_px;
    let s = cam.px_per_mm;
    let theta = scene.pose.rot_deg.to_radians();
    let (sin_t, cos_t) = theta.sin_cos();
    let corner_d2 = {
        let dx = w as f64 / 2.0;
        let dy = h as f64 / 2.0;
        dx * dx + dy * dy
    };

    for py in 0..h {
        for px in 0..w {
            // Inverse map pixel -> scene mm (rotate then unscale).
            let rx = px as f64 + 0.5 - cx;
            let ry = py as f64 + 0.5 - cy;
            let mm_x = (rx * cos_t + ry * sin_t) / s + cam.look_at_mm.0;
            let mm_y = (-rx * sin_t + ry * cos_t) / s + cam.look_at_mm.1;
            let base = material_at(scene, mm_x, mm_y);

            // Ring-light vignette (quadratic falloff from frame center).
            let d2 = rx * rx + ry * ry;
            let gain = scene.lighting.gain * (1.0 - scene.lighting.vignette * d2 / corner_d2);

            let noisy = LinRgb::new(
                base.r * gain + scene.lighting.noise_sigma * sample_normal(rng),
                base.g * gain + scene.lighting.noise_sigma * sample_normal(rng),
                base.b * gain + scene.lighting.noise_sigma * sample_normal(rng),
            )
            .clamped();
            img.put(
                px as i64,
                py as i64,
                Rgb8::new(
                    (linear_to_srgb(noisy.r) * 255.0).round() as u8,
                    (linear_to_srgb(noisy.g) * 255.0).round() as u8,
                    (linear_to_srgb(noisy.b) * 255.0).round() as u8,
                ),
            );
        }
    }
}

/// The material color at a scene point (plate-local mm coordinates).
fn material_at(scene: &PlateScene, x: f64, y: f64) -> LinRgb {
    // Marker backing card (one-cell quiet zone) and cells.
    let mk = &scene.marker;
    let cell = mk.size_mm / 6.0;
    let bx = mk.offset_x_mm - cell;
    let by = mk.offset_y_mm - cell;
    let bsize = mk.size_mm + 2.0 * cell;
    if x >= bx && x < bx + bsize && y >= by && y < by + bsize {
        let ix = x - mk.offset_x_mm;
        let iy = y - mk.offset_y_mm;
        if ix >= 0.0 && ix < mk.size_mm && iy >= 0.0 && iy < mk.size_mm {
            let col = (ix / cell) as usize;
            let row = (iy / cell) as usize;
            return if cell_is_white(scene.marker_id, row.min(5), col.min(5)) {
                MARKER_WHITE
            } else {
                MARKER_BLACK
            };
        }
        return MARKER_WHITE; // quiet zone
    }

    // Plate.
    let p = &scene.plate;
    if x >= 0.0 && x < p.width_mm && y >= 0.0 && y < p.height_mm {
        // Nearest well.
        let col_f = (x - p.a1_x_mm) / p.pitch_mm;
        let row_f = (y - p.a1_y_mm) / p.pitch_mm;
        let col = col_f.round().clamp(0.0, (p.cols - 1) as f64) as usize;
        let row = row_f.round().clamp(0.0, (p.rows - 1) as f64) as usize;
        let (wx, wy) = p.well_center_mm(row, col);
        let dx = x - wx;
        let dy = y - wy;
        let d = (dx * dx + dy * dy).sqrt();
        let idx = row * p.cols + col;
        match scene.well_colors.get(idx).copied().flatten() {
            Some(liquid) => {
                if d <= p.well_radius_mm {
                    return liquid;
                }
                if d <= p.well_radius_mm + WALL_MM {
                    return WELL_WALL;
                }
            }
            None => {
                if d <= p.well_radius_mm {
                    return EMPTY_WELL;
                }
            }
        }
        return PLATE_BODY;
    }

    BENCH
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn renders_expected_frame_size() {
        let scene = PlateScene::empty_plate();
        let img = render(&scene, &mut rng());
        assert_eq!(img.width(), 640);
        assert_eq!(img.height(), 480);
    }

    #[test]
    fn well_centers_show_liquid_color() {
        let mut scene = PlateScene::empty_plate();
        scene.lighting.noise_sigma = 0.0;
        scene.lighting.vignette = 0.0;
        // A strongly red liquid in well C4 (row 2, col 3).
        scene.set_well(2, 3, LinRgb::new(0.5, 0.05, 0.05));
        let img = render(&scene, &mut rng());
        // Project the well center to pixels at identity pose.
        let cam = &scene.camera;
        let (mx, my) = scene.plate.well_center_mm(2, 3);
        let px = (mx - cam.look_at_mm.0) * cam.px_per_mm + cam.width_px as f64 / 2.0;
        let py = (my - cam.look_at_mm.1) * cam.px_per_mm + cam.height_px as f64 / 2.0;
        let (mean, n) = img.mean_disk(px, py, 5.0);
        assert!(n > 50);
        assert!(mean.r > 150 && mean.g < 100, "well color {mean}");
    }

    #[test]
    fn empty_wells_are_light() {
        let mut scene = PlateScene::empty_plate();
        scene.lighting.noise_sigma = 0.0;
        let img = render(&scene, &mut rng());
        let cam = &scene.camera;
        let (mx, my) = scene.plate.well_center_mm(0, 0);
        let px = (mx - cam.look_at_mm.0) * cam.px_per_mm + cam.width_px as f64 / 2.0;
        let py = (my - cam.look_at_mm.1) * cam.px_per_mm + cam.height_px as f64 / 2.0;
        let (mean, _) = img.mean_disk(px, py, 4.0);
        assert!(mean.r > 180, "empty well should be light, got {mean}");
    }

    #[test]
    fn marker_appears_black_and_white() {
        let scene = PlateScene::empty_plate();
        let img = render(&scene, &mut rng());
        let found = crate::aruco::detect_markers(&img, &crate::aruco::ArucoParams::default());
        assert_eq!(found.len(), 1, "marker must be detectable in a rendered frame");
        assert_eq!(found[0].id, 0);
    }

    #[test]
    fn pose_jitter_moves_the_marker() {
        let mut scene = PlateScene::empty_plate();
        let img1 = render(&scene, &mut rng());
        // Pure translation: rotation would additionally swing the marker,
        // which sits far from the frame center.
        scene.pose = Pose { dx_px: 8.0, dy_px: -5.0, rot_deg: 0.0 };
        let img2 = render(&scene, &mut rng());
        let p = crate::aruco::ArucoParams::default();
        let m1 = &crate::aruco::detect_markers(&img1, &p)[0];
        let m2 = &crate::aruco::detect_markers(&img2, &p)[0];
        assert!((m2.center.0 - m1.center.0 - 8.0).abs() < 2.5);
        assert!((m2.center.1 - m1.center.1 + 5.0).abs() < 2.5);
    }

    #[test]
    fn noise_changes_between_frames_but_seed_reproduces() {
        let scene = PlateScene::empty_plate();
        let a = render(&scene, &mut StdRng::seed_from_u64(1));
        let b = render(&scene, &mut StdRng::seed_from_u64(1));
        let c = render(&scene, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn render_into_recycled_buffer_is_bit_identical() {
        let scene = PlateScene::empty_plate();
        let fresh = render(&scene, &mut StdRng::seed_from_u64(5));
        // A stale buffer of the wrong shape and garbage contents.
        let mut buf = ImageRgb8::new(3, 2, Rgb8::new(9, 9, 9));
        render_into(&scene, &mut StdRng::seed_from_u64(5), &mut buf);
        assert_eq!(buf, fresh);
        // Re-render into the now right-sized buffer: still identical.
        render_into(&scene, &mut StdRng::seed_from_u64(5), &mut buf);
        assert_eq!(buf, fresh);
    }

    #[test]
    fn pose_jitter_is_bounded() {
        let mut r = rng();
        for _ in 0..100 {
            let p = Pose::jittered(&mut r, 6.0, 1.2);
            assert!(p.dx_px.abs() <= 6.0 && p.dy_px.abs() <= 6.0 && p.rot_deg.abs() <= 1.2);
        }
    }
}
