//! `sdl-core` — the color-picker application (the paper's primary
//! contribution, Figure 2).
//!
//! [`ColorPickerApp`] closes the loop: an optimization solver proposes dye
//! ratios, the WEI engine drives the simulated workcell through the four
//! `cp_wf_*` workflows, the camera's frames run through the §2.4 detection
//! pipeline, scores feed back to the solver, and every sample is published
//! to the ACDC-style portal — all on a virtual clock calibrated to Table 1.
//!
//! # Quickstart
//!
//! ```
//! use sdl_core::{AppConfig, ColorPickerApp};
//!
//! let config = AppConfig { sample_budget: 4, batch: 2, publish_images: false, ..AppConfig::default() };
//! let outcome = ColorPickerApp::new(config).unwrap().run().unwrap();
//! assert_eq!(outcome.samples_measured, 4);
//! assert!(outcome.best_score.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod campaign;
mod config;
mod metrics;
mod multi;
mod protocol;
mod termination;

pub use app::{
    AppError, ColorPickerApp, ExperimentOutcome, TrajectoryPoint, WF_MIXCOLOR, WF_NEWPLATE,
    WF_REPLENISH, WF_TRASHPLATE,
};
pub use campaign::{
    batch_sweep, run_one, run_sweep, solver_sweep, CampaignConfig, CampaignReport, CampaignRunner,
    RunMode, ScenarioOutcome, ScenarioResult, ScenarioSpec, SweepItem,
};
pub use config::{AppConfig, ConfigError};
pub use metrics::SdlMetrics;
pub use multi::{multi_ot2_workcell_yaml, run_multi_ot2, MultiOt2Outcome};
pub use protocol::{build_protocol, ProtocolError};
pub use termination::TerminationReason;
