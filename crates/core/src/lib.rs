//! `sdl-core` — the color-picker application (the paper's primary
//! contribution, Figure 2).
//!
//! [`Experiment`] is the ask/tell session at the heart of the crate: it
//! proposes dye-ratio batches and grades the measurements that come back,
//! while a pluggable [`LabBackend`] executes them — [`SimBackend`] (the
//! simulated workcell driven through the four `cp_wf_*` workflows with the
//! §2.4 detection pipeline, on a virtual clock calibrated to Table 1),
//! [`RemoteBackend`] (a worker process over HTTP), or [`ReplayBackend`]
//! (recorded runs re-driven offline). [`ColorPickerApp`] is the
//! closed-loop compatibility wrapper: one `run()` drives an `Experiment`
//! on a `SimBackend`, publishing every sample to the ACDC-style portal.
//!
//! # Quickstart
//!
//! ```
//! use sdl_core::{AppConfig, ColorPickerApp};
//!
//! let config = AppConfig { sample_budget: 4, batch: 2, publish_images: false, ..AppConfig::default() };
//! let outcome = ColorPickerApp::new(config).unwrap().run().unwrap();
//! assert_eq!(outcome.samples_measured, 4);
//! assert!(outcome.best_score.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod backend;
mod campaign;
pub mod chaos;
mod config;
mod experiment;
mod metrics;
mod multi;
mod protocol;
mod termination;

pub use app::{
    AppError, ColorPickerApp, ExperimentOutcome, TrajectoryPoint, WF_MIXCOLOR, WF_NEWPLATE,
    WF_REPLENISH, WF_TRASHPLATE,
};
pub use backend::{
    wire, BackendCaps, BackendClose, BackendSpec, Batch, BatchResult, LabBackend, RemoteBackend,
    RemoteStats, ReplayBackend, RetryPolicy, SimBackend, WellMeasurement,
};
pub use campaign::{
    batch_sweep, run_one, run_sweep, solver_sweep, CampaignConfig, CampaignEvent, CampaignReport,
    CampaignRunner, CampaignScheduler, EventLog, EventRecord, EventScope, Leaderboard,
    LeaderboardRow, MultiTelemetry, PhaseTimings, ProgressModel, RecoveryReport, ResumeStats,
    RunMode, ScenarioOutcome, ScenarioResult, ScenarioSpec, ScenarioSummary, SchedulerReport,
    SingleTelemetry, StressKind, StressSuite, SweepItem, WorkerProgress, WorkerStats,
};
pub use chaos::{ChaosClock, ChaosPolicy, ChaosStream, WorkerFault};
pub use config::{AppConfig, ConfigError};
pub use experiment::Experiment;
pub use metrics::SdlMetrics;
pub use multi::{multi_ot2_workcell_yaml, run_multi_ot2, MultiOt2Outcome};
pub use protocol::{build_protocol, ProtocolError};
pub use termination::TerminationReason;
