//! The paper's proposed SDL metrics (§4, Table 1).
//!
//! * **TWH** — time without humans: the longest stretch of the run with no
//!   human intervention;
//! * **CCWH** — commands completed without humans: the longest streak of
//!   robotic commands (the camera is a sensor and does not count);
//! * **synthesis time** — OT-2 protocol execution;
//! * **transfer time** — pf400 moves plus imaging turnaround;
//! * **time per color** — total runtime divided by colors mixed.
//!
//! Plate logistics (sciclops fetches, barty pump work) fall outside the
//! paper's two buckets and are reported separately as `logistics`.

use sdl_desim::{SimDuration, SimTime};
use sdl_wei::{Counters, Reliability, WorkflowRunLog};
use std::fmt::Write as _;

/// Computed metrics for one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SdlMetrics {
    /// Time without humans.
    pub twh: SimDuration,
    /// Commands completed without humans (robotic commands).
    pub ccwh: u64,
    /// Total OT-2 synthesis time.
    pub synthesis: SimDuration,
    /// Total transfer + imaging time.
    pub transfer: SimDuration,
    /// Plate/reservoir logistics time (sciclops + barty).
    pub logistics: SimDuration,
    /// Whole-experiment duration.
    pub total: SimDuration,
    /// Colors mixed (samples measured).
    pub colors_mixed: u32,
    /// Mean time per color.
    pub time_per_color: SimDuration,
    /// All robotic commands completed over the run.
    pub robotic_commands: u64,
    /// All commands completed (including camera).
    pub total_commands: u64,
    /// Human interventions over the run.
    pub human_interventions: u64,
}

impl SdlMetrics {
    /// Derive metrics from engine history and reliability bookkeeping.
    pub fn compute(
        history: &[WorkflowRunLog],
        counters: &Counters,
        reliability: &Reliability,
        run_start: SimTime,
        run_end: SimTime,
        colors_mixed: u32,
    ) -> SdlMetrics {
        let mut synthesis = SimDuration::ZERO;
        let mut transfer = SimDuration::ZERO;
        let mut logistics = SimDuration::ZERO;
        for log in history {
            for r in &log.records {
                let d = r.duration();
                match r.action.as_str() {
                    "run_protocol" => synthesis += d,
                    "transfer" | "take_picture" => transfer += d,
                    _ => logistics += d,
                }
            }
        }
        let total = run_end - run_start;
        SdlMetrics {
            twh: reliability.time_without_humans(run_start, run_end),
            ccwh: reliability.commands_without_humans(),
            synthesis,
            transfer,
            logistics,
            total,
            colors_mixed,
            time_per_color: if colors_mixed > 0 {
                total / colors_mixed as u64
            } else {
                SimDuration::ZERO
            },
            robotic_commands: counters.robotic_completed,
            total_commands: counters.completed,
            human_interventions: counters.human_interventions,
        }
    }

    /// Render the Table-1 rows.
    pub fn render_table1(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<44} Value", "Metric");
        let _ = writeln!(out, "{:-<60}", "");
        let _ = writeln!(out, "{:<44} {}", "Time without humans (TWH)", self.twh);
        let _ = writeln!(out, "{:<44} {}", "Completed commands without humans (CCWH)", self.ccwh);
        let _ = writeln!(out, "{:<44} {}", "Synthesis time", self.synthesis);
        let _ = writeln!(out, "{:<44} {}", "Transfer time", self.transfer);
        let _ = writeln!(out, "{:<44} {}", "Plate/reservoir logistics", self.logistics);
        let _ = writeln!(out, "{:<44} {}", "Total colors mixed", self.colors_mixed);
        let _ = writeln!(out, "{:<44} {}", "Time per color", self.time_per_color);
        out
    }

    /// Synthesis share of the total (the paper reports 63%).
    pub fn synthesis_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.synthesis.as_secs_f64() / self.total.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdl_wei::StepRecord;

    fn log_with(action: &str, module: &str, dur_s: u64) -> WorkflowRunLog {
        WorkflowRunLog {
            workflow: "wf".into(),
            start: SimTime::ZERO,
            end: SimTime::from_secs(dur_s),
            records: vec![StepRecord {
                name: action.to_string(),
                module: module.into(),
                action: action.into(),
                start: SimTime::ZERO,
                end: SimTime::from_secs(dur_s),
                attempts: 1,
                human_intervened: false,
            }],
        }
    }

    #[test]
    fn buckets_by_action() {
        let history = vec![
            log_with("run_protocol", "ot2", 143),
            log_with("transfer", "pf400", 34),
            log_with("transfer", "pf400", 34),
            log_with("take_picture", "camera", 15),
            log_with("get_plate", "sciclops", 30),
            log_with("fill_colors", "barty", 44),
        ];
        let m = SdlMetrics::compute(
            &history,
            &Counters { completed: 6, robotic_completed: 5, ..Counters::default() },
            &Reliability::default(),
            SimTime::ZERO,
            SimTime::from_secs(300),
            1,
        );
        assert_eq!(m.synthesis, SimDuration::from_secs(143));
        assert_eq!(m.transfer, SimDuration::from_secs(83));
        assert_eq!(m.logistics, SimDuration::from_secs(74));
        assert_eq!(m.total, SimDuration::from_secs(300));
        assert_eq!(m.time_per_color, SimDuration::from_secs(300));
        assert!((m.synthesis_fraction() - 143.0 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn twh_spans_interventions() {
        let mut rel = Reliability::default();
        rel.human_times.push(SimTime::from_secs(1_000));
        let m = SdlMetrics::compute(
            &[],
            &Counters::default(),
            &rel,
            SimTime::ZERO,
            SimTime::from_secs(10_000),
            0,
        );
        assert_eq!(m.twh, SimDuration::from_secs(9_000));
        assert_eq!(m.time_per_color, SimDuration::ZERO);
    }

    #[test]
    fn table_renders_all_rows() {
        let m = SdlMetrics::compute(
            &[],
            &Counters::default(),
            &Reliability::default(),
            SimTime::ZERO,
            SimTime::from_secs(100),
            4,
        );
        let t = m.render_table1();
        for needle in
            ["TWH", "CCWH", "Synthesis", "Transfer", "Total colors mixed", "Time per color"]
        {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }
}
