//! The color-picker application: the closed loop of paper Figure 2.
//!
//! One `run()` reproduces `color_picker_app.py`: fetch a plate
//! (`cp_wf_newplate`), repeatedly propose → mix → image → grade
//! (`cp_wf_mixcolor` + compute + publish + solver), swap full plates
//! (`cp_wf_trashplate`), top up reservoirs (`cp_wf_replenish`), and stop on
//! the termination criteria — all against the simulated workcell on a
//! virtual clock.
//!
//! Since the ask/tell redesign, [`ColorPickerApp`] is a thin compatibility
//! wrapper: the decision/data half lives in [`Experiment`](crate::Experiment)
//! and the robotic half in [`SimBackend`](crate::SimBackend); `run()` just
//! drives one on the other.

use crate::backend::SimBackend;
use crate::config::AppConfig;
use crate::experiment::Experiment;
use crate::metrics::SdlMetrics;
use crate::protocol::ProtocolError;
use crate::termination::TerminationReason;
use sdl_datapub::{AcdcPortal, BlobStore, FlowStats, SampleRecord};
use sdl_desim::SimDuration;
use sdl_solvers::{ColorSolver, Observation};
use sdl_vision::{DetectorScratch, VisionError};
use sdl_wei::{Counters, Engine, WeiError};
use std::fmt;
use std::sync::Arc;

/// Canonical workflow documents (Figure 2).
pub const WF_NEWPLATE: &str = include_str!("../assets/cp_wf_newplate.yaml");
/// `cp_wf_mixcolor`.
pub const WF_MIXCOLOR: &str = include_str!("../assets/cp_wf_mixcolor.yaml");
/// `cp_wf_trashplate`.
pub const WF_TRASHPLATE: &str = include_str!("../assets/cp_wf_trashplate.yaml");
/// `cp_wf_replenish`.
pub const WF_REPLENISH: &str = include_str!("../assets/cp_wf_replenish.yaml");

/// Application-level errors.
#[derive(Debug)]
pub enum AppError {
    /// Workflow/engine failure.
    Wei(WeiError),
    /// Image-processing failure.
    Vision(VisionError),
    /// Protocol construction failure.
    Protocol(ProtocolError),
    /// Configuration problem discovered at startup.
    Setup(String),
    /// Failure talking to a remote lab backend.
    Backend(String),
    /// Transport-level failure reaching a remote worker (unreachable,
    /// connection lost, timed out): the work itself never completed, so a
    /// scheduler may safely retry it on another worker.
    Transport(String),
    /// The worker shed the request with `429`/`503` + `Retry-After`: it is
    /// alive but over capacity. Distinct from [`AppError::Transport`] so a
    /// scheduler throttles and retries the *same* worker instead of
    /// evicting a merely-busy one. Carries the server's `Retry-After`
    /// hint when one was sent.
    Backpressure {
        /// What the worker said when it shed the request.
        message: String,
        /// The server-provided `Retry-After`, if any.
        retry_after: Option<std::time::Duration>,
    },
    /// An error restored verbatim from a campaign event log during resume.
    /// The original variant is gone — only its rendered message survives in
    /// the log — so this displays the stored text unchanged, keeping
    /// resumed fingerprints bit-identical to the interrupted run's.
    Restored(String),
}

impl AppError {
    /// True for transport-level remote failures — the class of error the
    /// campaign scheduler treats as *worker death* (retry elsewhere) rather
    /// than scenario failure.
    pub fn is_transport(&self) -> bool {
        matches!(self, AppError::Transport(_))
    }

    /// True for worker load-shedding (429/503): the scheduler should
    /// throttle and retry the same worker, never evict it.
    pub fn is_backpressure(&self) -> bool {
        matches!(self, AppError::Backpressure { .. })
    }

    /// The server's `Retry-After` hint, when this is a backpressure error
    /// that carried one.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        match self {
            AppError::Backpressure { retry_after, .. } => *retry_after,
            _ => None,
        }
    }
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Wei(e) => write!(f, "{e}"),
            AppError::Vision(e) => write!(f, "{e}"),
            AppError::Protocol(e) => write!(f, "{e}"),
            AppError::Setup(m) => write!(f, "setup error: {m}"),
            AppError::Backend(m) => write!(f, "backend error: {m}"),
            AppError::Transport(m) => write!(f, "worker unreachable: {m}"),
            AppError::Backpressure { message, .. } => write!(f, "worker busy: {message}"),
            AppError::Restored(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<WeiError> for AppError {
    fn from(e: WeiError) -> Self {
        AppError::Wei(e)
    }
}
impl From<VisionError> for AppError {
    fn from(e: VisionError) -> Self {
        AppError::Vision(e)
    }
}
impl From<ProtocolError> for AppError {
    fn from(e: ProtocolError) -> Self {
        AppError::Protocol(e)
    }
}

/// One point of the Figure-4 trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Global sample number (1-based).
    pub sample: u32,
    /// Elapsed experiment time at measurement, minutes.
    pub elapsed_min: f64,
    /// This sample's score.
    pub score: f64,
    /// Best score so far.
    pub best: f64,
}

/// Everything a finished experiment reports.
pub struct ExperimentOutcome {
    /// Experiment identifier.
    pub experiment_id: String,
    /// Why the run stopped.
    pub termination: TerminationReason,
    /// Best score achieved.
    pub best_score: f64,
    /// Ratios of the best sample.
    pub best_ratios: Vec<f64>,
    /// Samples actually measured.
    pub samples_measured: u32,
    /// Wall duration on the virtual clock.
    pub duration: SimDuration,
    /// Best-so-far trajectory (Figure 4).
    pub trajectory: Vec<TrajectoryPoint>,
    /// Table-1 metrics.
    pub metrics: SdlMetrics,
    /// Raw command counters.
    pub counters: Counters,
    /// Plates consumed.
    pub plates_used: u32,
    /// Times the solver's surrogate fit degenerated and it silently fell
    /// back to random proposals (0 for solvers without a surrogate).
    pub solver_fallbacks: u64,
    /// The data portal holding every published record.
    pub portal: Arc<AcdcPortal>,
    /// The image blob store.
    pub store: Arc<BlobStore>,
    /// Publication pipeline statistics.
    pub flow_stats: FlowStats,
}

impl fmt::Debug for ExperimentOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExperimentOutcome")
            .field("experiment_id", &self.experiment_id)
            .field("termination", &self.termination)
            .field("best_score", &self.best_score)
            .field("samples_measured", &self.samples_measured)
            .field("duration", &self.duration.to_string())
            .finish_non_exhaustive()
    }
}

/// The application: an [`Experiment`] session permanently bound to a
/// [`SimBackend`].
pub struct ColorPickerApp {
    /// The configuration this app was built from (a snapshot: the session
    /// and backend hold their own copies, so mutating this field after
    /// [`ColorPickerApp::new`] does not affect the run).
    pub config: AppConfig,
    session: Experiment,
    backend: SimBackend,
}

impl ColorPickerApp {
    /// Build the application: instantiate the simulated workcell and start
    /// the experiment session on it.
    pub fn new(config: AppConfig) -> Result<ColorPickerApp, AppError> {
        let backend = SimBackend::new(&config)?;
        let session = Experiment::new(config.clone())?;
        Ok(ColorPickerApp { config, session, backend })
    }

    /// The measurement history accumulated so far.
    pub fn history(&self) -> &[Observation] {
        self.session.history()
    }

    /// Resume an interrupted experiment from previously published records
    /// (see [`Experiment::restore_from_records`]).
    pub fn restore_from_records(&mut self, records: &[SampleRecord]) {
        self.session.restore_from_records(records);
    }

    /// The engine (for inspection in tests and benches).
    pub fn engine(&self) -> &Engine {
        self.backend.engine()
    }

    /// The underlying experiment session.
    pub fn session(&self) -> &Experiment {
        &self.session
    }

    /// Swap in a custom decision procedure before [`ColorPickerApp::run`]
    /// (the solver RNG stream is unchanged). Used by the equivalence tests
    /// and the `hotpath` bench to pin a solver variant.
    pub fn replace_solver(&mut self, solver: Box<dyn ColorSolver>) {
        self.session.replace_solver(solver);
    }

    /// Execute the full experiment.
    pub fn run(&mut self) -> Result<ExperimentOutcome, AppError> {
        self.session.run_on(&mut self.backend)
    }

    /// Execute the full experiment over caller-owned detector scratch
    /// buffers, so campaign workers reuse one arena across scenarios
    /// instead of reallocating the vision working set per run.
    pub fn run_with(
        &mut self,
        scratch: &mut DetectorScratch,
    ) -> Result<ExperimentOutcome, AppError> {
        use crate::backend::LabBackend as _;
        self.backend.swap_scratch(scratch);
        let result = self.session.run_on(&mut self.backend);
        self.backend.swap_scratch(scratch);
        result
    }
}
