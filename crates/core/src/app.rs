//! The color-picker application: the closed loop of paper Figure 2.
//!
//! One `run()` reproduces `color_picker_app.py`: fetch a plate
//! (`cp_wf_newplate`), repeatedly propose → mix → image → grade
//! (`cp_wf_mixcolor` + compute + publish + solver), swap full plates
//! (`cp_wf_trashplate`), top up reservoirs (`cp_wf_replenish`), and stop on
//! the termination criteria — all against the simulated workcell on a
//! virtual clock.

use crate::config::AppConfig;
use crate::metrics::SdlMetrics;
use crate::protocol::{build_protocol, ProtocolError};
use crate::termination::TerminationReason;
use bytes::Bytes;
use rand::rngs::StdRng;
use sdl_color::Rgb8;
use sdl_datapub::{
    AcdcPortal, BlobStore, ExperimentRecord, FlowJob, FlowStats, PublishFlow, SampleRecord,
};
use sdl_desim::{RngHub, SimDuration, SimTime};
use sdl_instruments::{ActionData, ModuleKind, WellIndex};
use sdl_solvers::{ColorSolver, Observation};
use sdl_vision::{Detector, DetectorScratch, VisionError};
use sdl_wei::{
    Clock, Counters, Engine, Payload, SeqClock, WeiError, Workcell, WorkcellConfig, Workflow,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Canonical workflow documents (Figure 2).
pub const WF_NEWPLATE: &str = include_str!("../assets/cp_wf_newplate.yaml");
/// `cp_wf_mixcolor`.
pub const WF_MIXCOLOR: &str = include_str!("../assets/cp_wf_mixcolor.yaml");
/// `cp_wf_trashplate`.
pub const WF_TRASHPLATE: &str = include_str!("../assets/cp_wf_trashplate.yaml");
/// `cp_wf_replenish`.
pub const WF_REPLENISH: &str = include_str!("../assets/cp_wf_replenish.yaml");

/// Application-level errors.
#[derive(Debug)]
pub enum AppError {
    /// Workflow/engine failure.
    Wei(WeiError),
    /// Image-processing failure.
    Vision(VisionError),
    /// Protocol construction failure.
    Protocol(ProtocolError),
    /// Configuration problem discovered at startup.
    Setup(String),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Wei(e) => write!(f, "{e}"),
            AppError::Vision(e) => write!(f, "{e}"),
            AppError::Protocol(e) => write!(f, "{e}"),
            AppError::Setup(m) => write!(f, "setup error: {m}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<WeiError> for AppError {
    fn from(e: WeiError) -> Self {
        AppError::Wei(e)
    }
}
impl From<VisionError> for AppError {
    fn from(e: VisionError) -> Self {
        AppError::Vision(e)
    }
}
impl From<ProtocolError> for AppError {
    fn from(e: ProtocolError) -> Self {
        AppError::Protocol(e)
    }
}

/// One point of the Figure-4 trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Global sample number (1-based).
    pub sample: u32,
    /// Elapsed experiment time at measurement, minutes.
    pub elapsed_min: f64,
    /// This sample's score.
    pub score: f64,
    /// Best score so far.
    pub best: f64,
}

/// Everything a finished experiment reports.
pub struct ExperimentOutcome {
    /// Experiment identifier.
    pub experiment_id: String,
    /// Why the run stopped.
    pub termination: TerminationReason,
    /// Best score achieved.
    pub best_score: f64,
    /// Ratios of the best sample.
    pub best_ratios: Vec<f64>,
    /// Samples actually measured.
    pub samples_measured: u32,
    /// Wall duration on the virtual clock.
    pub duration: SimDuration,
    /// Best-so-far trajectory (Figure 4).
    pub trajectory: Vec<TrajectoryPoint>,
    /// Table-1 metrics.
    pub metrics: SdlMetrics,
    /// Raw command counters.
    pub counters: Counters,
    /// Plates consumed.
    pub plates_used: u32,
    /// Times the solver's surrogate fit degenerated and it silently fell
    /// back to random proposals (0 for solvers without a surrogate).
    pub solver_fallbacks: u64,
    /// The data portal holding every published record.
    pub portal: Arc<AcdcPortal>,
    /// The image blob store.
    pub store: Arc<BlobStore>,
    /// Publication pipeline statistics.
    pub flow_stats: FlowStats,
}

impl fmt::Debug for ExperimentOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExperimentOutcome")
            .field("experiment_id", &self.experiment_id)
            .field("termination", &self.termination)
            .field("best_score", &self.best_score)
            .field("samples_measured", &self.samples_measured)
            .field("duration", &self.duration.to_string())
            .finish_non_exhaustive()
    }
}

struct AppWorkflows {
    newplate: Workflow,
    mixcolor: Workflow,
    trashplate: Workflow,
    replenish: Workflow,
}

/// The application.
pub struct ColorPickerApp {
    /// Active configuration.
    pub config: AppConfig,
    engine: Engine,
    clock: SeqClock,
    solver: Box<dyn ColorSolver>,
    solver_rng: StdRng,
    compute_rng: StdRng,
    detector: Detector,
    workflows: AppWorkflows,
    vars: BTreeMap<String, String>,
    nest_slot: String,
    bank_name: String,
    history: Vec<Observation>,
    trajectory: Vec<TrajectoryPoint>,
    samples_done: u32,
    iteration: u32,
    plates_used: u32,
    portal: Arc<AcdcPortal>,
    store: Arc<BlobStore>,
    flow: Option<PublishFlow>,
}

impl ColorPickerApp {
    /// Build the application: instantiate the workcell, resolve module
    /// names, retarget the canonical workflows, start the publication flow.
    pub fn new(config: AppConfig) -> Result<ColorPickerApp, AppError> {
        let hub = RngHub::new(config.seed);
        let cell_cfg = WorkcellConfig::from_yaml(&config.workcell_yaml)?;

        // Discover one module of each required kind.
        let need = |kind: ModuleKind| -> Result<&sdl_wei::ModuleConfig, AppError> {
            cell_cfg.modules.iter().find(|m| m.kind == kind).ok_or_else(|| {
                AppError::Setup(format!("workcell lacks a {} module", kind.type_name()))
            })
        };
        let crane = need(ModuleKind::PlateCrane)?;
        let arm = need(ModuleKind::Manipulator)?;
        let handler = need(ModuleKind::LiquidHandler)?;
        let replenisher = need(ModuleKind::LiquidReplenisher)?;
        let camera = need(ModuleKind::Camera)?;

        use sdl_conf::ValueExt as _;
        let exchange = crane
            .config
            .opt_str("exchange")
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}.exchange", crane.name));
        let deck = handler
            .config
            .opt_str("deck")
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}.deck", handler.name));
        let nest = camera
            .config
            .opt_str("nest")
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}.nest", camera.name));

        let mut vars = BTreeMap::new();
        vars.insert("exchange".to_string(), exchange);
        vars.insert("deck".to_string(), deck);
        vars.insert("nest".to_string(), nest.clone());

        // Retarget canonical workflows onto the discovered module names.
        let mut rename = BTreeMap::new();
        rename.insert("sciclops".to_string(), crane.name.clone());
        rename.insert("pf400".to_string(), arm.name.clone());
        rename.insert("ot2".to_string(), handler.name.clone());
        rename.insert("barty".to_string(), replenisher.name.clone());
        rename.insert("camera".to_string(), camera.name.clone());
        let load = |src: &str| -> Result<Workflow, AppError> {
            Ok(Workflow::from_yaml(src)?.retarget(&rename))
        };
        let workflows = AppWorkflows {
            newplate: load(WF_NEWPLATE)?,
            mixcolor: load(WF_MIXCOLOR)?,
            trashplate: load(WF_TRASHPLATE)?,
            replenish: load(WF_REPLENISH)?,
        };
        let bank_name = handler.name.clone();

        let cell = Workcell::instantiate(cell_cfg, config.dyes.clone(), config.mix)?;
        let engine = Engine::new(cell, hub).with_faults(config.faults.clone());
        for wf in
            [&workflows.newplate, &workflows.mixcolor, &workflows.trashplate, &workflows.replenish]
        {
            engine.validate(wf)?;
        }

        let portal = Arc::new(AcdcPortal::new());
        let store = Arc::new(BlobStore::in_memory());
        let flow = PublishFlow::start(Arc::clone(&portal), Arc::clone(&store));

        let detector = Detector::new(sdl_vision::DetectorParams {
            flat_field: config.flat_field,
            ..sdl_vision::DetectorParams::default()
        });
        Ok(ColorPickerApp {
            solver: config.solver.build(config.dyes.len()),
            solver_rng: hub.stream("app.solver"),
            compute_rng: hub.stream("app.compute"),
            detector,
            workflows,
            vars,
            nest_slot: nest,
            bank_name,
            history: Vec::new(),
            trajectory: Vec::new(),
            samples_done: 0,
            iteration: 0,
            plates_used: 0,
            portal,
            store,
            flow: Some(flow),
            engine,
            clock: SeqClock::new(),
            config,
        })
    }

    /// The measurement history accumulated so far.
    pub fn history(&self) -> &[Observation] {
        &self.history
    }

    /// Resume an interrupted experiment from previously published records.
    ///
    /// Restores the measurement history (ratios, measured colors, scores)
    /// and the sample/iteration counters from `records`, so a crashed
    /// control host can continue where it stopped: the solver sees the full
    /// history and the budget accounting picks up at the right sample. The
    /// physical plate is gone after a crash, so the loop starts on a fresh
    /// plate; elapsed time restarts at the recovery (TWH semantics: the
    /// crash was an intervention).
    pub fn restore_from_records(&mut self, records: &[sdl_datapub::SampleRecord]) {
        let mut records: Vec<&sdl_datapub::SampleRecord> = records.iter().collect();
        records.sort_by_key(|r| r.sample);
        for r in &records {
            self.history.push(Observation {
                ratios: r.ratios.clone(),
                measured: Rgb8::new(r.measured[0], r.measured[1], r.measured[2]),
                score: r.score,
            });
        }
        self.samples_done = records.last().map(|r| r.sample).unwrap_or(0);
        self.iteration = records.last().map(|r| r.run).unwrap_or(0);
        self.trajectory = records
            .iter()
            .map(|r| TrajectoryPoint {
                sample: r.sample,
                elapsed_min: r.elapsed_s / 60.0,
                score: r.score,
                best: r.best_so_far,
            })
            .collect();
    }

    /// The engine (for inspection in tests and benches).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Swap in a custom decision procedure before [`ColorPickerApp::run`]
    /// (the solver RNG stream is unchanged). Used by the equivalence tests
    /// and the `hotpath` bench to pin a solver variant.
    pub fn replace_solver(&mut self, solver: Box<dyn ColorSolver>) {
        self.solver = solver;
    }

    fn base_payload(&self) -> Payload {
        let mut p = Payload::none();
        for (k, v) in &self.vars {
            p = p.var(k.clone(), v.clone());
        }
        p
    }

    fn fetch_new_plate(&mut self) -> Result<(), WeiError> {
        let payload = self.base_payload();
        self.engine.run_workflow(&mut self.clock, &self.workflows.newplate, &payload)?;
        self.plates_used += 1;
        Ok(())
    }

    fn trash_plate(&mut self) -> Result<(), WeiError> {
        let payload = self.base_payload();
        self.engine.run_workflow(&mut self.clock, &self.workflows.trashplate, &payload)?;
        Ok(())
    }

    fn replenish_if_needed(&mut self, demand: &[f64]) -> Result<(), WeiError> {
        let needs = {
            let bank = self
                .engine
                .workcell
                .world
                .bank(&self.bank_name)
                .expect("bank validated at startup");
            let low = bank.reservoirs.iter().any(|r| r.volume_ul < self.config.refill_watermark_ul);
            low || !bank.can_supply(demand)
        };
        if needs {
            let payload = self.base_payload();
            self.engine.run_workflow(&mut self.clock, &self.workflows.replenish, &payload)?;
        }
        Ok(())
    }

    /// Free wells on the plate currently staged at the camera nest.
    fn staged_plate_free_wells(&self, n: usize) -> Vec<WellIndex> {
        let world = &self.engine.workcell.world;
        match world.plate_at(&self.nest_slot) {
            Ok(Some(id)) => world.plate(id).map(|p| p.next_free(n)).unwrap_or_default(),
            _ => Vec::new(),
        }
    }

    /// Simulated compute step (solver + image processing on the "Compute"
    /// node of Figure 2).
    fn hold_compute(&mut self) {
        use rand::Rng;
        let jitter = 0.2f64;
        let secs =
            self.config.compute_seconds * (1.0 + self.compute_rng.gen_range(-jitter..=jitter));
        self.clock.wait(SimDuration::from_secs_f64(secs.max(0.0)));
    }

    /// Execute the full experiment.
    pub fn run(&mut self) -> Result<ExperimentOutcome, AppError> {
        self.run_with(&mut DetectorScratch::default())
    }

    /// Execute the full experiment over caller-owned detector scratch
    /// buffers, so campaign workers reuse one arena across scenarios
    /// instead of reallocating the vision working set per run.
    pub fn run_with(
        &mut self,
        scratch: &mut DetectorScratch,
    ) -> Result<ExperimentOutcome, AppError> {
        let start: SimTime = self.clock.now();

        // Announce the experiment on the portal.
        let experiment_id = self.config.experiment_id();
        if let Some(flow) = &self.flow {
            flow.publish(FlowJob {
                record: ExperimentRecord {
                    experiment_id: experiment_id.clone(),
                    name: self.config.experiment_name.clone(),
                    date: self.config.date.clone(),
                    target: self.config.target.channels(),
                    solver: self.config.solver.name().to_string(),
                    batch: self.config.batch,
                    sample_budget: self.config.sample_budget,
                }
                .to_value(),
                image: None,
            });
        }

        let termination = match self.main_loop(scratch) {
            Ok(t) => t,
            Err(AppError::Wei(WeiError::CommandAborted {
                cause: sdl_instruments::InstrumentError::OutOfPlates,
                ..
            })) => TerminationReason::OutOfPlates,
            Err(e) => return Err(e),
        };

        // Final trashplate (Figure 2: runs again to finalize) if a plate is
        // still staged.
        if matches!(self.engine.workcell.world.plate_at(&self.nest_slot), Ok(Some(_))) {
            self.trash_plate()?;
        }

        let flow_stats = match self.flow.take() {
            Some(flow) => flow.close(),
            None => FlowStats::default(),
        };

        let end = self.clock.now();
        let best = sdl_solvers::best_observation(&self.history);
        let (best_score, best_ratios) =
            best.map(|o| (o.score, o.ratios.clone())).unwrap_or((f64::INFINITY, Vec::new()));
        let metrics = SdlMetrics::compute(
            &self.engine.history,
            &self.engine.counters,
            &self.engine.reliability,
            start,
            end,
            self.samples_done,
        );

        Ok(ExperimentOutcome {
            experiment_id,
            termination,
            best_score,
            best_ratios,
            samples_measured: self.samples_done,
            duration: end - start,
            trajectory: self.trajectory.clone(),
            metrics,
            counters: self.engine.counters,
            plates_used: self.plates_used,
            solver_fallbacks: self.solver.degenerate_fallbacks(),
            portal: Arc::clone(&self.portal),
            store: Arc::clone(&self.store),
            flow_stats,
        })
    }

    fn main_loop(&mut self, scratch: &mut DetectorScratch) -> Result<TerminationReason, AppError> {
        self.fetch_new_plate()?;
        loop {
            // Loop check: enough wells in budget? (Figure 2)
            let remaining = self.config.sample_budget - self.samples_done;
            if remaining == 0 {
                return Ok(TerminationReason::BudgetExhausted);
            }

            // Check: plate full? Batches are never split across plates: a
            // plate without room for a full batch is swapped (the remainder
            // of its wells is wasted), which is how the paper's 12 × 15
            // portal structure arises on 96-well plates.
            let want = remaining.min(self.config.batch) as usize;
            let mut wells = self.staged_plate_free_wells(want);
            if wells.len() < want {
                let capacity = self
                    .engine
                    .workcell
                    .world
                    .plate_at(&self.nest_slot)
                    .ok()
                    .flatten()
                    .and_then(|id| self.engine.workcell.world.plate(id).ok())
                    .map(|p| p.well_count())
                    .unwrap_or(0);
                if wells.len() < want.min(capacity.max(1)) {
                    self.trash_plate()?;
                    self.fetch_new_plate()?;
                    wells = self.staged_plate_free_wells(want);
                }
            }
            let b = wells.len().min(want);
            if b == 0 {
                return Err(AppError::Setup("fresh plate has no usable wells".into()));
            }
            let wells = &wells[..b];

            // Solver proposes (Figure 2: Solver.Run_Iteration).
            let ratios =
                self.solver.propose(self.config.target, &self.history, b, &mut self.solver_rng);
            debug_assert_eq!(ratios.len(), b);
            let protocol = build_protocol(&ratios, wells, &self.config.dyes)?;

            // Check: refill color?
            let demand = protocol.demand_ul(self.config.dyes.len());
            self.replenish_if_needed(&demand)?;

            // Robotic half of the iteration.
            self.iteration += 1;
            let payload = self.base_payload().var("iteration", self.iteration.to_string());
            let payload = Payload { protocol: Some(protocol), ..payload };
            let out =
                self.engine.run_workflow(&mut self.clock, &self.workflows.mixcolor, &payload)?;

            // Compute: image processing + next-proposal time.
            self.hold_compute();

            // The frame rides out of the workflow as a shared handle — no
            // pixel copy — and is dropped at the end of this iteration,
            // which lets the camera recycle its buffer for the next batch.
            let image = out
                .data
                .iter()
                .find_map(|(_, d)| match d {
                    ActionData::Image(img) => Some(Arc::clone(img)),
                    _ => None,
                })
                .ok_or_else(|| AppError::Setup("camera step returned no image".into()))?;
            let reading = self.detector.detect_with(&image, scratch)?;

            // Grade each new well and publish.
            let image_bytes =
                if self.config.publish_images { Some(Bytes::from(image.to_bmp())) } else { None };
            let iteration_log = out.log.to_value();
            for (i, (ratio, well)) in ratios.iter().zip(wells).enumerate() {
                let measured: Rgb8 = reading
                    .well(well.row, well.col)
                    .map(|w| w.color)
                    .ok_or_else(|| AppError::Setup(format!("no reading for well {well}")))?;
                let score = self.config.metric.between(measured, self.config.target);
                self.history.push(Observation { ratios: ratio.clone(), measured, score });
                self.samples_done += 1;
                let best =
                    sdl_solvers::best_observation(&self.history).map(|o| o.score).unwrap_or(score);
                self.trajectory.push(TrajectoryPoint {
                    sample: self.samples_done,
                    elapsed_min: self.clock.now().as_minutes(),
                    score,
                    best,
                });
                if let Some(flow) = &self.flow {
                    let volumes = sdl_color::Recipe::from_ratios(ratio, &self.config.dyes)
                        .map(|r| r.volumes_ul().to_vec())
                        .unwrap_or_default();
                    let mut record = SampleRecord {
                        experiment_id: self.config.experiment_id(),
                        run: self.iteration,
                        sample: self.samples_done,
                        well: well.to_string(),
                        ratios: ratio.clone(),
                        volumes_ul: volumes,
                        measured: measured.channels(),
                        target: self.config.target.channels(),
                        score,
                        best_so_far: best,
                        elapsed_s: self.clock.now().as_secs_f64(),
                        image_ref: None,
                    }
                    .to_value();
                    // "The data created includes … the timing of each step"
                    // (§2.3): the iteration's workflow log rides with its
                    // first sample.
                    if i == 0 {
                        record.set("timing", iteration_log.clone());
                    }
                    flow.publish(FlowJob { record, image: image_bytes.clone() });
                }
            }

            // Check: target matched?
            if let Some(threshold) = self.config.match_threshold {
                let best = sdl_solvers::best_observation(&self.history).map(|o| o.score);
                if let Some(best) = best {
                    if best <= threshold {
                        return Ok(TerminationReason::TargetMatched { score: best });
                    }
                }
            }
        }
    }
}
