//! Retry budgets and the bounded exponential backoff schedule used for
//! remote-worker communication.
//!
//! A [`RetryPolicy`] is shared by two layers:
//!
//! * [`RemoteBackend`](crate::RemoteBackend) uses it standalone — connect
//!   and read timeouts plus a per-request retry budget, so one flaky accept
//!   or a reaped keep-alive connection no longer hard-fails a scenario;
//! * the campaign scheduler uses it to pace worker health probes and decide
//!   when a worker has died (every in-budget retry is exhausted).
//!
//! The schedule is deterministic: retry `k` (1-based) waits
//! `base_backoff * 2^(k-1)`, clamped to `max_backoff`. No jitter — the
//! campaign engine's determinism contract extends to *when* it gives up.

use std::time::Duration;

/// Connect/read timeouts and the bounded exponential-backoff retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read timeout (a worker that goes silent for longer is dead).
    pub read_timeout: Duration,
    /// Retries after the first attempt (`0` = fail on the first error).
    pub retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff wait.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// The standalone `RemoteBackend` default: patient reads (batches take
    /// real lab time), three quick reconnect attempts.
    fn default() -> RetryPolicy {
        RetryPolicy {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(120),
            retries: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// No retries at all: fail on the first error (the pre-policy
    /// behaviour, useful in tests that want fast, loud failures).
    pub fn none() -> RetryPolicy {
        RetryPolicy { retries: 0, ..RetryPolicy::default() }
    }

    /// A snappy fail-over profile for pooled schedulers: short connect
    /// timeout and tight backoff, so a dead worker is detected and its work
    /// re-queued quickly instead of stalling the campaign.
    pub fn failover() -> RetryPolicy {
        RetryPolicy {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(120),
            retries: 2,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(500),
        }
    }

    /// Total attempts (first try + retries).
    pub fn attempts(&self) -> u32 {
        self.retries.saturating_add(1)
    }

    /// The wait before retry `k` (1-based): `base * 2^(k-1)`, clamped to
    /// [`max_backoff`](RetryPolicy::max_backoff). `backoff(0)` is zero (no
    /// wait before the first attempt).
    pub fn backoff(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        // 2^(k-1) saturates well before the clamp can miss it.
        let factor = 1u32.checked_shl(retry - 1).unwrap_or(u32::MAX);
        self.base_backoff.checked_mul(factor).unwrap_or(self.max_backoff).min(self.max_backoff)
    }

    /// The full wait schedule, one entry per in-budget retry.
    pub fn schedule(&self) -> Vec<Duration> {
        (1..=self.retries).map(|k| self.backoff(k)).collect()
    }

    /// Sum of every in-budget backoff wait — the worst-case added latency
    /// before the policy gives up.
    pub fn total_backoff(&self) -> Duration {
        self.schedule().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_clamps() {
        let p = RetryPolicy {
            retries: 6,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(300),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(
            p.schedule(),
            vec![
                Duration::from_millis(50),
                Duration::from_millis(100),
                Duration::from_millis(200),
                Duration::from_millis(300), // clamped
                Duration::from_millis(300),
                Duration::from_millis(300),
            ]
        );
        assert_eq!(p.total_backoff(), Duration::from_millis(1250));
        assert_eq!(p.attempts(), 7);
    }

    #[test]
    fn zero_budget_has_empty_schedule() {
        let p = RetryPolicy::none();
        assert_eq!(p.retries, 0);
        assert!(p.schedule().is_empty());
        assert_eq!(p.total_backoff(), Duration::ZERO);
        assert_eq!(p.attempts(), 1);
    }

    #[test]
    fn huge_retry_counts_saturate_instead_of_overflowing() {
        let p = RetryPolicy {
            retries: 500,
            base_backoff: Duration::from_secs(1),
            max_backoff: Duration::from_secs(7),
            ..RetryPolicy::default()
        };
        // 2^499 overflows every integer width in sight; the schedule must
        // still be the clamped ceiling, not a panic.
        assert_eq!(p.backoff(500), Duration::from_secs(7));
        assert_eq!(p.backoff(40), Duration::from_secs(7));
    }

    #[test]
    fn failover_profile_is_snappier_than_default() {
        let d = RetryPolicy::default();
        let f = RetryPolicy::failover();
        assert!(f.connect_timeout < d.connect_timeout);
        assert!(f.total_backoff() < d.total_backoff());
    }
}
