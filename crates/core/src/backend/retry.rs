//! Retry budgets and the bounded exponential backoff schedule used for
//! remote-worker communication.
//!
//! A [`RetryPolicy`] is shared by two layers:
//!
//! * [`RemoteBackend`](crate::RemoteBackend) uses it standalone — connect
//!   and read timeouts plus a per-request retry budget, so one flaky accept
//!   or a reaped keep-alive connection no longer hard-fails a scenario;
//! * the campaign scheduler uses it to pace worker health probes and decide
//!   when a worker has died (every in-budget retry is exhausted).
//!
//! The schedule is deterministic: retry `k` (1-based) waits
//! `base_backoff * 2^(k-1)`, clamped to `max_backoff`. Jitter, when a
//! policy opts in via [`RetryPolicy::with_jitter`], is *seed-derived*: a
//! counter-based hash of `(jitter_seed, k)` shaves up to `jitter_permille`
//! ‰ off each wait, so a pool of workers hammering the same dead peer
//! de-synchronizes without giving up the campaign engine's determinism
//! contract — the same seed always waits the same schedule.

use rand::counter;
use std::time::Duration;

/// Connect/read timeouts and the bounded exponential-backoff retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read timeout (a worker that goes silent for longer is dead).
    pub read_timeout: Duration,
    /// Retries after the first attempt (`0` = fail on the first error).
    pub retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff wait.
    pub max_backoff: Duration,
    /// How much deterministic jitter to shave off each wait, in permille
    /// of the exponential value (`0` = exact schedule, `1000` = anywhere
    /// down to zero). Values above 1000 clamp to 1000.
    pub jitter_permille: u32,
    /// Seed for the jitter hash; two policies with different seeds spread
    /// their retries apart, same seed reproduces the same waits.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// The standalone `RemoteBackend` default: patient reads (batches take
    /// real lab time), three quick reconnect attempts.
    fn default() -> RetryPolicy {
        RetryPolicy {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(120),
            retries: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter_permille: 0,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: fail on the first error (the pre-policy
    /// behaviour, useful in tests that want fast, loud failures).
    pub fn none() -> RetryPolicy {
        RetryPolicy { retries: 0, ..RetryPolicy::default() }
    }

    /// A snappy fail-over profile for pooled schedulers: short connect
    /// timeout and tight backoff, so a dead worker is detected and its work
    /// re-queued quickly instead of stalling the campaign.
    pub fn failover() -> RetryPolicy {
        RetryPolicy {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(120),
            retries: 2,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(500),
            ..RetryPolicy::default()
        }
    }

    /// Opt into deterministic jitter: each wait is shortened by a hashed
    /// fraction of itself, up to `permille`/1000. Give every worker in a
    /// pool a distinct `seed` (e.g. derived from its index) and their
    /// retries against a shared dead peer spread out instead of
    /// thundering in lockstep.
    pub fn with_jitter(mut self, permille: u32, seed: u64) -> RetryPolicy {
        self.jitter_permille = permille;
        self.jitter_seed = seed;
        self
    }

    /// Total attempts (first try + retries).
    pub fn attempts(&self) -> u32 {
        self.retries.saturating_add(1)
    }

    /// The wait before retry `k` (1-based): `base * 2^(k-1)`, clamped to
    /// [`max_backoff`](RetryPolicy::max_backoff), minus the deterministic
    /// jitter fraction if the policy opted in. `backoff(0)` is zero (no
    /// wait before the first attempt). With jitter the wait stays within
    /// `[clamped * (1 - permille/1000), clamped]` — never above the clamp,
    /// never negative.
    pub fn backoff(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        // 2^(k-1) saturates well before the clamp can miss it.
        let factor = 1u32.checked_shl(retry - 1).unwrap_or(u32::MAX);
        let clamped =
            self.base_backoff.checked_mul(factor).unwrap_or(self.max_backoff).min(self.max_backoff);
        let permille = self.jitter_permille.min(1000) as u64;
        if permille == 0 {
            return clamped;
        }
        // Shave a hashed fraction (0..=permille ‰) off the wait. Jitter
        // spreads *downward* so the clamp stays an absolute ceiling.
        let frac = counter::hash(self.jitter_seed, retry as u64) % (permille + 1);
        let nanos = clamped.as_nanos().min(u64::MAX as u128) as u64;
        let cut = ((nanos as u128 * frac as u128) / 1000) as u64;
        Duration::from_nanos(nanos - cut)
    }

    /// The wait before retrying a load-shed request (HTTP 429/503):
    /// honors the server's `Retry-After` hint when one was sent, clamped
    /// to `4 × max_backoff` so a confused server cannot park a client
    /// indefinitely; without a hint it falls back to the plain
    /// exponential [`backoff`](RetryPolicy::backoff) for retry `k`.
    pub fn backpressure_delay(&self, hint: Option<Duration>, retry: u32) -> Duration {
        match hint {
            Some(hint) => hint.min(self.max_backoff.saturating_mul(4)),
            None => self.backoff(retry),
        }
    }

    /// The full wait schedule, one entry per in-budget retry.
    pub fn schedule(&self) -> Vec<Duration> {
        (1..=self.retries).map(|k| self.backoff(k)).collect()
    }

    /// Sum of every in-budget backoff wait — the worst-case added latency
    /// before the policy gives up.
    pub fn total_backoff(&self) -> Duration {
        self.schedule().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_clamps() {
        let p = RetryPolicy {
            retries: 6,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(300),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(
            p.schedule(),
            vec![
                Duration::from_millis(50),
                Duration::from_millis(100),
                Duration::from_millis(200),
                Duration::from_millis(300), // clamped
                Duration::from_millis(300),
                Duration::from_millis(300),
            ]
        );
        assert_eq!(p.total_backoff(), Duration::from_millis(1250));
        assert_eq!(p.attempts(), 7);
    }

    #[test]
    fn zero_budget_has_empty_schedule() {
        let p = RetryPolicy::none();
        assert_eq!(p.retries, 0);
        assert!(p.schedule().is_empty());
        assert_eq!(p.total_backoff(), Duration::ZERO);
        assert_eq!(p.attempts(), 1);
    }

    #[test]
    fn huge_retry_counts_saturate_instead_of_overflowing() {
        let p = RetryPolicy {
            retries: 500,
            base_backoff: Duration::from_secs(1),
            max_backoff: Duration::from_secs(7),
            ..RetryPolicy::default()
        };
        // 2^499 overflows every integer width in sight; the schedule must
        // still be the clamped ceiling, not a panic.
        assert_eq!(p.backoff(500), Duration::from_secs(7));
        assert_eq!(p.backoff(40), Duration::from_secs(7));
    }

    #[test]
    fn jittered_schedule_stays_within_clamp_bounds() {
        let exact = RetryPolicy {
            retries: 8,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(300),
            ..RetryPolicy::default()
        };
        for seed in 0..64u64 {
            let p = exact.with_jitter(250, seed);
            for k in 1..=p.retries {
                let ceiling = exact.backoff(k);
                let floor = ceiling.mul_f64(0.75);
                let wait = p.backoff(k);
                assert!(
                    wait <= ceiling && wait >= floor,
                    "seed {seed} retry {k}: {wait:?} outside [{floor:?}, {ceiling:?}]"
                );
                assert!(wait <= p.max_backoff);
            }
            // Deterministic: the same seed always waits the same schedule.
            assert_eq!(p.schedule(), exact.with_jitter(250, seed).schedule());
        }
        // Full-range jitter still never exceeds the exponential value.
        let wild = exact.with_jitter(1000, 9);
        for k in 1..=wild.retries {
            assert!(wild.backoff(k) <= exact.backoff(k));
        }
        // Permille values above 1000 clamp instead of underflowing.
        let over = exact.with_jitter(5000, 3);
        for k in 1..=over.retries {
            assert!(over.backoff(k) <= exact.backoff(k));
        }
    }

    #[test]
    fn zero_jitter_is_the_exact_schedule() {
        let p = RetryPolicy {
            retries: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(300),
            ..RetryPolicy::default()
        };
        assert_eq!(p.schedule(), p.with_jitter(0, 77).schedule());
    }

    #[test]
    fn distinct_seeds_spread_the_herd() {
        let p = RetryPolicy {
            retries: 4,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
            ..RetryPolicy::default()
        };
        // At least one pair of workers must disagree on some wait —
        // that's the whole point of jitter.
        let schedules: Vec<_> = (0..8u64).map(|w| p.with_jitter(500, w).schedule()).collect();
        assert!(schedules.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn backpressure_delay_honors_clamped_retry_after() {
        let p = RetryPolicy {
            retries: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        // An in-range hint is used verbatim.
        assert_eq!(
            p.backpressure_delay(Some(Duration::from_millis(300)), 1),
            Duration::from_millis(300)
        );
        // A hostile hint clamps to 4 × max_backoff.
        assert_eq!(
            p.backpressure_delay(Some(Duration::from_secs(3600)), 1),
            Duration::from_millis(800)
        );
        // No hint: the plain exponential schedule.
        assert_eq!(p.backpressure_delay(None, 2), p.backoff(2));
    }

    #[test]
    fn failover_profile_is_snappier_than_default() {
        let d = RetryPolicy::default();
        let f = RetryPolicy::failover();
        assert!(f.connect_timeout < d.connect_timeout);
        assert!(f.total_backoff() < d.total_backoff());
    }
}
