//! Farming batches out to a worker process over HTTP.
//!
//! [`RemoteBackend`] speaks the `POST /v1/*` batch-execution protocol that
//! `sdl-lab serve` hosts (see `sdl-portal-server`): `open` creates a
//! simulated-lab session on the worker from this scenario's configuration,
//! `submit_batch` round-trips one batch of proposals for one batch of
//! measurements, and `close` tears the session down and collects the final
//! telemetry. All payloads go through [`crate::backend::wire`], so a
//! campaign executed remotely is bit-identical to the same campaign
//! executed in-process.
//!
//! The embedded HTTP client is deliberately tiny (std-only, keep-alive,
//! `Content-Length`-framed — the dialect the portal server speaks).

use crate::app::AppError;
use crate::backend::RetryPolicy;
use crate::backend::{wire, BackendCaps, BackendClose, Batch, BatchResult, LabBackend};
use crate::chaos::{ChaosPolicy, ChaosStream};
use crate::config::AppConfig;
use sdl_conf::{from_json, to_json, Value, ValueExt};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A lab backend executing on a remote `sdl-lab serve` worker.
pub struct RemoteBackend {
    addr: String,
    config: AppConfig,
    retry: RetryPolicy,
    stats: RemoteStats,
    conn: Option<Conn>,
    session: Option<String>,
    caps: Option<BackendCaps>,
    chaos: Option<ChaosStream>,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Wire-level accounting for one [`RemoteBackend`]: how many requests went
/// out and how much retrying it took to get them answered. The campaign
/// scheduler folds these into its per-worker [`SchedulerReport`] counters.
///
/// [`SchedulerReport`]: crate::SchedulerReport
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Requests answered (each counted once, however many resends it took).
    pub posts: u64,
    /// Requests resent on a fresh connection after a provably-unread send.
    pub resends: u64,
    /// TCP connect attempts that failed and were retried in-budget.
    pub reconnects: u64,
    /// Chaos-injected connect refusals ([`ChaosPolicy::connect`]).
    pub chaos_connects: u64,
    /// Chaos-injected post-send disconnects ([`ChaosPolicy::disconnect`]).
    pub chaos_disconnects: u64,
    /// Chaos-injected read timeouts ([`ChaosPolicy::timeout`]).
    pub chaos_timeouts: u64,
    /// Chaos-synthesized HTTP 500s ([`ChaosPolicy::http500`]).
    pub chaos_http500s: u64,
    /// Chaos-discarded responses forcing replay ([`ChaosPolicy::replay`]).
    pub chaos_replays: u64,
    /// Chaos-trickled request writes ([`ChaosPolicy::slow_reader`]).
    pub chaos_slow_reads: u64,
    /// Load-shed responses received (429/503 + `Retry-After`): the worker
    /// was alive but over capacity, and this client backed off.
    pub sheds: u64,
}

impl RemoteStats {
    /// Total faults injected into this backend by its chaos stream.
    pub fn injected(&self) -> u64 {
        self.chaos_connects
            + self.chaos_disconnects
            + self.chaos_timeouts
            + self.chaos_http500s
            + self.chaos_replays
            + self.chaos_slow_reads
    }
}

/// Whether a failed POST is safe to resend: `Unsent` means the worker
/// provably never read the request; `Injected` is a chaos fault on a
/// provably resend-safe path (never sent, or sent where the worker's
/// idempotent replay cache absorbs the duplicate); `Throttled` is a
/// 429/503 load shed — the worker answered, is healthy, and asked us to
/// slow down (always resend-safe: the request was refused, not executed).
enum PostError {
    Unsent(AppError),
    Injected(AppError),
    Throttled(AppError),
    Fatal(AppError),
}

impl RemoteBackend {
    /// A backend talking to `addr` (`host:port`, optionally prefixed with
    /// `http://`). The configuration is shipped to the worker at open.
    pub fn new(addr: impl AsRef<str>, config: AppConfig) -> RemoteBackend {
        let addr =
            addr.as_ref().trim().trim_start_matches("http://").trim_end_matches('/').to_string();
        RemoteBackend {
            addr,
            config,
            retry: RetryPolicy::default(),
            stats: RemoteStats::default(),
            conn: None,
            session: None,
            caps: None,
            chaos: None,
        }
    }

    /// Replace the default [`RetryPolicy`] (connect/read timeouts and the
    /// retry budget for both connecting and resending unread requests).
    pub fn with_retry(mut self, retry: RetryPolicy) -> RemoteBackend {
        self.retry = retry;
        self
    }

    /// Attach a chaos stream: every request rolls `policy`'s client-side
    /// faults in a fixed order, deterministically in `(policy.seed, key)`.
    /// Key the stream with [`crate::chaos::stream_key`] so each
    /// worker × scenario × attempt gets an independent, replayable fault
    /// schedule. A no-op policy attaches nothing.
    pub fn with_chaos(mut self, policy: ChaosPolicy, key: u64) -> RemoteBackend {
        self.chaos = if policy.is_noop() { None } else { Some(policy.stream(key)) };
        self
    }

    /// The worker address this backend talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Wire-level request/retry accounting so far.
    pub fn stats(&self) -> RemoteStats {
        self.stats
    }

    /// Establish (or reuse) the keep-alive connection. Connect failures are
    /// retried within the policy budget with exponential backoff; an
    /// exhausted budget is a *transport* error — the worker never saw any
    /// request, so a scheduler may safely hand the work elsewhere.
    fn connect(&mut self) -> Result<&mut Conn, AppError> {
        if self.conn.is_none() {
            let stream = self.connect_stream()?;
            stream.set_nodelay(true).ok();
            stream
                .set_read_timeout(Some(self.retry.read_timeout))
                .map_err(|e| AppError::Transport(e.to_string()))?;
            let reader =
                BufReader::new(stream.try_clone().map_err(|e| AppError::Transport(e.to_string()))?);
            self.conn = Some(Conn { reader, writer: stream });
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    fn connect_stream(&mut self) -> Result<TcpStream, AppError> {
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..self.retry.attempts() {
            std::thread::sleep(self.retry.backoff(attempt));
            if attempt > 0 {
                self.stats.reconnects += 1;
            }
            // Chaos: refuse this connect attempt on schedule. The refusal
            // burns budget exactly like a real ECONNREFUSED.
            if let Some(chaos) = self.chaos.as_mut() {
                let p = chaos.policy().connect;
                if chaos.fires(p) {
                    self.stats.chaos_connects += 1;
                    last = Some(std::io::Error::new(
                        std::io::ErrorKind::ConnectionRefused,
                        "chaos: injected connect refusal",
                    ));
                    continue;
                }
            }
            // Resolve per attempt: a worker restarting behind a DNS name may
            // come back on a different address.
            let addrs = match self.addr.to_socket_addrs() {
                Ok(addrs) => addrs,
                Err(e) => {
                    last = Some(e);
                    continue;
                }
            };
            for addr in addrs {
                match TcpStream::connect_timeout(&addr, self.retry.connect_timeout) {
                    Ok(stream) => return Ok(stream),
                    Err(e) => last = Some(e),
                }
            }
        }
        let cause = last.map(|e| e.to_string()).unwrap_or_else(|| "no addresses resolved".into());
        Err(AppError::Transport(format!(
            "connect {}: {cause} (after {} attempts)",
            self.addr,
            self.retry.attempts()
        )))
    }

    /// POST `body` to `path`, parse the JSON response.
    ///
    /// The worker reaps idle keep-alive connections, so a request that
    /// provably never reached it — the write failed, or the connection
    /// closed before a single response byte — is resent on a fresh
    /// connection, up to the policy's retry budget with exponential
    /// backoff. Anything after the first response byte is never retried.
    /// (Resending is additionally safe on the worker side: the lab host
    /// replays a duplicate run number's cached response instead of
    /// executing the batch twice.)
    fn post(&mut self, path: &str, body: &Value) -> Result<Value, AppError> {
        let payload = to_json(body);
        let mut retry = 0u32;
        loop {
            match self.try_post(path, &payload) {
                Ok(v) => {
                    self.stats.posts += 1;
                    return Ok(v);
                }
                Err(PostError::Unsent(_)) | Err(PostError::Injected(_))
                    if retry < self.retry.retries =>
                {
                    retry += 1;
                    self.stats.resends += 1;
                    self.conn = None; // reconnect and resend
                    std::thread::sleep(self.retry.backoff(retry));
                }
                Err(PostError::Throttled(e)) if retry < self.retry.retries => {
                    // Load shed: the worker answered 429/503, so the
                    // keep-alive connection is still in sync — wait out the
                    // server's Retry-After (clamped by the policy) and
                    // resend on the same connection.
                    retry += 1;
                    std::thread::sleep(self.retry.backpressure_delay(e.retry_after(), retry));
                }
                Err(PostError::Unsent(e))
                | Err(PostError::Injected(e))
                | Err(PostError::Throttled(e))
                | Err(PostError::Fatal(e)) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
    }

    fn try_post(&mut self, path: &str, payload: &str) -> Result<Value, PostError> {
        let addr = self.addr.clone();
        // Chaos rolls happen up front, in a fixed order, every try — five
        // counter ticks per post whatever the outcome — so a fault schedule
        // is a pure function of the request sequence, not of timing.
        let (inject_timeout, inject_500, inject_disconnect, inject_replay, inject_slow) =
            match self.chaos.as_mut() {
                Some(chaos) => {
                    let p = *chaos.policy();
                    (
                        chaos.fires(p.timeout),
                        chaos.fires(p.http500),
                        chaos.fires(p.disconnect),
                        chaos.fires(p.replay),
                        chaos.fires(p.slow_reader),
                    )
                }
                None => (false, false, false, false, false),
            };
        if inject_timeout {
            // A silent worker: surfaces as a transport error so the
            // scheduler evicts and re-drives the scenario elsewhere.
            self.stats.chaos_timeouts += 1;
            self.conn = None;
            return Err(PostError::Fatal(AppError::Transport(format!(
                "{addr}{path}: chaos: injected read timeout"
            ))));
        }
        if inject_500 {
            // Synthesized *instead of* sending, so the resend is a plain
            // first send — retry-safe by construction, unlike a real 5xx.
            self.stats.chaos_http500s += 1;
            return Err(PostError::Injected(AppError::Transport(format!(
                "{addr}{path}: chaos: injected HTTP 500"
            ))));
        }
        // Socket-level failures are transport errors: whether the request
        // completed is unknowable from here, but idempotent replay on the
        // worker makes a re-drive safe.
        let err = |e: std::io::Error| AppError::Transport(format!("{addr}{path}: {e}"));
        let stall = self.chaos.as_ref().map(|c| Duration::from_millis(c.policy().stall_ms));
        if inject_slow {
            self.stats.chaos_slow_reads += 1;
        }
        let conn = self.connect().map_err(PostError::Unsent)?;
        if inject_slow {
            // A slow reader: trickle the request out in two halves with a
            // stall in between, exercising the worker's header/body read
            // deadlines. The request still completes, so this is
            // retry-safe by construction.
            let head = format!(
                "POST {path} HTTP/1.1\r\nHost: lab\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n",
                payload.len()
            );
            let (first, rest) = payload.as_bytes().split_at(payload.len() / 2);
            conn.writer.write_all(head.as_bytes()).map_err(|e| PostError::Unsent(err(e)))?;
            conn.writer.write_all(first).map_err(|e| PostError::Unsent(err(e)))?;
            conn.writer.flush().map_err(|e| PostError::Unsent(err(e)))?;
            std::thread::sleep(stall.unwrap_or(Duration::from_millis(25)));
            conn.writer.write_all(rest).map_err(|e| PostError::Unsent(err(e)))?;
        } else {
            write!(
                conn.writer,
                "POST {path} HTTP/1.1\r\nHost: lab\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n{payload}",
                payload.len()
            )
            .map_err(|e| PostError::Unsent(err(e)))?;
        }
        conn.writer.flush().map_err(|e| PostError::Unsent(err(e)))?;

        if inject_disconnect {
            // Drop the connection after the request went out but before
            // reading the answer: the worker executes the batch, and the
            // resend exercises its duplicate-response replay cache.
            self.conn = None;
            self.stats.chaos_disconnects += 1;
            return Err(PostError::Injected(AppError::Transport(format!(
                "{addr}{path}: chaos: injected mid-body disconnect"
            ))));
        }

        // Status line. A clean close (or reset) before the first byte means
        // the worker reaped the idle connection without seeing the request.
        let mut line = String::new();
        match conn.reader.read_line(&mut line) {
            Ok(0) => {
                return Err(PostError::Unsent(AppError::Transport(format!(
                    "{addr}{path}: connection closed before request was read"
                ))))
            }
            Ok(_) => {}
            Err(e)
                if line.is_empty()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::BrokenPipe
                            | std::io::ErrorKind::UnexpectedEof
                    ) =>
            {
                return Err(PostError::Unsent(err(e)))
            }
            Err(e) => return Err(PostError::Fatal(err(e))),
        }
        let status: u16 =
            line.split_ascii_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                PostError::Fatal(AppError::Backend(format!("{addr}{path}: bad status line")))
            })?;
        // Headers: Content-Length frames the body; Retry-After (seconds
        // form) is the server's backoff hint on a load shed.
        let mut length: Option<usize> = None;
        let mut retry_after: Option<u64> = None;
        loop {
            let mut header = String::new();
            conn.reader.read_line(&mut header).map_err(|e| PostError::Fatal(err(e)))?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    length = value.trim().parse().ok();
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.trim().parse().ok();
                }
            }
        }
        let length = length.ok_or_else(|| {
            PostError::Fatal(AppError::Backend(format!("{addr}{path}: missing content-length")))
        })?;
        let mut body = vec![0u8; length];
        conn.reader.read_exact(&mut body).map_err(|e| PostError::Fatal(err(e)))?;
        if inject_replay {
            // Throw the (perfectly good) response away and ask again: the
            // worker must serve the duplicate from its replay cache, not
            // re-execute the batch.
            self.conn = None;
            self.stats.chaos_replays += 1;
            return Err(PostError::Injected(AppError::Transport(format!(
                "{addr}{path}: chaos: discarded response to force replay"
            ))));
        }
        let text = String::from_utf8_lossy(&body);
        if status == 429 || status == 503 {
            // A load shed, not a failure: the worker is alive and asked us
            // to slow down. Surfaced as backpressure so the caller throttles
            // this worker instead of evicting it.
            self.stats.sheds += 1;
            return Err(PostError::Throttled(AppError::Backpressure {
                message: format!("{addr}{path}: HTTP {status}: {}", text.trim()),
                retry_after: retry_after.map(Duration::from_secs),
            }));
        }
        if status >= 400 {
            return Err(PostError::Fatal(AppError::Backend(format!(
                "{addr}{path}: HTTP {status}: {}",
                text.trim()
            ))));
        }
        from_json(&text).map_err(|e| {
            PostError::Fatal(AppError::Backend(format!("{addr}{path}: bad response JSON: {e}")))
        })
    }

    fn session_path(&self, route: &str) -> Result<String, AppError> {
        let session =
            self.session.as_ref().ok_or_else(|| AppError::Backend("backend not opened".into()))?;
        Ok(format!("/v1/{route}?session={session}"))
    }
}

impl LabBackend for RemoteBackend {
    fn kind(&self) -> &'static str {
        "remote"
    }

    fn open(&mut self) -> Result<BackendCaps, AppError> {
        if let Some(caps) = self.caps {
            return Ok(caps);
        }
        // The worker instantiates a simulated lab from the scenario config.
        // The solver never runs worker-side, so a custom registered solver
        // name (which the worker process may not know) is sent as its
        // built-in fallback kind.
        let mut config = self.config.to_value();
        config.set("solver", self.config.solver.name());
        let response = self.post("/v1/experiments", &config)?;
        let session = response
            .opt_str("session")
            .ok_or_else(|| AppError::Backend("worker returned no session id".into()))?
            .to_string();
        let caps = wire::caps_from_value(&response)
            .map_err(|e| AppError::Backend(format!("bad capabilities: {e}")))?;
        self.session = Some(session);
        self.caps = Some(caps);
        // The worker registers the session even when the very first plate
        // fetch ran the crane dry, tunneling the abort as a structured
        // error: surface it as the same termination criterion the
        // in-process backend raises (the session stays open for `close`).
        if response.opt_str("error_kind") == Some("out_of_plates") {
            return Err(out_of_plates_error());
        }
        Ok(caps)
    }

    fn capabilities(&self) -> Option<BackendCaps> {
        self.caps
    }

    fn submit_batch(&mut self, batch: &Batch) -> Result<BatchResult, AppError> {
        let path = self.session_path("batch")?;
        let response = self.post(&path, &wire::batch_to_value(batch))?;
        if let Some(kind) = response.opt_str("error_kind") {
            // Lab-side aborts tunnel through as structured errors so the
            // session can map them onto termination criteria.
            if kind == "out_of_plates" {
                return Err(out_of_plates_error());
            }
        }
        wire::result_from_value(&response)
            .map_err(|e| AppError::Backend(format!("bad batch result: {e}")))
    }

    fn close(&mut self, samples_measured: u32) -> Result<BackendClose, AppError> {
        let path = self.session_path("close")?;
        let mut body = Value::map();
        body.set("samples", samples_measured as i64);
        let response = self.post(&path, &body)?;
        self.session = None;
        wire::close_from_value(&response)
            .map_err(|e| AppError::Backend(format!("bad close result: {e}")))
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        // Best-effort teardown of an abandoned session so the worker does
        // not accumulate leaked labs. Never burn the retry budget on it —
        // if the worker is gone, its sessions died with it anyway.
        if self.session.is_some() {
            self.retry.retries = 0;
            self.retry.connect_timeout = self.retry.connect_timeout.min(Duration::from_secs(1));
            if let Ok(path) = self.session_path("close") {
                let mut body = Value::map();
                body.set("samples", 0i64);
                let _ = self.post(&path, &body);
            }
        }
    }
}

/// The wire equivalent of the sciclops running dry: reconstructed so
/// `Experiment::run_on` maps it onto `TerminationReason::OutOfPlates`
/// exactly as it does for the in-process backend.
fn out_of_plates_error() -> AppError {
    AppError::Wei(sdl_wei::WeiError::CommandAborted {
        step: "get_plate".into(),
        module: "sciclops".into(),
        attempts: 1,
        cause: sdl_instruments::InstrumentError::OutOfPlates,
    })
}
