//! The lab-execution seam: everything that mixes, images and detects sits
//! behind [`LabBackend`], so an [`crate::Experiment`] session can run
//! against interchangeable executors — the in-process simulated workcell
//! ([`SimBackend`]), a worker process over HTTP ([`RemoteBackend`]), or a
//! recorded run re-driven offline ([`ReplayBackend`]).
//!
//! The contract is deliberately narrow: a backend stages plates, executes
//! one proposed batch at a time ([`LabBackend::submit_batch`]), and answers
//! capability/metadata queries. Everything decision- and data-side — the
//! solver, scoring, trajectory, portal publication — stays in the session.

mod remote;
mod replay;
mod retry;
mod sim;
pub mod wire;

pub use remote::{RemoteBackend, RemoteStats};
pub use replay::ReplayBackend;
pub use retry::RetryPolicy;
pub use sim::SimBackend;

use crate::app::AppError;
use crate::config::{AppConfig, ConfigError};
use crate::metrics::SdlMetrics;
use bytes::Bytes;
use sdl_color::Rgb8;
use sdl_conf::Value;
use sdl_desim::{SimDuration, SimTime};
use sdl_instruments::WellIndex;
use sdl_vision::DetectorScratch;
use sdl_wei::Counters;
use std::fmt;

/// Static capabilities a backend reports when it opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCaps {
    /// Wells per plate; the session never asks for a larger batch.
    pub plate_capacity: u32,
    /// Dye channels each proposal must carry.
    pub dye_channels: u32,
    /// Whether [`BatchResult::image`] carries real plate frames.
    pub provides_images: bool,
    /// Whether [`BackendClose`] telemetry (metrics, counters) is real
    /// instrument accounting rather than zeroed placeholders.
    pub real_telemetry: bool,
}

/// One planned iteration: the session's proposals for the next plate batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// 1-based run (iteration) number within the experiment.
    pub run: u32,
    /// Proposed points, one per well, each `dye_channels` ratios in the
    /// unit box.
    pub ratios: Vec<Vec<f64>>,
}

impl Batch {
    /// Number of proposals in the batch.
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// True when the batch carries no proposals.
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }
}

/// One well's measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WellMeasurement {
    /// The well the proposal was mixed in.
    pub well: WellIndex,
    /// The color the camera read back.
    pub color: Rgb8,
}

/// What executing one [`Batch`] produced.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-proposal measurements, in proposal order.
    pub measurements: Vec<WellMeasurement>,
    /// Experiment time when the batch finished measuring.
    pub elapsed: SimTime,
    /// Wall-clock duration of this batch on the lab's clock — plate
    /// logistics, robot work, imaging and the compute hold attributable to
    /// the iteration. Recorded onto every published sample
    /// (`batch_wall_s`) so replayed runs can reconstruct real per-batch
    /// durations offline.
    pub batch_wall: SimDuration,
    /// The iteration's workflow timing log (§2.3: "the timing of each
    /// step"), when the backend records one.
    pub timing: Option<Value>,
    /// BMP-encoded plate frame, when the backend captures images.
    pub image: Option<Bytes>,
}

/// Final accounting a backend hands back when the session closes it.
#[derive(Debug, Clone)]
pub struct BackendClose {
    /// Wall duration on the lab's clock.
    pub duration: SimDuration,
    /// Table-1 metrics computed from the lab's command history.
    pub metrics: SdlMetrics,
    /// Raw command counters.
    pub counters: Counters,
    /// Plates consumed.
    pub plates_used: u32,
}

/// An executor of proposed batches: the robotic half of the paper's closed
/// loop (mix → image → detect), behind one narrow interface.
///
/// Lifecycle: [`open`](LabBackend::open) once (stages the first plate and
/// reports capabilities), any number of
/// [`submit_batch`](LabBackend::submit_batch) calls, then
/// [`close`](LabBackend::close) (final plate disposal + telemetry).
pub trait LabBackend: Send {
    /// Short backend identifier ("sim", "remote", "replay").
    fn kind(&self) -> &'static str;

    /// Start the lab: stage the first plate, return capabilities.
    fn open(&mut self) -> Result<BackendCaps, AppError>;

    /// Capabilities, once known ([`RemoteBackend`] learns them at open).
    fn capabilities(&self) -> Option<BackendCaps>;

    /// Execute one batch: mix the proposals, image the plate, detect and
    /// return per-well measurements.
    fn submit_batch(&mut self, batch: &Batch) -> Result<BatchResult, AppError>;

    /// Finish: dispose of any staged plate and report final telemetry.
    /// `samples_measured` is the session's count, used for per-color
    /// metrics.
    fn close(&mut self, samples_measured: u32) -> Result<BackendClose, AppError>;

    /// Metadata describing this backend (kind + capabilities), for
    /// diagnostics and portal records.
    fn metadata(&self) -> Value {
        let mut v = Value::map();
        v.set("backend", self.kind());
        if let Some(caps) = self.capabilities() {
            v.set("plate_capacity", caps.plate_capacity as i64);
            v.set("dye_channels", caps.dye_channels as i64);
            v.set("provides_images", caps.provides_images);
            v.set("real_telemetry", caps.real_telemetry);
        }
        v
    }

    /// Exchange detector scratch buffers with the caller so campaign
    /// workers can reuse one arena across scenarios. Backends without a
    /// detection pipeline ignore it.
    fn swap_scratch(&mut self, _scratch: &mut DetectorScratch) {}
}

/// Which executor a scenario runs on — the campaign engine's `backend:`
/// configuration axis.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// The in-process simulated workcell (the default).
    #[default]
    Sim,
    /// A worker process speaking `POST /v1/batch` at this address
    /// (`host:port` or `http://host:port`).
    Remote(String),
    /// Recorded `SampleRecord`s re-driven from this JSON-lines export.
    Replay(String),
}

impl BackendSpec {
    /// Parse the CLI/config form: `sim`, `remote:<url>` or `replay:<path>`.
    pub fn parse(s: &str) -> Result<BackendSpec, ConfigError> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("sim") {
            return Ok(BackendSpec::Sim);
        }
        if let Some(url) = s.strip_prefix("remote:") {
            if url.is_empty() {
                return Err(ConfigError("remote backend needs an address: remote:<url>".into()));
            }
            return Ok(BackendSpec::Remote(url.to_string()));
        }
        if let Some(path) = s.strip_prefix("replay:") {
            if path.is_empty() {
                return Err(ConfigError("replay backend needs a file: replay:<path>".into()));
            }
            return Ok(BackendSpec::Replay(path.to_string()));
        }
        Err(ConfigError(format!("unknown backend '{s}' (valid: sim, remote:<url>, replay:<path>)")))
    }

    /// Instantiate the backend for one scenario.
    pub fn build(&self, config: &AppConfig) -> Result<Box<dyn LabBackend>, AppError> {
        match self {
            BackendSpec::Sim => Ok(Box::new(SimBackend::new(config)?)),
            BackendSpec::Remote(url) => Ok(Box::new(RemoteBackend::new(url, config.clone()))),
            BackendSpec::Replay(path) => {
                Ok(Box::new(ReplayBackend::from_jsonl(path, Some(&config.experiment_id()))?))
            }
        }
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSpec::Sim => write!(f, "sim"),
            BackendSpec::Remote(url) => write!(f, "remote:{url}"),
            BackendSpec::Replay(path) => write!(f, "replay:{path}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_roundtrips() {
        assert_eq!(BackendSpec::parse("sim").unwrap(), BackendSpec::Sim);
        assert_eq!(BackendSpec::parse(" SIM ").unwrap(), BackendSpec::Sim);
        assert_eq!(
            BackendSpec::parse("remote:127.0.0.1:8323").unwrap(),
            BackendSpec::Remote("127.0.0.1:8323".into())
        );
        assert_eq!(
            BackendSpec::parse("replay:out/portal.jsonl").unwrap(),
            BackendSpec::Replay("out/portal.jsonl".into())
        );
        for s in ["sim", "remote:127.0.0.1:9", "replay:a.jsonl"] {
            assert_eq!(BackendSpec::parse(s).unwrap().to_string(), s);
        }
        assert!(BackendSpec::parse("quantum").is_err());
        assert!(BackendSpec::parse("remote:").is_err());
        assert!(BackendSpec::parse("replay:").is_err());
    }
}
