//! Wire codecs for the `POST /v1/*` batch-execution protocol.
//!
//! Both ends of [`RemoteBackend`](crate::RemoteBackend) — the client in
//! this crate and the host inside `sdl-portal-server` — encode through
//! these functions, so the protocol has exactly one definition. Everything
//! that must survive the trip bit-exactly does: ratios ride as JSON floats
//! (shortest-round-trip formatting), colors as integers, times as integer
//! microseconds, plate frames as hex.

use crate::backend::{BackendCaps, BackendClose, Batch, BatchResult, WellMeasurement};
use crate::config::ConfigError;
use crate::metrics::SdlMetrics;
use bytes::Bytes;
use sdl_color::Rgb8;
use sdl_conf::{Value, ValueExt};
use sdl_desim::{SimDuration, SimTime};
use sdl_instruments::WellIndex;
use sdl_wei::Counters;

fn bad(what: impl Into<String>) -> ConfigError {
    ConfigError(what.into())
}

fn need_u64(v: &Value, key: &str) -> Result<u64, ConfigError> {
    v.opt_i64(key)
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| bad(format!("missing or negative '{key}'")))
}

/// Encode capabilities (rides in the `/v1/experiments` response).
pub fn caps_to_value(caps: &BackendCaps) -> Value {
    let mut v = Value::map();
    v.set("plate_capacity", caps.plate_capacity as i64);
    v.set("dye_channels", caps.dye_channels as i64);
    v.set("provides_images", caps.provides_images);
    v.set("real_telemetry", caps.real_telemetry);
    v
}

/// Decode capabilities.
pub fn caps_from_value(v: &Value) -> Result<BackendCaps, ConfigError> {
    Ok(BackendCaps {
        plate_capacity: need_u64(v, "plate_capacity")? as u32,
        dye_channels: need_u64(v, "dye_channels")? as u32,
        provides_images: v.opt_bool("provides_images").unwrap_or(false),
        real_telemetry: v.opt_bool("real_telemetry").unwrap_or(false),
    })
}

/// Encode one batch (the `/v1/batch` request body).
pub fn batch_to_value(batch: &Batch) -> Value {
    let mut ratios = Value::seq();
    for point in &batch.ratios {
        let mut row = Value::seq();
        for r in point {
            row.push(*r);
        }
        ratios.push(row);
    }
    let mut v = Value::map();
    v.set("run", batch.run as i64);
    v.set("ratios", ratios);
    v
}

/// Decode one batch.
pub fn batch_from_value(v: &Value) -> Result<Batch, ConfigError> {
    let run = need_u64(v, "run")? as u32;
    let rows =
        v.get("ratios").and_then(Value::as_seq).ok_or_else(|| bad("missing 'ratios' sequence"))?;
    let mut ratios = Vec::with_capacity(rows.len());
    for row in rows {
        let point = row.as_seq().ok_or_else(|| bad("ratios rows must be sequences"))?;
        let mut out = Vec::with_capacity(point.len());
        for r in point {
            out.push(r.as_f64().ok_or_else(|| bad("ratios entries must be numbers"))?);
        }
        ratios.push(out);
    }
    Ok(Batch { run, ratios })
}

/// Encode a batch result (the `/v1/batch` response body).
pub fn result_to_value(result: &BatchResult) -> Value {
    let mut measurements = Value::seq();
    for m in &result.measurements {
        let mut row = Value::map();
        row.set("well", m.well.to_string().as_str());
        let mut rgb = Value::seq();
        for c in m.color.channels() {
            rgb.push(c as i64);
        }
        row.set("rgb", rgb);
        measurements.push(row);
    }
    let mut v = Value::map();
    v.set("measurements", measurements);
    v.set("elapsed_us", result.elapsed.as_micros() as i64);
    v.set("batch_wall_us", result.batch_wall.as_micros() as i64);
    if let Some(timing) = &result.timing {
        v.set("timing", timing.clone());
    }
    if let Some(image) = &result.image {
        v.set("image_hex", hex_encode(image).as_str());
    }
    v
}

/// Decode a batch result.
pub fn result_from_value(v: &Value) -> Result<BatchResult, ConfigError> {
    let rows = v
        .get("measurements")
        .and_then(Value::as_seq)
        .ok_or_else(|| bad("missing 'measurements' sequence"))?;
    let mut measurements = Vec::with_capacity(rows.len());
    for row in rows {
        let well = row
            .opt_str("well")
            .and_then(WellIndex::parse)
            .ok_or_else(|| bad("measurement rows need a parsable 'well'"))?;
        let rgb = row.get("rgb").and_then(Value::as_seq).ok_or_else(|| bad("missing 'rgb'"))?;
        let ch: Vec<i64> = rgb.iter().filter_map(Value::as_i64).collect();
        if ch.len() != 3 || ch.iter().any(|c| !(0..=255).contains(c)) {
            return Err(bad("rgb must be three 0-255 integers"));
        }
        measurements.push(WellMeasurement {
            well,
            color: Rgb8::new(ch[0] as u8, ch[1] as u8, ch[2] as u8),
        });
    }
    let image = match v.opt_str("image_hex") {
        Some(hex) => Some(Bytes::from(hex_decode(hex)?)),
        None => None,
    };
    Ok(BatchResult {
        measurements,
        elapsed: SimTime::from_micros(need_u64(v, "elapsed_us")?),
        // Absent on pre-telemetry workers: a zero wall is the recorded
        // "unknown" value, matching the old zeroed-telemetry behavior.
        batch_wall: SimDuration::from_micros(
            v.opt_i64("batch_wall_us").map(|us| us.max(0) as u64).unwrap_or(0),
        ),
        timing: v.get("timing").cloned(),
        image,
    })
}

/// Encode the final accounting (the `/v1/close` response body).
pub fn close_to_value(close: &BackendClose) -> Value {
    let mut counters = Value::map();
    counters.set("attempts", close.counters.attempts as i64);
    counters.set("completed", close.counters.completed as i64);
    counters.set("robotic_completed", close.counters.robotic_completed as i64);
    counters.set("reception_faults", close.counters.reception_faults as i64);
    counters.set("action_faults", close.counters.action_faults as i64);
    counters.set("human_interventions", close.counters.human_interventions as i64);

    let m = &close.metrics;
    let mut metrics = Value::map();
    metrics.set("twh_us", m.twh.as_micros() as i64);
    metrics.set("ccwh", m.ccwh as i64);
    metrics.set("synthesis_us", m.synthesis.as_micros() as i64);
    metrics.set("transfer_us", m.transfer.as_micros() as i64);
    metrics.set("logistics_us", m.logistics.as_micros() as i64);
    metrics.set("total_us", m.total.as_micros() as i64);
    metrics.set("colors_mixed", m.colors_mixed as i64);
    metrics.set("time_per_color_us", m.time_per_color.as_micros() as i64);
    metrics.set("robotic_commands", m.robotic_commands as i64);
    metrics.set("total_commands", m.total_commands as i64);
    metrics.set("human_interventions", m.human_interventions as i64);

    let mut v = Value::map();
    v.set("duration_us", close.duration.as_micros() as i64);
    v.set("plates_used", close.plates_used as i64);
    v.set("counters", counters);
    v.set("metrics", metrics);
    v
}

/// Decode the final accounting.
pub fn close_from_value(v: &Value) -> Result<BackendClose, ConfigError> {
    let c = v.get("counters").ok_or_else(|| bad("missing 'counters'"))?;
    let counters = Counters {
        attempts: need_u64(c, "attempts")?,
        completed: need_u64(c, "completed")?,
        robotic_completed: need_u64(c, "robotic_completed")?,
        reception_faults: need_u64(c, "reception_faults")?,
        action_faults: need_u64(c, "action_faults")?,
        human_interventions: need_u64(c, "human_interventions")?,
    };
    let m = v.get("metrics").ok_or_else(|| bad("missing 'metrics'"))?;
    let dur = |key: &str| -> Result<SimDuration, ConfigError> {
        Ok(SimDuration::from_micros(need_u64(m, key)?))
    };
    let metrics = SdlMetrics {
        twh: dur("twh_us")?,
        ccwh: need_u64(m, "ccwh")?,
        synthesis: dur("synthesis_us")?,
        transfer: dur("transfer_us")?,
        logistics: dur("logistics_us")?,
        total: dur("total_us")?,
        colors_mixed: need_u64(m, "colors_mixed")? as u32,
        time_per_color: dur("time_per_color_us")?,
        robotic_commands: need_u64(m, "robotic_commands")?,
        total_commands: need_u64(m, "total_commands")?,
        human_interventions: need_u64(m, "human_interventions")?,
    };
    Ok(BackendClose {
        duration: SimDuration::from_micros(need_u64(v, "duration_us")?),
        metrics,
        counters,
        plates_used: need_u64(v, "plates_used")? as u32,
    })
}

/// Lower-hex encode bytes (plate frames on the wire).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    out
}

/// Decode [`hex_encode`] output.
pub fn hex_decode(hex: &str) -> Result<Vec<u8>, ConfigError> {
    let hex = hex.trim();
    if !hex.len().is_multiple_of(2) {
        return Err(bad("hex payload has odd length"));
    }
    let digits = hex.as_bytes();
    let mut out = Vec::with_capacity(hex.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or_else(|| bad("bad hex digit"))?;
        let lo = (pair[1] as char).to_digit(16).ok_or_else(|| bad("bad hex digit"))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdl_conf::{from_json, to_json};
    use sdl_wei::Reliability;

    #[test]
    fn batch_roundtrips_bit_exactly_through_json() {
        let batch = Batch {
            run: 7,
            ratios: vec![
                vec![0.123_456_789_012_345_68, 1.0 / 3.0, 0.0, 1.0],
                vec![f64::MIN_POSITIVE, 0.9999999999999999, 2e-308, 0.5],
            ],
        };
        let json = to_json(&batch_to_value(&batch));
        let back = batch_from_value(&from_json(&json).unwrap()).unwrap();
        assert_eq!(back.run, 7);
        for (a, b) in batch.ratios.iter().flatten().zip(back.ratios.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} drifted to {b}");
        }
    }

    #[test]
    fn result_roundtrips_through_json() {
        let result = BatchResult {
            measurements: vec![
                WellMeasurement { well: WellIndex::new(0, 0), color: Rgb8::new(1, 2, 3) },
                WellMeasurement { well: WellIndex::new(7, 11), color: Rgb8::new(255, 0, 128) },
            ],
            elapsed: SimTime::from_micros(123_456_789),
            batch_wall: sdl_desim::SimDuration::from_micros(7_654_321),
            timing: Some({
                let mut t = Value::map();
                t.set("workflow", "cp_wf_mixcolor");
                t
            }),
            image: Some(Bytes::from_static(b"BM\x00\x01\xfe\xff")),
        };
        let json = to_json(&result_to_value(&result));
        let back = result_from_value(&from_json(&json).unwrap()).unwrap();
        assert_eq!(back.measurements, result.measurements);
        assert_eq!(back.elapsed, result.elapsed);
        assert_eq!(back.batch_wall, result.batch_wall);
        assert_eq!(back.timing.unwrap().opt_str("workflow"), Some("cp_wf_mixcolor"));
        assert_eq!(back.image.unwrap().as_ref(), b"BM\x00\x01\xfe\xff");
        // Pre-telemetry workers omit the wall; decode falls back to zero.
        let mut v = result_to_value(&result);
        v.set("batch_wall_us", Value::Null);
        assert_eq!(result_from_value(&v).unwrap().batch_wall, sdl_desim::SimDuration::ZERO);
    }

    #[test]
    fn close_roundtrips_through_json() {
        let counters = Counters {
            attempts: 10,
            completed: 9,
            robotic_completed: 7,
            reception_faults: 1,
            action_faults: 0,
            human_interventions: 2,
        };
        let metrics = SdlMetrics::compute(
            &[],
            &counters,
            &Reliability::default(),
            SimTime::ZERO,
            SimTime::from_micros(5_000_000),
            3,
        );
        let close = BackendClose {
            duration: SimDuration::from_micros(5_000_000),
            metrics: metrics.clone(),
            counters,
            plates_used: 2,
        };
        let json = to_json(&close_to_value(&close));
        let back = close_from_value(&from_json(&json).unwrap()).unwrap();
        assert_eq!(back.duration, close.duration);
        assert_eq!(back.counters, counters);
        assert_eq!(back.metrics, metrics);
        assert_eq!(back.plates_used, 2);
    }

    #[test]
    fn hex_roundtrips() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }
}
