//! Re-driving solvers from recorded runs, at zero simulation cost.
//!
//! A [`ReplayBackend`] answers `submit_batch` straight from recorded
//! [`SampleRecord`]s: no workcell, no rendering, no detection. Re-running
//! the *same configuration and seed* that produced the records reproduces
//! the recorded trajectory exactly (the solver proposes the identical
//! points and gets the identical measurements back) — which makes replay
//! the cheap substrate for offline solver studies and regression checks
//! over archived portal exports.
//!
//! The backend verifies, bit for bit, that the session's proposals match
//! the recorded ones and fails loudly on divergence — silently grading the
//! wrong proposals would corrupt a study.
//!
//! Telemetry: records carry each batch's lab-clock wall duration
//! (`batch_wall_s`), and portal-sourced replays additionally recover the
//! per-batch workflow timing logs, so `close()` reconstructs real Table-1
//! metrics — synthesis/transfer durations, CCWH, TWH — instead of zeroed
//! placeholders. The reconstruction is batch-scoped: plate logistics
//! between batches (`newplate`/`trashplate`/`replenish` workflows) were
//! never published per sample, so those buckets are lower bounds, and
//! fault-injection counters (absent from the records) stay zero.

use crate::app::AppError;
use crate::backend::{BackendCaps, BackendClose, Batch, BatchResult, LabBackend, WellMeasurement};
use crate::metrics::SdlMetrics;
use sdl_color::Rgb8;
use sdl_conf::ValueExt as _;
use sdl_datapub::{AcdcPortal, SampleRecord};
use sdl_desim::{SimDuration, SimTime};
use sdl_instruments::{Microplate, WellIndex};
use sdl_wei::{Counters, Reliability, WorkflowRunLog};
use std::path::Path;

/// A recorded run served back one batch at a time.
pub struct ReplayBackend {
    records: Vec<SampleRecord>,
    /// Per-batch workflow logs recovered from the portal's raw records
    /// (empty for bare [`SampleRecord`] replays).
    timing_logs: Vec<WorkflowRunLog>,
    cursor: usize,
    plate_capacity: u32,
    last_elapsed: SimTime,
    plates_used: u32,
}

impl ReplayBackend {
    /// Replay these records (sorted by sample number internally).
    pub fn from_records(records: impl IntoIterator<Item = SampleRecord>) -> ReplayBackend {
        let mut records: Vec<SampleRecord> = records.into_iter().collect();
        records.sort_by_key(|r| r.sample);
        ReplayBackend {
            records,
            timing_logs: Vec::new(),
            cursor: 0,
            // Recorded runs came off standard 96-well plates; override with
            // `with_plate_capacity` when replaying exotic labware.
            plate_capacity: Microplate::standard96().well_count() as u32,
            last_elapsed: SimTime::ZERO,
            plates_used: 0,
        }
    }

    /// Replay one experiment's samples from a live portal. The raw records
    /// are also mined for the per-batch `timing` workflow logs (they ride
    /// on each batch's first sample), which unlocks real reconstructed
    /// telemetry at [`LabBackend::close`].
    pub fn from_portal(portal: &AcdcPortal, experiment_id: &str) -> ReplayBackend {
        let mut backend = ReplayBackend::from_records(portal.samples(experiment_id));
        let mut logs: Vec<(u32, WorkflowRunLog)> = portal
            .search(|r| {
                r.opt_str("kind") == Some("sample")
                    && r.opt_str("experiment_id") == Some(experiment_id)
            })
            .iter()
            .filter_map(|r| {
                let run = r.opt_i64("run")? as u32;
                let log = WorkflowRunLog::from_value(r.get("timing")?)?;
                Some((run, log))
            })
            .collect();
        logs.sort_by_key(|(run, _)| *run);
        backend.timing_logs = logs.into_iter().map(|(_, log)| log).collect();
        backend
    }

    /// Replay from a JSON-lines portal export (the `--export-portal`
    /// format). `experiment` selects one experiment's records; when `None`
    /// (or not found) the export's first announced experiment is used.
    pub fn from_jsonl(
        path: impl AsRef<Path>,
        experiment: Option<&str>,
    ) -> Result<ReplayBackend, AppError> {
        let path = path.as_ref();
        let portal = AcdcPortal::new();
        portal
            .import_jsonl(path)
            .map_err(|e| AppError::Setup(format!("{}: {e}", path.display())))?;
        let known = portal.experiments();
        let id = experiment
            .filter(|id| known.iter().any(|k| k == id))
            .map(str::to_string)
            .or_else(|| known.into_iter().next())
            .ok_or_else(|| {
                AppError::Setup(format!("{}: no experiment records to replay", path.display()))
            })?;
        let backend = ReplayBackend::from_portal(&portal, &id);
        if backend.is_empty() {
            return Err(AppError::Setup(format!(
                "{}: experiment '{id}' has no sample records",
                path.display()
            )));
        }
        Ok(backend)
    }

    /// Override the plate capacity the recorded lab used.
    pub fn with_plate_capacity(mut self, wells: u32) -> ReplayBackend {
        self.plate_capacity = wells.max(1);
        self
    }

    /// Recorded samples available.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Did the records carry enough telemetry (a timing log per batch) to
    /// reconstruct real metrics at close?
    fn telemetry_reconstructable(&self) -> bool {
        if self.records.is_empty() {
            return false;
        }
        let runs: std::collections::BTreeSet<u32> = self.records.iter().map(|r| r.run).collect();
        self.timing_logs.len() == runs.len()
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            plate_capacity: self.plate_capacity,
            dye_channels: self.records.first().map(|r| r.ratios.len()).unwrap_or(0) as u32,
            provides_images: false,
            real_telemetry: self.telemetry_reconstructable(),
        }
    }
}

/// Rebuild engine-style counters and reliability bookkeeping from recorded
/// workflow logs. `completed`/`robotic_completed`, CCWH streaks and
/// intervention counts reconstruct exactly (the camera's `take_picture`
/// is the only non-robotic action); `attempts` is a lower bound (per-step
/// attempt counters reset when a human steps in) and injected-fault tallies
/// are unrecorded, so they stay zero.
fn reconstruct_accounting(logs: &[WorkflowRunLog]) -> (Counters, Reliability) {
    let mut counters = Counters::default();
    let mut reliability = Reliability::default();
    for log in logs {
        for step in &log.records {
            let robotic = step.action != "take_picture";
            if step.human_intervened {
                counters.human_interventions += 1;
                // The engine logs the intervention before the step's final
                // successful attempt; the step end is the closest recorded
                // timestamp.
                reliability.human(step.end);
            }
            counters.attempts += step.attempts as u64;
            counters.completed += 1;
            if robotic {
                counters.robotic_completed += 1;
                reliability.robotic_ok();
            }
        }
    }
    (counters, reliability)
}

impl LabBackend for ReplayBackend {
    fn kind(&self) -> &'static str {
        "replay"
    }

    fn open(&mut self) -> Result<BackendCaps, AppError> {
        Ok(self.caps())
    }

    fn capabilities(&self) -> Option<BackendCaps> {
        Some(self.caps())
    }

    fn submit_batch(&mut self, batch: &Batch) -> Result<BatchResult, AppError> {
        let b = batch.ratios.len();
        if self.cursor + b > self.records.len() {
            return Err(AppError::Setup(format!(
                "replay source exhausted: {} recorded samples, session asked for {} more after {}",
                self.records.len(),
                b,
                self.cursor
            )));
        }
        let slice = &self.records[self.cursor..self.cursor + b];
        let mut measurements = Vec::with_capacity(b);
        let mut new_plate = self.cursor == 0;
        for (proposed, record) in batch.ratios.iter().zip(slice) {
            // Bit-exact proposal check: replay only reproduces the recorded
            // trajectory when the session re-derives the recorded decisions.
            let matches = proposed.len() == record.ratios.len()
                && proposed.iter().zip(&record.ratios).all(|(a, b)| a.to_bits() == b.to_bits());
            if !matches {
                return Err(AppError::Setup(format!(
                    "replay diverged at sample {}: the solver proposed {proposed:?} but the \
                     record holds {:?} — replay needs the original config and seed",
                    record.sample, record.ratios
                )));
            }
            let well = WellIndex::parse(&record.well).ok_or_else(|| {
                AppError::Setup(format!("record {}: bad well '{}'", record.sample, record.well))
            })?;
            if well == WellIndex::new(0, 0) && record.sample > 1 {
                new_plate = true;
            }
            measurements.push(WellMeasurement {
                well,
                color: Rgb8::new(record.measured[0], record.measured[1], record.measured[2]),
            });
        }
        if new_plate {
            self.plates_used += 1;
        }
        self.cursor += b;
        // Recorded elapsed seconds are exact integer-microsecond times
        // formatted with shortest-round-trip floats, so this recovers the
        // original clock reading bit for bit.
        let elapsed_s = slice.last().map(|r| r.elapsed_s).unwrap_or(0.0);
        let elapsed = SimTime::from_micros((elapsed_s * 1e6).round() as u64);
        self.last_elapsed = elapsed;
        // The recorded batch wall (every sample of a batch carries the same
        // value; zero for pre-telemetry archives) — exact for the same
        // shortest-round-trip reason as `elapsed`.
        let batch_wall = slice
            .iter()
            .find_map(|r| r.batch_wall_s)
            .map(|s| SimDuration::from_micros((s * 1e6).round() as u64))
            .unwrap_or(SimDuration::ZERO);
        Ok(BatchResult { measurements, elapsed, batch_wall, timing: None, image: None })
    }

    fn close(&mut self, samples_measured: u32) -> Result<BackendClose, AppError> {
        // Reconstruct telemetry from the recorded workflow logs when the
        // archive carried one per batch (`real_telemetry` in the caps
        // advertises exactly this); older archives fall back to the zeroed
        // placeholder shape. Either way the clock span ends at the last
        // recorded measurement.
        // All-or-nothing: partially recovered logs (mixed-version archive)
        // must not leak into the metrics next to zeroed counters.
        let (history, counters, reliability) = if self.telemetry_reconstructable() {
            let (counters, reliability) = reconstruct_accounting(&self.timing_logs);
            (self.timing_logs.as_slice(), counters, reliability)
        } else {
            (&[][..], Counters::default(), Reliability::default())
        };
        let metrics = SdlMetrics::compute(
            history,
            &counters,
            &reliability,
            SimTime::ZERO,
            self.last_elapsed,
            samples_measured,
        );
        Ok(BackendClose {
            duration: self.last_elapsed - SimTime::ZERO,
            metrics,
            counters,
            plates_used: self.plates_used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(sample: u32, ratios: Vec<f64>, well: &str, rgb: [u8; 3]) -> SampleRecord {
        SampleRecord {
            experiment_id: "e".into(),
            run: sample.div_ceil(2),
            sample,
            well: well.into(),
            ratios,
            volumes_ul: Vec::new(),
            measured: rgb,
            target: [120, 120, 120],
            score: 1.0,
            best_so_far: 1.0,
            elapsed_s: sample as f64 * 60.0,
            batch_wall_s: None,
            image_ref: None,
        }
    }

    #[test]
    fn serves_recorded_measurements_in_order() {
        let mut backend = ReplayBackend::from_records(vec![
            record(2, vec![0.25, 0.5], "A2", [9, 9, 9]),
            record(1, vec![0.5, 0.5], "A1", [1, 2, 3]),
        ]);
        let caps = backend.open().unwrap();
        assert_eq!(caps.plate_capacity, 96);
        assert_eq!(caps.dye_channels, 2);
        let batch = Batch { run: 1, ratios: vec![vec![0.5, 0.5], vec![0.25, 0.5]] };
        let result = backend.submit_batch(&batch).unwrap();
        assert_eq!(result.measurements[0].color, Rgb8::new(1, 2, 3));
        assert_eq!(result.measurements[1].well, WellIndex::new(0, 1));
        assert_eq!(result.elapsed, SimTime::from_micros(120_000_000));
    }

    #[test]
    fn divergent_proposals_fail_loudly() {
        let mut backend =
            ReplayBackend::from_records(vec![record(1, vec![0.5, 0.5], "A1", [1, 2, 3])]);
        backend.open().unwrap();
        let err =
            backend.submit_batch(&Batch { run: 1, ratios: vec![vec![0.5, 0.6]] }).unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut backend = ReplayBackend::from_records(vec![record(1, vec![0.5], "A1", [0, 0, 0])]);
        backend.open().unwrap();
        backend.submit_batch(&Batch { run: 1, ratios: vec![vec![0.5]] }).unwrap();
        let err = backend.submit_batch(&Batch { run: 2, ratios: vec![vec![0.5]] }).unwrap_err();
        assert!(err.to_string().contains("exhausted"), "{err}");
    }
}
