//! The in-process simulated workcell behind the [`LabBackend`] seam.
//!
//! This is the instruments stack that used to be welded into
//! `ColorPickerApp::run`: the WEI engine driving the four `cp_wf_*`
//! workflows on a virtual clock, plate lifecycle management, reservoir
//! replenishment, the simulated camera and the §2.4 detection pipeline.
//! Behavior is bit-identical to the pre-redesign closed loop — enforced by
//! the golden-fingerprint equivalence suite.

use crate::app::{AppError, WF_MIXCOLOR, WF_NEWPLATE, WF_REPLENISH, WF_TRASHPLATE};
use crate::backend::{BackendCaps, BackendClose, Batch, BatchResult, LabBackend, WellMeasurement};
use crate::config::AppConfig;
use crate::metrics::SdlMetrics;
use crate::protocol::build_protocol;
use bytes::Bytes;
use rand::rngs::StdRng;
use sdl_desim::{RngHub, SimDuration, SimTime};
use sdl_instruments::{ActionData, Microplate, ModuleKind, WellIndex};
use sdl_vision::{Detector, DetectorScratch};
use sdl_wei::{Clock, Engine, Payload, SeqClock, Workcell, WorkcellConfig, Workflow};
use std::collections::BTreeMap;
use std::sync::Arc;

struct AppWorkflows {
    newplate: Workflow,
    mixcolor: Workflow,
    trashplate: Workflow,
    replenish: Workflow,
}

/// The simulated lab: one workcell, one virtual clock, one detector.
pub struct SimBackend {
    config: AppConfig,
    engine: Engine,
    clock: SeqClock,
    compute_rng: StdRng,
    detector: Detector,
    scratch: DetectorScratch,
    workflows: AppWorkflows,
    vars: BTreeMap<String, String>,
    nest_slot: String,
    bank_name: String,
    plates_used: u32,
    start: SimTime,
    opened: bool,
}

impl SimBackend {
    /// Build the simulated lab: instantiate the workcell, resolve module
    /// names, retarget the canonical workflows.
    pub fn new(config: &AppConfig) -> Result<SimBackend, AppError> {
        let config = config.clone();
        let hub = RngHub::new(config.seed);
        let mut cell_cfg = WorkcellConfig::from_yaml(&config.workcell_yaml)?;
        // The config's camera-fidelity axis reaches the camera simulator
        // through its module config; an explicit per-camera `fidelity` in
        // the workcell document wins. The illumination-drift axis rides the
        // same path, seeded by the master seed.
        cell_cfg.default_camera_fidelity(config.fidelity.name());
        if let Some(drift) = config.drift {
            cell_cfg.default_camera_drift(&drift.name(), config.seed);
        }

        // Discover one module of each required kind.
        let need = |kind: ModuleKind| -> Result<&sdl_wei::ModuleConfig, AppError> {
            cell_cfg.modules.iter().find(|m| m.kind == kind).ok_or_else(|| {
                AppError::Setup(format!("workcell lacks a {} module", kind.type_name()))
            })
        };
        let crane = need(ModuleKind::PlateCrane)?;
        let arm = need(ModuleKind::Manipulator)?;
        let handler = need(ModuleKind::LiquidHandler)?;
        let replenisher = need(ModuleKind::LiquidReplenisher)?;
        let camera = need(ModuleKind::Camera)?;

        use sdl_conf::ValueExt as _;
        let exchange = crane
            .config
            .opt_str("exchange")
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}.exchange", crane.name));
        let deck = handler
            .config
            .opt_str("deck")
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}.deck", handler.name));
        let nest = camera
            .config
            .opt_str("nest")
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}.nest", camera.name));

        let mut vars = BTreeMap::new();
        vars.insert("exchange".to_string(), exchange);
        vars.insert("deck".to_string(), deck);
        vars.insert("nest".to_string(), nest.clone());

        // Retarget canonical workflows onto the discovered module names.
        let mut rename = BTreeMap::new();
        rename.insert("sciclops".to_string(), crane.name.clone());
        rename.insert("pf400".to_string(), arm.name.clone());
        rename.insert("ot2".to_string(), handler.name.clone());
        rename.insert("barty".to_string(), replenisher.name.clone());
        rename.insert("camera".to_string(), camera.name.clone());
        let load = |src: &str| -> Result<Workflow, AppError> {
            Ok(Workflow::from_yaml(src)?.retarget(&rename))
        };
        let workflows = AppWorkflows {
            newplate: load(WF_NEWPLATE)?,
            mixcolor: load(WF_MIXCOLOR)?,
            trashplate: load(WF_TRASHPLATE)?,
            replenish: load(WF_REPLENISH)?,
        };
        let bank_name = handler.name.clone();

        let cell = Workcell::instantiate(cell_cfg, config.dyes.clone(), config.mix)?;
        let engine = Engine::new(cell, hub).with_faults(config.faults.clone());
        for wf in
            [&workflows.newplate, &workflows.mixcolor, &workflows.trashplate, &workflows.replenish]
        {
            engine.validate(wf)?;
        }

        let detector = Detector::new(sdl_vision::DetectorParams {
            flat_field: config.flat_field,
            ..sdl_vision::DetectorParams::default()
        });
        Ok(SimBackend {
            compute_rng: hub.stream("app.compute"),
            detector,
            scratch: DetectorScratch::default(),
            workflows,
            vars,
            nest_slot: nest,
            bank_name,
            plates_used: 0,
            start: SimTime::ZERO,
            opened: false,
            engine,
            clock: SeqClock::new(),
            config,
        })
    }

    /// The engine (for inspection in tests and benches).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The active configuration.
    pub fn config(&self) -> &AppConfig {
        &self.config
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            // The crane dispenses standard 96-well plates (its template is
            // not configurable), so capacity is a static capability.
            plate_capacity: Microplate::standard96().well_count() as u32,
            dye_channels: self.config.dyes.len() as u32,
            provides_images: self.config.publish_images,
            real_telemetry: true,
        }
    }

    fn base_payload(&self) -> Payload {
        let mut p = Payload::none();
        for (k, v) in &self.vars {
            p = p.var(k.clone(), v.clone());
        }
        p
    }

    fn fetch_new_plate(&mut self) -> Result<(), sdl_wei::WeiError> {
        let payload = self.base_payload();
        self.engine.run_workflow(&mut self.clock, &self.workflows.newplate, &payload)?;
        self.plates_used += 1;
        Ok(())
    }

    fn trash_plate(&mut self) -> Result<(), sdl_wei::WeiError> {
        let payload = self.base_payload();
        self.engine.run_workflow(&mut self.clock, &self.workflows.trashplate, &payload)?;
        Ok(())
    }

    fn replenish_if_needed(&mut self, demand: &[f64]) -> Result<(), sdl_wei::WeiError> {
        let needs = {
            let bank = self
                .engine
                .workcell
                .world
                .bank(&self.bank_name)
                .expect("bank validated at startup");
            let low = bank.reservoirs.iter().any(|r| r.volume_ul < self.config.refill_watermark_ul);
            low || !bank.can_supply(demand)
        };
        if needs {
            let payload = self.base_payload();
            self.engine.run_workflow(&mut self.clock, &self.workflows.replenish, &payload)?;
        }
        Ok(())
    }

    /// Free wells on the plate currently staged at the camera nest.
    fn staged_plate_free_wells(&self, n: usize) -> Vec<WellIndex> {
        let world = &self.engine.workcell.world;
        match world.plate_at(&self.nest_slot) {
            Ok(Some(id)) => world.plate(id).map(|p| p.next_free(n)).unwrap_or_default(),
            _ => Vec::new(),
        }
    }

    /// Simulated compute step (solver + image processing on the "Compute"
    /// node of Figure 2).
    fn hold_compute(&mut self) {
        use rand::Rng;
        let jitter = 0.2f64;
        let secs =
            self.config.compute_seconds * (1.0 + self.compute_rng.gen_range(-jitter..=jitter));
        self.clock.wait(SimDuration::from_secs_f64(secs.max(0.0)));
    }
}

impl LabBackend for SimBackend {
    fn kind(&self) -> &'static str {
        "sim"
    }

    fn open(&mut self) -> Result<BackendCaps, AppError> {
        if !self.opened {
            self.start = self.clock.now();
            self.fetch_new_plate()?;
            self.opened = true;
        }
        Ok(self.caps())
    }

    fn capabilities(&self) -> Option<BackendCaps> {
        Some(self.caps())
    }

    fn submit_batch(&mut self, batch: &Batch) -> Result<BatchResult, AppError> {
        let b = batch.ratios.len();
        let batch_start = self.clock.now();

        // Plate lifecycle: batches are never split across plates — a plate
        // without room for a full batch is swapped (the remainder of its
        // wells is wasted), which is how the paper's 12 × 15 portal
        // structure arises on 96-well plates.
        let mut wells = self.staged_plate_free_wells(b);
        if wells.len() < b {
            let capacity = self
                .engine
                .workcell
                .world
                .plate_at(&self.nest_slot)
                .ok()
                .flatten()
                .and_then(|id| self.engine.workcell.world.plate(id).ok())
                .map(|p| p.well_count())
                .unwrap_or(0);
            if wells.len() < b.min(capacity.max(1)) {
                self.trash_plate()?;
                self.fetch_new_plate()?;
                wells = self.staged_plate_free_wells(b);
            }
        }
        if wells.is_empty() {
            return Err(AppError::Setup("fresh plate has no usable wells".into()));
        }
        if wells.len() < b {
            return Err(AppError::Setup(format!(
                "batch of {b} proposals exceeds the plate's {} usable wells",
                wells.len()
            )));
        }
        let wells = &wells[..b];

        let protocol = build_protocol(&batch.ratios, wells, &self.config.dyes)?;

        // Check: refill color?
        let demand = protocol.demand_ul(self.config.dyes.len());
        self.replenish_if_needed(&demand)?;

        // Robotic half of the iteration.
        let payload = self.base_payload().var("iteration", batch.run.to_string());
        let payload = Payload { protocol: Some(protocol), ..payload };
        let out = self.engine.run_workflow(&mut self.clock, &self.workflows.mixcolor, &payload)?;

        // Compute: image processing + next-proposal time.
        self.hold_compute();

        // The frame rides out of the workflow as a shared handle — no pixel
        // copy — and is dropped at the end of this call, which lets the
        // camera recycle its buffer for the next batch.
        let image = out
            .data
            .iter()
            .find_map(|(_, d)| match d {
                ActionData::Image(img) => Some(Arc::clone(img)),
                _ => None,
            })
            .ok_or_else(|| AppError::Setup("camera step returned no image".into()))?;
        let reading = self.detector.detect_with(&image, &mut self.scratch)?;

        let mut measurements = Vec::with_capacity(b);
        for well in wells {
            let color = reading
                .well(well.row, well.col)
                .map(|w| w.color)
                .ok_or_else(|| AppError::Setup(format!("no reading for well {well}")))?;
            measurements.push(WellMeasurement { well: *well, color });
        }
        let image_bytes =
            if self.config.publish_images { Some(Bytes::from(image.to_bmp())) } else { None };

        let elapsed = self.clock.now();
        Ok(BatchResult {
            measurements,
            elapsed,
            batch_wall: elapsed - batch_start,
            timing: Some(out.log.to_value()),
            image: image_bytes,
        })
    }

    fn close(&mut self, samples_measured: u32) -> Result<BackendClose, AppError> {
        // Final trashplate (Figure 2: runs again to finalize) if a plate is
        // still staged.
        if matches!(self.engine.workcell.world.plate_at(&self.nest_slot), Ok(Some(_))) {
            self.trash_plate()?;
        }
        let end = self.clock.now();
        let metrics = SdlMetrics::compute(
            &self.engine.history,
            &self.engine.counters,
            &self.engine.reliability,
            self.start,
            end,
            samples_measured,
        );
        Ok(BackendClose {
            duration: end - self.start,
            metrics,
            counters: self.engine.counters,
            plates_used: self.plates_used,
        })
    }

    fn swap_scratch(&mut self, scratch: &mut DetectorScratch) {
        std::mem::swap(&mut self.scratch, scratch);
    }
}
