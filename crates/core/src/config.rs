//! Application configuration.

use sdl_color::{DeltaE, DyeSet, MixKind, Rgb8};
use sdl_conf::{from_yaml, Value, ValueExt};
use sdl_desim::FaultPlan;
use sdl_solvers::SolverKind;
use sdl_wei::RPL_WORKCELL_YAML;
use std::fmt;

/// Everything a color-picker experiment needs.
#[derive(Clone)]
pub struct AppConfig {
    /// Experiment name (portal metadata).
    pub experiment_name: String,
    /// Date string recorded in the portal (the paper's demo ran 2023-08-16).
    pub date: String,
    /// Target color. Paper experiments fix RGB (120, 120, 120).
    pub target: Rgb8,
    /// Total sample budget N. Paper: 128.
    pub sample_budget: u32,
    /// Batch size B (wells per mix iteration). Paper: 1–64.
    pub batch: u32,
    /// Decision procedure.
    pub solver: SolverKind,
    /// Grading metric (Figure 4 uses RGB Euclidean distance).
    pub metric: DeltaE,
    /// Forward mixing model of the simulated chemistry.
    pub mix: MixKind,
    /// Dye stocks.
    pub dyes: DyeSet,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Workcell document to instantiate.
    pub workcell_yaml: String,
    /// Stop early when the best score reaches this value.
    pub match_threshold: Option<f64>,
    /// Run `cp_wf_replenish` when any reservoir falls below this volume (µL).
    pub refill_watermark_ul: f64,
    /// Attach plate images to published records.
    pub publish_images: bool,
    /// Seconds of solver/compute time per iteration (the "Compute" box of
    /// Figure 2).
    pub compute_seconds: f64,
    /// Command-fault injection plan.
    pub faults: FaultPlan,
    /// Enable the detector's flat-field correction (off on the paper's rig).
    pub flat_field: bool,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            experiment_name: "ColorPickerRPL".into(),
            date: "2023-08-16".into(),
            target: Rgb8::PAPER_TARGET,
            sample_budget: 128,
            batch: 1,
            solver: SolverKind::Genetic,
            metric: DeltaE::RgbEuclidean,
            mix: MixKind::BeerLambert,
            dyes: DyeSet::cmyk(),
            seed: 42,
            workcell_yaml: RPL_WORKCELL_YAML.to_string(),
            match_threshold: None,
            refill_watermark_ul: 2_600.0,
            publish_images: true,
            compute_seconds: 2.0,
            faults: FaultPlan::none(),
            flat_field: false,
        }
    }
}

impl fmt::Debug for AppConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppConfig")
            .field("experiment_name", &self.experiment_name)
            .field("target", &self.target)
            .field("sample_budget", &self.sample_budget)
            .field("batch", &self.batch)
            .field("solver", &self.solver.name())
            .field("metric", &self.metric.name())
            .field("mix", &self.mix.name())
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Errors raised while reading an application config document.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl AppConfig {
    /// Parse an application config document; unspecified fields keep their
    /// defaults.
    ///
    /// ```yaml
    /// experiment: ColorPickerRPL
    /// target: [120, 120, 120]
    /// samples: 128
    /// batch: 4
    /// solver: genetic
    /// metric: rgb
    /// mix_model: beer-lambert
    /// seed: 7
    /// ```
    pub fn from_yaml(src: &str) -> Result<AppConfig, ConfigError> {
        let doc = from_yaml(src).map_err(|e| ConfigError(e.to_string()))?;
        let mut cfg = AppConfig::default();
        if let Some(v) = doc.opt_str("experiment") {
            cfg.experiment_name = v.to_string();
        }
        if let Some(v) = doc.opt_str("date") {
            cfg.date = v.to_string();
        }
        if let Ok(t) = doc.req_seq("target") {
            if t.len() != 3 {
                return Err(ConfigError("target must have 3 components".into()));
            }
            let ch: Vec<i64> = t.iter().filter_map(Value::as_i64).collect();
            if ch.len() != 3 || ch.iter().any(|c| !(0..=255).contains(c)) {
                return Err(ConfigError("target components must be 0-255 integers".into()));
            }
            cfg.target = Rgb8::new(ch[0] as u8, ch[1] as u8, ch[2] as u8);
        }
        if let Some(v) = doc.opt_i64("samples") {
            if v <= 0 {
                return Err(ConfigError("samples must be positive".into()));
            }
            cfg.sample_budget = v as u32;
        }
        if let Some(v) = doc.opt_i64("batch") {
            if v <= 0 {
                return Err(ConfigError("batch must be positive".into()));
            }
            cfg.batch = v as u32;
        }
        if let Some(v) = doc.opt_str("solver") {
            cfg.solver =
                SolverKind::parse(v).ok_or_else(|| ConfigError(format!("unknown solver '{v}'")))?;
        }
        if let Some(v) = doc.opt_str("metric") {
            cfg.metric = DeltaE::parse(v).ok_or_else(|| ConfigError(format!("unknown metric '{v}'")))?;
        }
        if let Some(v) = doc.opt_str("mix_model") {
            cfg.mix = MixKind::parse(v).ok_or_else(|| ConfigError(format!("unknown mix model '{v}'")))?;
        }
        if let Some(v) = doc.opt_i64("seed") {
            cfg.seed = v as u64;
        }
        if let Some(v) = doc.opt_f64("match_threshold") {
            cfg.match_threshold = Some(v);
        }
        if let Some(v) = doc.opt_f64("refill_watermark_ul") {
            cfg.refill_watermark_ul = v;
        }
        if let Some(v) = doc.opt_bool("publish_images") {
            cfg.publish_images = v;
        }
        if let Some(v) = doc.opt_f64("compute_seconds") {
            cfg.compute_seconds = v;
        }
        if let Some(v) = doc.opt_bool("flat_field") {
            cfg.flat_field = v;
        }
        Ok(cfg)
    }

    /// Experiment identifier derived from the configuration.
    pub fn experiment_id(&self) -> String {
        format!(
            "{}-b{}-{}-seed{}",
            self.experiment_name.to_lowercase().replace(' ', "-"),
            self.batch,
            self.solver.name(),
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AppConfig::default();
        assert_eq!(c.target, Rgb8::new(120, 120, 120));
        assert_eq!(c.sample_budget, 128);
        assert_eq!(c.batch, 1);
        assert_eq!(c.solver, SolverKind::Genetic);
        assert_eq!(c.metric, DeltaE::RgbEuclidean);
    }

    #[test]
    fn yaml_overrides_fields() {
        let c = AppConfig::from_yaml(
            "experiment: Demo\ntarget: [10, 20, 30]\nsamples: 64\nbatch: 8\nsolver: bayesian\nmetric: ciede2000\nmix_model: linear\nseed: 9\nmatch_threshold: 5.0\n",
        )
        .unwrap();
        assert_eq!(c.experiment_name, "Demo");
        assert_eq!(c.target, Rgb8::new(10, 20, 30));
        assert_eq!(c.sample_budget, 64);
        assert_eq!(c.batch, 8);
        assert_eq!(c.solver, SolverKind::Bayesian);
        assert_eq!(c.metric, DeltaE::Ciede2000);
        assert_eq!(c.mix, MixKind::Linear);
        assert_eq!(c.seed, 9);
        assert_eq!(c.match_threshold, Some(5.0));
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(AppConfig::from_yaml("target: [1, 2]").is_err());
        assert!(AppConfig::from_yaml("target: [1, 2, 900]").is_err());
        assert!(AppConfig::from_yaml("samples: 0").is_err());
        assert!(AppConfig::from_yaml("batch: -1").is_err());
        assert!(AppConfig::from_yaml("solver: quantum").is_err());
        assert!(AppConfig::from_yaml("metric: vibes").is_err());
    }

    #[test]
    fn experiment_id_is_descriptive() {
        let c = AppConfig::default();
        assert_eq!(c.experiment_id(), "colorpickerrpl-b1-genetic-seed42");
    }
}
