//! Application configuration.

use sdl_color::{DeltaE, DyeSet, MixKind, Rgb8};
use sdl_conf::{from_yaml, Value, ValueExt};
use sdl_desim::{FaultPlan, FaultRates};
use sdl_solvers::SolverKind;
use sdl_vision::Fidelity;
use sdl_wei::RPL_WORKCELL_YAML;
use std::fmt;

/// Everything a color-picker experiment needs.
#[derive(Clone)]
pub struct AppConfig {
    /// Experiment name (portal metadata).
    pub experiment_name: String,
    /// Date string recorded in the portal (the paper's demo ran 2023-08-16).
    pub date: String,
    /// Target color. Paper experiments fix RGB (120, 120, 120).
    pub target: Rgb8,
    /// Total sample budget N. Paper: 128.
    pub sample_budget: u32,
    /// Batch size B (wells per mix iteration). Paper: 1–64.
    pub batch: u32,
    /// Decision procedure (one of the built-in kinds).
    pub solver: SolverKind,
    /// A custom solver registered in the process-wide
    /// [`sdl_solvers::SolverRegistry`]; when set it overrides `solver`.
    /// Lets configs name downstream decision procedures without this crate
    /// (or the `SolverKind` enum) knowing about them.
    pub custom_solver: Option<String>,
    /// Grading metric (Figure 4 uses RGB Euclidean distance).
    pub metric: DeltaE,
    /// Forward mixing model of the simulated chemistry.
    pub mix: MixKind,
    /// Dye stocks.
    pub dyes: DyeSet,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Workcell document to instantiate.
    pub workcell_yaml: String,
    /// Stop early when the best score reaches this value.
    pub match_threshold: Option<f64>,
    /// Run `cp_wf_replenish` when any reservoir falls below this volume (µL).
    pub refill_watermark_ul: f64,
    /// Attach plate images to published records.
    pub publish_images: bool,
    /// Seconds of solver/compute time per iteration (the "Compute" box of
    /// Figure 2).
    pub compute_seconds: f64,
    /// Command-fault injection plan.
    pub faults: FaultPlan,
    /// Enable the detector's flat-field correction (off on the paper's rig).
    pub flat_field: bool,
    /// Camera fidelity profile for simulated measurement (`full` = frozen
    /// reference renderer, `fast` = counter-based default, `lowres` =
    /// counter-based at half resolution). Cameras whose workcell document
    /// pins an explicit `fidelity` keep it.
    pub fidelity: Fidelity,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            experiment_name: "ColorPickerRPL".into(),
            date: "2023-08-16".into(),
            target: Rgb8::PAPER_TARGET,
            sample_budget: 128,
            batch: 1,
            solver: SolverKind::Genetic,
            custom_solver: None,
            metric: DeltaE::RgbEuclidean,
            mix: MixKind::BeerLambert,
            dyes: DyeSet::cmyk(),
            seed: 42,
            workcell_yaml: RPL_WORKCELL_YAML.to_string(),
            match_threshold: None,
            refill_watermark_ul: 2_600.0,
            publish_images: true,
            compute_seconds: 2.0,
            faults: FaultPlan::none(),
            flat_field: false,
            fidelity: Fidelity::default(),
        }
    }
}

impl fmt::Debug for AppConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppConfig")
            .field("experiment_name", &self.experiment_name)
            .field("target", &self.target)
            .field("sample_budget", &self.sample_budget)
            .field("batch", &self.batch)
            .field("solver", &self.solver_label())
            .field("metric", &self.metric.name())
            .field("mix", &self.mix.name())
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Errors raised while reading an application config document.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Parse an `[r, g, b]` triple of 0-255 integers (shared by the `target`
/// field and the campaign `targets` axis).
pub(crate) fn parse_rgb_triple(v: &Value, what: &str) -> Result<Rgb8, ConfigError> {
    let t =
        v.as_seq().ok_or_else(|| ConfigError(format!("{what} must be a [r, g, b] sequence")))?;
    if t.len() != 3 {
        return Err(ConfigError(format!("{what} must have 3 components")));
    }
    let ch: Vec<i64> = t.iter().filter_map(Value::as_i64).collect();
    if ch.len() != 3 || ch.iter().any(|c| !(0..=255).contains(c)) {
        return Err(ConfigError(format!("{what} components must be 0-255 integers")));
    }
    Ok(Rgb8::new(ch[0] as u8, ch[1] as u8, ch[2] as u8))
}

impl AppConfig {
    /// Parse an application config document; unspecified fields keep their
    /// defaults.
    ///
    /// ```yaml
    /// experiment: ColorPickerRPL
    /// target: [120, 120, 120]
    /// samples: 128
    /// batch: 4
    /// solver: genetic
    /// metric: rgb
    /// mix_model: beer-lambert
    /// seed: 7
    /// ```
    pub fn from_yaml(src: &str) -> Result<AppConfig, ConfigError> {
        let doc = from_yaml(src).map_err(|e| ConfigError(e.to_string()))?;
        AppConfig::from_value(&doc)
    }

    /// Build from an already-parsed `sdl-conf` value tree; unspecified
    /// fields keep their defaults.
    pub fn from_value(doc: &Value) -> Result<AppConfig, ConfigError> {
        let mut cfg = AppConfig::default();
        if let Some(v) = doc.opt_str("experiment") {
            cfg.experiment_name = v.to_string();
        }
        if let Some(v) = doc.opt_str("date") {
            cfg.date = v.to_string();
        }
        if let Some(t) = doc.get("target") {
            cfg.target = parse_rgb_triple(t, "target")?;
        }
        if let Some(v) = doc.opt_i64("samples") {
            if v <= 0 {
                return Err(ConfigError("samples must be positive".into()));
            }
            cfg.sample_budget = v as u32;
        }
        if let Some(v) = doc.opt_i64("batch") {
            if v <= 0 {
                return Err(ConfigError("batch must be positive".into()));
            }
            cfg.batch = v as u32;
        }
        if let Some(v) = doc.opt_str("solver") {
            match SolverKind::parse(v) {
                Some(kind) => cfg.solver = kind,
                None if sdl_solvers::solver_registered(v) => {
                    cfg.custom_solver = Some(v.to_string());
                }
                None => {
                    return Err(ConfigError(format!(
                        "unknown solver '{v}' (registered solvers: {})",
                        sdl_solvers::registered_names()
                    )))
                }
            }
        }
        if let Some(v) = doc.opt_str("metric") {
            cfg.metric =
                DeltaE::parse(v).ok_or_else(|| ConfigError(format!("unknown metric '{v}'")))?;
        }
        if let Some(v) = doc.opt_str("mix_model") {
            cfg.mix =
                MixKind::parse(v).ok_or_else(|| ConfigError(format!("unknown mix model '{v}'")))?;
        }
        if let Some(v) = doc.opt_i64("seed") {
            cfg.seed = v as u64;
        }
        if let Some(v) = doc.opt_f64("match_threshold") {
            cfg.match_threshold = Some(v);
        }
        if let Some(v) = doc.opt_f64("refill_watermark_ul") {
            cfg.refill_watermark_ul = v;
        }
        if let Some(v) = doc.opt_bool("publish_images") {
            cfg.publish_images = v;
        }
        if let Some(v) = doc.opt_f64("compute_seconds") {
            cfg.compute_seconds = v;
        }
        if let Some(v) = doc.opt_bool("flat_field") {
            cfg.flat_field = v;
        }
        if let Some(v) = doc.opt_str("fidelity") {
            cfg.fidelity = Fidelity::parse(v).ok_or_else(|| {
                ConfigError(format!("unknown fidelity '{v}' (valid: {})", Fidelity::valid_names()))
            })?;
        }
        if let Some(v) = doc.opt_str("dyes") {
            cfg.dyes = match v {
                "cmyk" => DyeSet::cmyk(),
                "cmy" => DyeSet::cmy(),
                other => return Err(ConfigError(format!("unknown dye set '{other}'"))),
            };
        }
        if let Some(v) = doc.opt_str("workcell_yaml") {
            cfg.workcell_yaml = v.to_string();
        }
        let reception = doc.opt_f64("fault_reception").unwrap_or(0.0);
        let action = doc.opt_f64("fault_action").unwrap_or(0.0);
        if !(0.0..=1.0).contains(&reception) || !(0.0..=1.0).contains(&action) {
            return Err(ConfigError("fault rates must be in [0, 1]".into()));
        }
        if reception > 0.0 || action > 0.0 {
            cfg.faults = FaultPlan::uniform(FaultRates::new(reception, action));
        }
        Ok(cfg)
    }

    /// Encode as an `sdl-conf` value tree (the inverse of
    /// [`AppConfig::from_value`] for everything the declarative form
    /// covers; per-module fault overrides and custom dye chemistry have no
    /// config syntax and round-trip as their uniform/named equivalents).
    pub fn to_value(&self) -> Value {
        let mut v = Value::map();
        v.set("experiment", self.experiment_name.as_str());
        v.set("date", self.date.as_str());
        let mut target = Value::seq();
        for c in self.target.channels() {
            target.push(c as i64);
        }
        v.set("target", target);
        v.set("samples", self.sample_budget as i64);
        v.set("batch", self.batch as i64);
        v.set("solver", self.solver_label());
        v.set("metric", self.metric.name());
        v.set("mix_model", self.mix.name());
        v.set("seed", self.seed as i64);
        if let Some(t) = self.match_threshold {
            v.set("match_threshold", t);
        }
        v.set("refill_watermark_ul", self.refill_watermark_ul);
        v.set("publish_images", self.publish_images);
        v.set("compute_seconds", self.compute_seconds);
        v.set("flat_field", self.flat_field);
        v.set("fidelity", self.fidelity.name());
        match self.dyes.len() {
            3 => v.set("dyes", "cmy"),
            _ => v.set("dyes", "cmyk"),
        };
        if self.workcell_yaml != RPL_WORKCELL_YAML {
            v.set("workcell_yaml", self.workcell_yaml.as_str());
        }
        let rates = self.faults.rates_for("");
        if rates.reception > 0.0 {
            v.set("fault_reception", rates.reception);
        }
        if rates.action > 0.0 {
            v.set("fault_action", rates.action);
        }
        v
    }

    /// Experiment identifier derived from the configuration.
    pub fn experiment_id(&self) -> String {
        format!(
            "{}-b{}-{}-seed{}",
            self.experiment_name.to_lowercase().replace(' ', "-"),
            self.batch,
            self.solver_label(),
            self.seed
        )
    }

    /// The configured solver's name: the custom registered name when set,
    /// otherwise the built-in kind's canonical name.
    pub fn solver_label(&self) -> &str {
        self.custom_solver.as_deref().unwrap_or_else(|| self.solver.name())
    }

    /// Instantiate the configured decision procedure for a `dims`-dye
    /// problem, resolving custom names through the process-wide
    /// [`sdl_solvers::SolverRegistry`].
    pub fn build_solver(
        &self,
        dims: usize,
    ) -> Result<Box<dyn sdl_solvers::ColorSolver>, ConfigError> {
        match &self.custom_solver {
            Some(name) => sdl_solvers::build_registered(name, dims).ok_or_else(|| {
                ConfigError(format!(
                    "solver '{name}' is not registered (registered solvers: {})",
                    sdl_solvers::registered_names()
                ))
            }),
            None => Ok(self.solver.build(dims)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AppConfig::default();
        assert_eq!(c.target, Rgb8::new(120, 120, 120));
        assert_eq!(c.sample_budget, 128);
        assert_eq!(c.batch, 1);
        assert_eq!(c.solver, SolverKind::Genetic);
        assert_eq!(c.metric, DeltaE::RgbEuclidean);
    }

    #[test]
    fn yaml_overrides_fields() {
        let c = AppConfig::from_yaml(
            "experiment: Demo\ntarget: [10, 20, 30]\nsamples: 64\nbatch: 8\nsolver: bayesian\nmetric: ciede2000\nmix_model: linear\nseed: 9\nmatch_threshold: 5.0\n",
        )
        .unwrap();
        assert_eq!(c.experiment_name, "Demo");
        assert_eq!(c.target, Rgb8::new(10, 20, 30));
        assert_eq!(c.sample_budget, 64);
        assert_eq!(c.batch, 8);
        assert_eq!(c.solver, SolverKind::Bayesian);
        assert_eq!(c.metric, DeltaE::Ciede2000);
        assert_eq!(c.mix, MixKind::Linear);
        assert_eq!(c.seed, 9);
        assert_eq!(c.match_threshold, Some(5.0));
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(AppConfig::from_yaml("target: [1, 2]").is_err());
        assert!(AppConfig::from_yaml("target: [1, 2, 900]").is_err());
        assert!(AppConfig::from_yaml("samples: 0").is_err());
        assert!(AppConfig::from_yaml("batch: -1").is_err());
        assert!(AppConfig::from_yaml("solver: quantum").is_err());
        assert!(AppConfig::from_yaml("metric: vibes").is_err());
    }

    #[test]
    fn experiment_id_is_descriptive() {
        let c = AppConfig::default();
        assert_eq!(c.experiment_id(), "colorpickerrpl-b1-genetic-seed42");
    }

    #[test]
    fn registered_custom_solvers_resolve_in_configs() {
        sdl_solvers::register_solver("config-test-solver", |dims| {
            Box::new(sdl_solvers::RandomSolver::new(dims))
        });
        let c = AppConfig::from_yaml("solver: config-test-solver\n").unwrap();
        assert_eq!(c.custom_solver.as_deref(), Some("config-test-solver"));
        assert_eq!(c.solver_label(), "config-test-solver");
        assert!(c.experiment_id().contains("config-test-solver"));
        assert_eq!(c.build_solver(4).unwrap().name(), "random");
        // The custom name survives the conf round trip.
        let back = AppConfig::from_value(&c.to_value()).unwrap();
        assert_eq!(back.custom_solver.as_deref(), Some("config-test-solver"));
        // Unknown names list the registered set.
        let err = AppConfig::from_yaml("solver: nonexistent\n").unwrap_err();
        assert!(err.to_string().contains("config-test-solver"), "{err}");
        assert!(err.to_string().contains("genetic"), "{err}");
    }
}
