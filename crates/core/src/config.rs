//! Application configuration.

use sdl_color::{DyeSet, MixKind, Objective, Rgb8};
use sdl_conf::{from_yaml, Value, ValueExt};
use sdl_desim::{FaultPlan, FaultRates};
use sdl_solvers::SolverKind;
use sdl_vision::{DriftSpec, Fidelity};
use sdl_wei::RPL_WORKCELL_YAML;
use std::fmt;

/// Everything a color-picker experiment needs.
#[derive(Clone)]
pub struct AppConfig {
    /// Experiment name (portal metadata).
    pub experiment_name: String,
    /// Date string recorded in the portal (the paper's demo ran 2023-08-16).
    pub date: String,
    /// Target color. Paper experiments fix RGB (120, 120, 120).
    pub target: Rgb8,
    /// Extra target colors graded alongside `target`: a measurement's
    /// score is the *minimum* over all targets (the multi-target stress
    /// kind). Empty = single-target, the paper's setup.
    pub target_set: Vec<Rgb8>,
    /// Moving-target endpoint: when set, the grading (and solver) target
    /// interpolates from `target` to this color over the sample budget
    /// (the moving-target stress kind).
    pub target_to: Option<Rgb8>,
    /// Total sample budget N. Paper: 128.
    pub sample_budget: u32,
    /// Batch size B (wells per mix iteration). Paper: 1–64.
    pub batch: u32,
    /// Decision procedure (one of the built-in kinds).
    pub solver: SolverKind,
    /// A custom solver registered in the process-wide
    /// [`sdl_solvers::SolverRegistry`]; when set it overrides `solver`.
    /// Lets configs name downstream decision procedures without this crate
    /// (or the `SolverKind` enum) knowing about them.
    pub custom_solver: Option<String>,
    /// Optimization objective — the metric × color space every measurement
    /// is graded in (Figure 4 uses RGB Euclidean distance).
    pub objective: Objective,
    /// Forward mixing model of the simulated chemistry.
    pub mix: MixKind,
    /// Dye stocks.
    pub dyes: DyeSet,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Workcell document to instantiate.
    pub workcell_yaml: String,
    /// Stop early when the best score reaches this value.
    pub match_threshold: Option<f64>,
    /// Run `cp_wf_replenish` when any reservoir falls below this volume (µL).
    pub refill_watermark_ul: f64,
    /// Attach plate images to published records.
    pub publish_images: bool,
    /// Seconds of solver/compute time per iteration (the "Compute" box of
    /// Figure 2).
    pub compute_seconds: f64,
    /// Command-fault injection plan.
    pub faults: FaultPlan,
    /// Enable the detector's flat-field correction (off on the paper's rig).
    pub flat_field: bool,
    /// Camera fidelity profile for simulated measurement (`full` = frozen
    /// reference renderer, `fast` = counter-based default, `lowres` =
    /// counter-based at half resolution). Cameras whose workcell document
    /// pins an explicit `fidelity` keep it.
    pub fidelity: Fidelity,
    /// Deterministic illumination drift applied to simulated cameras
    /// (white-balance wander and sensor-gain perturbation, the stress
    /// axis); `None` = stable illuminant. Cameras whose workcell document
    /// pins an explicit `drift` keep it. Incompatible with the frozen
    /// `full` fidelity.
    pub drift: Option<DriftSpec>,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            experiment_name: "ColorPickerRPL".into(),
            date: "2023-08-16".into(),
            target: Rgb8::PAPER_TARGET,
            target_set: Vec::new(),
            target_to: None,
            sample_budget: 128,
            batch: 1,
            solver: SolverKind::Genetic,
            custom_solver: None,
            objective: Objective::Rgb,
            mix: MixKind::BeerLambert,
            dyes: DyeSet::cmyk(),
            seed: 42,
            workcell_yaml: RPL_WORKCELL_YAML.to_string(),
            match_threshold: None,
            refill_watermark_ul: 2_600.0,
            publish_images: true,
            compute_seconds: 2.0,
            faults: FaultPlan::none(),
            flat_field: false,
            fidelity: Fidelity::default(),
            drift: None,
        }
    }
}

impl fmt::Debug for AppConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppConfig")
            .field("experiment_name", &self.experiment_name)
            .field("target", &self.target)
            .field("sample_budget", &self.sample_budget)
            .field("batch", &self.batch)
            .field("solver", &self.solver_label())
            .field("objective", &self.objective.name())
            .field("mix", &self.mix.name())
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Errors raised while reading an application config document.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Parse an `[r, g, b]` triple of 0-255 integers (shared by the `target`
/// field and the campaign `targets` axis).
pub(crate) fn parse_rgb_triple(v: &Value, what: &str) -> Result<Rgb8, ConfigError> {
    let t =
        v.as_seq().ok_or_else(|| ConfigError(format!("{what} must be a [r, g, b] sequence")))?;
    if t.len() != 3 {
        return Err(ConfigError(format!("{what} must have 3 components")));
    }
    let ch: Vec<i64> = t.iter().filter_map(Value::as_i64).collect();
    if ch.len() != 3 || ch.iter().any(|c| !(0..=255).contains(c)) {
        return Err(ConfigError(format!("{what} components must be 0-255 integers")));
    }
    Ok(Rgb8::new(ch[0] as u8, ch[1] as u8, ch[2] as u8))
}

/// Encode a color as the `[r, g, b]` sequence `parse_rgb_triple` reads.
pub(crate) fn rgb_value(c: Rgb8) -> Value {
    let mut triple = Value::seq();
    for ch in c.channels() {
        triple.push(ch as i64);
    }
    triple
}

impl AppConfig {
    /// Parse an application config document; unspecified fields keep their
    /// defaults.
    ///
    /// ```yaml
    /// experiment: ColorPickerRPL
    /// target: [120, 120, 120]
    /// samples: 128
    /// batch: 4
    /// solver: genetic
    /// objective: rgb
    /// mix_model: beer-lambert
    /// seed: 7
    /// ```
    pub fn from_yaml(src: &str) -> Result<AppConfig, ConfigError> {
        let doc = from_yaml(src).map_err(|e| ConfigError(e.to_string()))?;
        AppConfig::from_value(&doc)
    }

    /// Build from an already-parsed `sdl-conf` value tree; unspecified
    /// fields keep their defaults.
    pub fn from_value(doc: &Value) -> Result<AppConfig, ConfigError> {
        let mut cfg = AppConfig::default();
        if let Some(v) = doc.opt_str("experiment") {
            cfg.experiment_name = v.to_string();
        }
        if let Some(v) = doc.opt_str("date") {
            cfg.date = v.to_string();
        }
        if let Some(t) = doc.get("target") {
            cfg.target = parse_rgb_triple(t, "target")?;
        }
        if let Some(t) = doc.get("target_set") {
            let seq = t.as_seq().ok_or_else(|| {
                ConfigError("target_set must be a list of [r, g, b] triples".into())
            })?;
            for e in seq {
                cfg.target_set.push(parse_rgb_triple(e, "target_set entry")?);
            }
        }
        if let Some(t) = doc.get("target_to") {
            cfg.target_to = Some(parse_rgb_triple(t, "target_to")?);
        }
        if let Some(v) = doc.opt_i64("samples") {
            if v <= 0 {
                return Err(ConfigError("samples must be positive".into()));
            }
            cfg.sample_budget = v as u32;
        }
        if let Some(v) = doc.opt_i64("batch") {
            if v <= 0 {
                return Err(ConfigError("batch must be positive".into()));
            }
            cfg.batch = v as u32;
        }
        if let Some(v) = doc.opt_str("solver") {
            match SolverKind::parse(v) {
                Some(kind) => cfg.solver = kind,
                None if sdl_solvers::solver_registered(v) => {
                    cfg.custom_solver = Some(v.to_string());
                }
                None => {
                    return Err(ConfigError(format!(
                        "unknown solver '{v}' (registered solvers: {})",
                        sdl_solvers::registered_names()
                    )))
                }
            }
        }
        // `objective:` names the metric × color space the run optimizes;
        // the historical `metric:` key is accepted as an alias.
        if let Some(v) = doc.opt_str("objective").or_else(|| doc.opt_str("metric")) {
            cfg.objective = Objective::parse(v).ok_or_else(|| {
                ConfigError(format!(
                    "unknown objective '{v}' (valid: {})",
                    Objective::valid_names()
                ))
            })?;
        }
        if let Some(v) = doc.opt_str("mix_model") {
            cfg.mix =
                MixKind::parse(v).ok_or_else(|| ConfigError(format!("unknown mix model '{v}'")))?;
        }
        if let Some(v) = doc.opt_i64("seed") {
            cfg.seed = v as u64;
        }
        if let Some(v) = doc.opt_f64("match_threshold") {
            cfg.match_threshold = Some(v);
        }
        if let Some(v) = doc.opt_f64("refill_watermark_ul") {
            cfg.refill_watermark_ul = v;
        }
        if let Some(v) = doc.opt_bool("publish_images") {
            cfg.publish_images = v;
        }
        if let Some(v) = doc.opt_f64("compute_seconds") {
            cfg.compute_seconds = v;
        }
        if let Some(v) = doc.opt_bool("flat_field") {
            cfg.flat_field = v;
        }
        if let Some(v) = doc.opt_str("fidelity") {
            cfg.fidelity = Fidelity::parse(v).ok_or_else(|| {
                ConfigError(format!("unknown fidelity '{v}' (valid: {})", Fidelity::valid_names()))
            })?;
        }
        if let Some(v) = doc.opt_str("drift") {
            cfg.drift = Some(DriftSpec::parse(v).ok_or_else(|| {
                ConfigError(format!("unknown drift '{v}' (valid: {})", DriftSpec::valid_names()))
            })?);
        }
        if let Some(v) = doc.opt_str("dyes") {
            cfg.dyes = match v {
                "cmyk" => DyeSet::cmyk(),
                "cmy" => DyeSet::cmy(),
                other => return Err(ConfigError(format!("unknown dye set '{other}'"))),
            };
        }
        if let Some(v) = doc.opt_str("workcell_yaml") {
            cfg.workcell_yaml = v.to_string();
        }
        let reception = doc.opt_f64("fault_reception").unwrap_or(0.0);
        let action = doc.opt_f64("fault_action").unwrap_or(0.0);
        if !(0.0..=1.0).contains(&reception) || !(0.0..=1.0).contains(&action) {
            return Err(ConfigError("fault rates must be in [0, 1]".into()));
        }
        if reception > 0.0 || action > 0.0 {
            cfg.faults = FaultPlan::uniform(FaultRates::new(reception, action));
        }
        Ok(cfg)
    }

    /// Encode as an `sdl-conf` value tree (the inverse of
    /// [`AppConfig::from_value`] for everything the declarative form
    /// covers; per-module fault overrides and custom dye chemistry have no
    /// config syntax and round-trip as their uniform/named equivalents).
    pub fn to_value(&self) -> Value {
        let mut v = Value::map();
        v.set("experiment", self.experiment_name.as_str());
        v.set("date", self.date.as_str());
        v.set("target", rgb_value(self.target));
        if !self.target_set.is_empty() {
            let mut set = Value::seq();
            for &t in &self.target_set {
                set.push(rgb_value(t));
            }
            v.set("target_set", set);
        }
        if let Some(t) = self.target_to {
            v.set("target_to", rgb_value(t));
        }
        v.set("samples", self.sample_budget as i64);
        v.set("batch", self.batch as i64);
        v.set("solver", self.solver_label());
        v.set("objective", self.objective.name());
        v.set("mix_model", self.mix.name());
        v.set("seed", self.seed as i64);
        if let Some(t) = self.match_threshold {
            v.set("match_threshold", t);
        }
        v.set("refill_watermark_ul", self.refill_watermark_ul);
        v.set("publish_images", self.publish_images);
        v.set("compute_seconds", self.compute_seconds);
        v.set("flat_field", self.flat_field);
        v.set("fidelity", self.fidelity.name());
        if let Some(d) = self.drift {
            v.set("drift", d.name().as_str());
        }
        match self.dyes.len() {
            3 => v.set("dyes", "cmy"),
            _ => v.set("dyes", "cmyk"),
        };
        if self.workcell_yaml != RPL_WORKCELL_YAML {
            v.set("workcell_yaml", self.workcell_yaml.as_str());
        }
        let rates = self.faults.rates_for("");
        if rates.reception > 0.0 {
            v.set("fault_reception", rates.reception);
        }
        if rates.action > 0.0 {
            v.set("fault_action", rates.action);
        }
        v
    }

    /// Experiment identifier derived from the configuration.
    pub fn experiment_id(&self) -> String {
        format!(
            "{}-b{}-{}-seed{}",
            self.experiment_name.to_lowercase().replace(' ', "-"),
            self.batch,
            self.solver_label(),
            self.seed
        )
    }

    /// The configured solver's name: the custom registered name when set,
    /// otherwise the built-in kind's canonical name.
    pub fn solver_label(&self) -> &str {
        self.custom_solver.as_deref().unwrap_or_else(|| self.solver.name())
    }

    /// Instantiate the configured decision procedure for a `dims`-dye
    /// problem, resolving custom names through the process-wide
    /// [`sdl_solvers::SolverRegistry`]. The solver is told the objective's
    /// score scale so RGB-calibrated thresholds renormalize.
    pub fn build_solver(
        &self,
        dims: usize,
    ) -> Result<Box<dyn sdl_solvers::ColorSolver>, ConfigError> {
        let mut solver = match &self.custom_solver {
            Some(name) => sdl_solvers::build_registered(name, dims).ok_or_else(|| {
                ConfigError(format!(
                    "solver '{name}' is not registered (registered solvers: {})",
                    sdl_solvers::registered_names()
                ))
            })?,
            None => self.solver.build(dims),
        };
        solver.set_score_scale(self.objective.scale());
        Ok(solver)
    }

    /// The grading (and solver) target at 0-based sample index `sample`:
    /// interpolates `target` → `target_to` over the sample budget when a
    /// moving target is configured, otherwise `target`. Samples past the
    /// budget (restored histories from a larger run) grade against the
    /// endpoint.
    pub fn target_at(&self, sample: u32) -> Rgb8 {
        let Some(to) = self.target_to else { return self.target };
        let last = self.sample_budget.saturating_sub(1);
        if last == 0 {
            // A one-sample budget has no trajectory to traverse; the single
            // measurement grades against the endpoint.
            return to;
        }
        let t = sample.min(last) as f64 / last as f64;
        let lerp = |a: u8, b: u8| (a as f64 + (b as f64 - a as f64) * t).round() as u8;
        let [ar, ag, ab] = self.target.channels();
        let [br, bg, bb] = to.channels();
        Rgb8::new(lerp(ar, br), lerp(ag, bg), lerp(ab, bb))
    }

    /// Grade one measurement taken as 0-based sample index `sample`: the
    /// configured objective against the (possibly moving) primary target,
    /// keeping the best score over any extra `target_set` entries.
    pub fn score_measurement(&self, measured: Rgb8, sample: u32) -> f64 {
        let mut best = self.objective.score(measured, self.target_at(sample));
        for &t in &self.target_set {
            best = best.min(self.objective.score(measured, t));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AppConfig::default();
        assert_eq!(c.target, Rgb8::new(120, 120, 120));
        assert_eq!(c.sample_budget, 128);
        assert_eq!(c.batch, 1);
        assert_eq!(c.solver, SolverKind::Genetic);
        assert_eq!(c.objective, Objective::Rgb);
        assert!(c.target_set.is_empty());
        assert_eq!(c.target_to, None);
        assert_eq!(c.drift, None);
    }

    #[test]
    fn yaml_overrides_fields() {
        let c = AppConfig::from_yaml(
            "experiment: Demo\ntarget: [10, 20, 30]\nsamples: 64\nbatch: 8\nsolver: bayesian\nobjective: ciede2000\nmix_model: linear\nseed: 9\nmatch_threshold: 5.0\n",
        )
        .unwrap();
        assert_eq!(c.experiment_name, "Demo");
        assert_eq!(c.target, Rgb8::new(10, 20, 30));
        assert_eq!(c.sample_budget, 64);
        assert_eq!(c.batch, 8);
        assert_eq!(c.solver, SolverKind::Bayesian);
        assert_eq!(c.objective, Objective::Ciede2000);
        assert_eq!(c.mix, MixKind::Linear);
        assert_eq!(c.seed, 9);
        assert_eq!(c.match_threshold, Some(5.0));
    }

    #[test]
    fn metric_key_is_an_objective_alias() {
        let c = AppConfig::from_yaml("metric: cie76\n").unwrap();
        assert_eq!(c.objective, Objective::Cie76);
        // An explicit `objective:` wins over the legacy alias.
        let c = AppConfig::from_yaml("objective: cam16ucs\nmetric: cie76\n").unwrap();
        assert_eq!(c.objective, Objective::Cam16Ucs);
        // The encoded form uses the modern key.
        assert_eq!(c.to_value().opt_str("objective"), Some("cam16ucs"));
        assert!(c.to_value().opt_str("metric").is_none());
    }

    #[test]
    fn stress_fields_roundtrip_through_conf() {
        let c = AppConfig::from_yaml(
            "target: [10, 20, 30]\ntarget_set: [[200, 10, 10], [10, 200, 10]]\ntarget_to: [250, 250, 250]\ndrift: wb+gain\n",
        )
        .unwrap();
        assert_eq!(c.target_set, vec![Rgb8::new(200, 10, 10), Rgb8::new(10, 200, 10)]);
        assert_eq!(c.target_to, Some(Rgb8::new(250, 250, 250)));
        assert_eq!(c.drift, Some(DriftSpec::WB_GAIN));
        let back = AppConfig::from_value(&c.to_value()).unwrap();
        assert_eq!(back.target_set, c.target_set);
        assert_eq!(back.target_to, c.target_to);
        assert_eq!(back.drift, c.drift);
        // Defaults keep the stress keys out of the encoded form.
        let v = AppConfig::default().to_value();
        assert!(v.get("target_set").is_none());
        assert!(v.get("target_to").is_none());
        assert!(v.get("drift").is_none());
    }

    #[test]
    fn moving_target_interpolates_over_the_budget() {
        let c = AppConfig {
            target: Rgb8::new(0, 100, 200),
            target_to: Some(Rgb8::new(100, 100, 0)),
            sample_budget: 101,
            ..AppConfig::default()
        };
        assert_eq!(c.target_at(0), Rgb8::new(0, 100, 200));
        assert_eq!(c.target_at(50), Rgb8::new(50, 100, 100));
        assert_eq!(c.target_at(100), Rgb8::new(100, 100, 0));
        // Past-budget samples clamp to the endpoint.
        assert_eq!(c.target_at(10_000), Rgb8::new(100, 100, 0));
        // No endpoint → the target never moves.
        let fixed = AppConfig::default();
        assert_eq!(fixed.target_at(77), fixed.target);
    }

    #[test]
    fn multi_target_scoring_keeps_the_best() {
        let c = AppConfig {
            target: Rgb8::new(0, 0, 0),
            target_set: vec![Rgb8::new(200, 200, 200)],
            ..AppConfig::default()
        };
        let m = Rgb8::new(190, 190, 190);
        assert_eq!(c.score_measurement(m, 0), m.distance(Rgb8::new(200, 200, 200)));
        // With no extra targets the score is exactly the paper's grading.
        let plain = AppConfig::default();
        assert_eq!(plain.score_measurement(m, 0), m.distance(plain.target));
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(AppConfig::from_yaml("target: [1, 2]").is_err());
        assert!(AppConfig::from_yaml("target: [1, 2, 900]").is_err());
        assert!(AppConfig::from_yaml("samples: 0").is_err());
        assert!(AppConfig::from_yaml("batch: -1").is_err());
        assert!(AppConfig::from_yaml("solver: quantum").is_err());
        assert!(AppConfig::from_yaml("metric: vibes").is_err());
        let err = AppConfig::from_yaml("objective: vibes").unwrap_err();
        assert!(err.to_string().contains("cam16ucs"), "{err}");
        let err = AppConfig::from_yaml("drift: vibes").unwrap_err();
        assert!(err.to_string().contains("wb+gain"), "{err}");
        assert!(AppConfig::from_yaml("target_set: [[1, 2]]").is_err());
        assert!(AppConfig::from_yaml("target_set: 3").is_err());
        assert!(AppConfig::from_yaml("target_to: [1, 2, 900]").is_err());
    }

    #[test]
    fn experiment_id_is_descriptive() {
        let c = AppConfig::default();
        assert_eq!(c.experiment_id(), "colorpickerrpl-b1-genetic-seed42");
    }

    #[test]
    fn registered_custom_solvers_resolve_in_configs() {
        sdl_solvers::register_solver("config-test-solver", |dims| {
            Box::new(sdl_solvers::RandomSolver::new(dims))
        });
        let c = AppConfig::from_yaml("solver: config-test-solver\n").unwrap();
        assert_eq!(c.custom_solver.as_deref(), Some("config-test-solver"));
        assert_eq!(c.solver_label(), "config-test-solver");
        assert!(c.experiment_id().contains("config-test-solver"));
        assert_eq!(c.build_solver(4).unwrap().name(), "random");
        // The custom name survives the conf round trip.
        let back = AppConfig::from_value(&c.to_value()).unwrap();
        assert_eq!(back.custom_solver.as_deref(), Some("config-test-solver"));
        // Unknown names list the registered set.
        let err = AppConfig::from_yaml("solver: nonexistent\n").unwrap_err();
        assert!(err.to_string().contains("config-test-solver"), "{err}");
        assert!(err.to_string().contains("genetic"), "{err}");
    }
}
