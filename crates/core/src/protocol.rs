//! OT-2 protocol generation: solver ratios → dispense instructions.
//!
//! The orange box under `Ot2.Run_Protocol` in Figure 2 is a protocol file;
//! here it is built programmatically from the solver's proposals and the
//! plate's next free wells.

use sdl_color::{DyeSet, Recipe, RecipeError};
use sdl_instruments::{ProtocolSpec, WellDispense, WellIndex};

/// Errors while building a protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// More proposals than free wells supplied.
    NotEnoughWells {
        /// Proposals to place.
        proposals: usize,
        /// Wells available.
        wells: usize,
    },
    /// A proposal could not be converted to a recipe.
    BadRecipe(RecipeError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::NotEnoughWells { proposals, wells } => {
                write!(f, "{proposals} proposals but only {wells} free wells")
            }
            ProtocolError::BadRecipe(e) => write!(f, "bad recipe: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Build the mix-colors protocol for one batch.
pub fn build_protocol(
    ratios: &[Vec<f64>],
    wells: &[WellIndex],
    dyes: &DyeSet,
) -> Result<ProtocolSpec, ProtocolError> {
    if ratios.len() > wells.len() {
        return Err(ProtocolError::NotEnoughWells { proposals: ratios.len(), wells: wells.len() });
    }
    let mut dispenses = Vec::with_capacity(ratios.len());
    for (r, &well) in ratios.iter().zip(wells) {
        let recipe = Recipe::from_ratios(r, dyes).map_err(ProtocolError::BadRecipe)?;
        dispenses.push(WellDispense { well, volumes_ul: recipe.volumes_ul().to_vec() });
    }
    Ok(ProtocolSpec { name: "combine_colors.yaml".into(), dispenses })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_dispenses_in_well_order() {
        let dyes = DyeSet::cmyk();
        let ratios = vec![vec![0.5, 0.0, 0.0, 0.25], vec![0.0, 1.0, 0.0, 0.0]];
        let wells = vec![WellIndex::new(0, 0), WellIndex::new(0, 1), WellIndex::new(0, 2)];
        let p = build_protocol(&ratios, &wells, &dyes).unwrap();
        assert_eq!(p.dispenses.len(), 2);
        assert_eq!(p.dispenses[0].well, WellIndex::new(0, 0));
        assert_eq!(p.dispenses[0].volumes_ul, vec![20.0, 0.0, 0.0, 10.0]);
        assert_eq!(p.dispenses[1].volumes_ul, vec![0.0, 40.0, 0.0, 0.0]);
        assert_eq!(p.name, "combine_colors.yaml");
    }

    #[test]
    fn too_many_proposals_fail() {
        let dyes = DyeSet::cmyk();
        let ratios = vec![vec![0.1; 4]; 3];
        let wells = vec![WellIndex::new(0, 0)];
        assert_eq!(
            build_protocol(&ratios, &wells, &dyes),
            Err(ProtocolError::NotEnoughWells { proposals: 3, wells: 1 })
        );
    }

    #[test]
    fn arity_mismatch_is_a_recipe_error() {
        let dyes = DyeSet::cmyk();
        let ratios = vec![vec![0.1; 3]];
        let wells = vec![WellIndex::new(0, 0)];
        assert!(matches!(build_protocol(&ratios, &wells, &dyes), Err(ProtocolError::BadRecipe(_))));
    }
}
