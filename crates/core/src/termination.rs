//! Termination criteria: "once termination criteria are satisfied (e.g.,
//! target color matched or resources exhausted), the application runs
//! cp_wf_trashplate again to finalize the experiment" (§2.3).

use std::fmt;

/// Why an experiment ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TerminationReason {
    /// The sample budget (N) was spent.
    BudgetExhausted,
    /// The best score reached the configured match threshold.
    TargetMatched {
        /// The score that satisfied the threshold.
        score: f64,
    },
    /// The sciclops ran out of plates.
    OutOfPlates,
}

impl TerminationReason {
    /// Did the run end by matching the target?
    pub fn matched(&self) -> bool {
        matches!(self, TerminationReason::TargetMatched { .. })
    }
}

impl fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationReason::BudgetExhausted => write!(f, "sample budget exhausted"),
            TerminationReason::TargetMatched { score } => {
                write!(f, "target matched (score {score:.2})")
            }
            TerminationReason::OutOfPlates => write!(f, "plate storage exhausted"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_matched() {
        assert_eq!(TerminationReason::BudgetExhausted.to_string(), "sample budget exhausted");
        let t = TerminationReason::TargetMatched { score: 4.5 };
        assert!(t.matched());
        assert!(t.to_string().contains("4.50"));
        assert!(!TerminationReason::OutOfPlates.matched());
    }
}
