//! E6 — the paper's future-work experiment (§4): "An interesting future
//! experiment would involve integrating additional OT2s in our workflow, so
//! that multiple plates of colors could be mixed at once. This would lead to
//! an increase in CCWH, but potentially a lower TWH for the same
//! experimental results."
//!
//! Each OT-2 gets its own closed-loop *flow process* on the `sdl-desim`
//! executive: flows own a plate on their handler's deck and contend for the
//! shared `pf400`, `sciclops` and camera nest exactly as physical plates
//! would on the rail. The solver and sample budget are shared, so N samples
//! are split dynamically between handlers.

use crate::app::AppError;
use crate::config::AppConfig;
use crate::protocol::build_protocol;
use parking_lot::Mutex;
use sdl_color::Rgb8;
use sdl_desim::{RngHub, SimDuration, SimTime, Simulation};
use sdl_instruments::{ActionArgs, ActionData, WellIndex};
use sdl_solvers::{ColorSolver, Observation};
use sdl_vision::{Detector, DetectorScratch};
use sdl_wei::{Engine, Workcell, WorkcellConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Outcome of a multi-OT2 run.
#[derive(Debug, Clone)]
pub struct MultiOt2Outcome {
    /// Liquid handlers used.
    pub n_ot2: usize,
    /// Samples measured (== budget when plates suffice).
    pub samples_measured: u32,
    /// Wall duration on the virtual clock (the TWH of a fault-free run).
    pub duration: SimDuration,
    /// Robotic commands completed (the CCWH of a fault-free run).
    pub robotic_commands: u64,
    /// All commands completed.
    pub total_commands: u64,
    /// Best score achieved.
    pub best_score: f64,
    /// Samples processed by each handler.
    pub per_handler_samples: Vec<u32>,
    /// Plates consumed.
    pub plates_used: u32,
    /// Mean time per color.
    pub time_per_color: SimDuration,
    /// Degenerate-surrogate fallbacks recorded by the shared solver.
    pub solver_fallbacks: u64,
}

/// Build a workcell document with `n` liquid handlers (each with its own
/// replenisher) sharing one crane, arm and camera.
pub fn multi_ot2_workcell_yaml(n: usize) -> String {
    let mut out = String::from(
        "name: rpl_workcell_multi\nmodules:\n  - name: sciclops\n    type: plate_crane\n    config:\n      towers: [10, 10, 10, 10]\n      exchange: sciclops.exchange\n  - name: pf400\n    type: manipulator\n",
    );
    for i in 1..=n {
        let _ = write!(
            out,
            "  - name: ot2_{i}\n    type: liquid_handler\n    config:\n      deck: ot2_{i}.deck\n      reservoir_capacity_ul: 4000\n      tips: 960\n  - name: barty_{i}\n    type: liquid_replenisher\n    config:\n      feeds: ot2_{i}\n      stock_ul: 2000000\n"
        );
    }
    out.push_str("  - name: camera\n    type: camera\n    config:\n      nest: camera.nest\n");
    out
}

/// Shared state between flow processes.
struct Shared {
    engine: Engine,
    solver: Box<dyn ColorSolver>,
    solver_rng: rand::rngs::StdRng,
    history: Vec<Observation>,
    remaining: u32,
    samples_done: u32,
    plates_used: u32,
    per_handler: Vec<u32>,
    error: Option<String>,
}

/// Run the shared budget over `n_ot2` handlers. Uses `base` for target,
/// solver, budget, batch and seed; the workcell is generated.
pub fn run_multi_ot2(base: &AppConfig, n_ot2: usize) -> Result<MultiOt2Outcome, AppError> {
    assert!(n_ot2 >= 1);
    let hub = RngHub::new(base.seed);
    let yaml = multi_ot2_workcell_yaml(n_ot2);
    let mut cell_cfg = WorkcellConfig::from_yaml(&yaml)?;
    cell_cfg.default_camera_fidelity(base.fidelity.name());
    if let Some(drift) = base.drift {
        cell_cfg.default_camera_drift(&drift.name(), base.seed);
    }
    let cell = Workcell::instantiate(cell_cfg, base.dyes.clone(), base.mix)?;
    let engine = Engine::new(cell, hub).with_faults(base.faults.clone());

    let shared = Arc::new(Mutex::new(Shared {
        engine,
        solver: base.build_solver(base.dyes.len()).map_err(|e| AppError::Setup(e.to_string()))?,
        solver_rng: hub.stream("app.solver"),
        history: Vec::new(),
        remaining: base.sample_budget,
        samples_done: 0,
        plates_used: 0,
        per_handler: vec![0; n_ot2],
        error: None,
    }));

    let mut sim = Simulation::new(hub).without_trace();
    // One desim resource per contended module; the camera resource guards
    // the whole image turnaround (nest occupancy included).
    let mut res = BTreeMap::new();
    for name in ["sciclops", "pf400", "camera"] {
        res.insert(name.to_string(), sim.resource(name, 1));
    }
    for i in 1..=n_ot2 {
        res.insert(format!("ot2_{i}"), sim.resource(format!("ot2_{i}"), 1));
        res.insert(format!("barty_{i}"), sim.resource(format!("barty_{i}"), 1));
    }

    let batch = base.batch;
    let dyes = base.dyes.clone();
    let watermark = base.refill_watermark_ul;
    let compute_s = base.compute_seconds;

    for flow in 1..=n_ot2 {
        let shared = Arc::clone(&shared);
        let res = res.clone();
        let dyes = dyes.clone();
        let cfg = base.clone();
        sim.process(format!("flow-{flow}"), move |ctx| {
            let ot2 = format!("ot2_{flow}");
            let barty = format!("barty_{flow}");
            let deck = format!("{ot2}.deck");
            let detector = Detector::default();
            let mut scratch = DetectorScratch::default();

            // Dispatch one command while holding the module's resource.
            // Returns the data; records any engine error in `shared`.
            macro_rules! command {
                ($module:expr, $action:expr, $args:expr) => {{
                    let r = res[$module];
                    ctx.acquire(r);
                    let result = shared.lock().engine.dispatch(ctx.now(), $module, $action, &$args);
                    match result {
                        Ok(cmd) => {
                            ctx.hold(cmd.busy);
                            ctx.release(r);
                            Some(cmd.data)
                        }
                        Err(e) => {
                            shared.lock().error.get_or_insert(e.to_string());
                            ctx.release(r);
                            None
                        }
                    }
                }};
            }

            let mut have_plate = false;
            'outer: loop {
                // Reserve a batch from the shared budget.
                let b = {
                    let mut s = shared.lock();
                    if s.error.is_some() || s.remaining == 0 {
                        break 'outer;
                    }
                    let b = s.remaining.min(batch);
                    s.remaining -= b;
                    b as usize
                };

                // Plate lifecycle: fetch on demand, swap when a full batch
                // no longer fits (same policy as the single-flow app).
                let mut wells: Vec<WellIndex> = Vec::new();
                for _ in 0..2 {
                    if have_plate {
                        let s = shared.lock();
                        if let Ok(Some(id)) = s.engine.workcell.world.plate_at(&deck) {
                            if let Ok(plate) = s.engine.workcell.world.plate(id) {
                                wells = plate.next_free(b);
                            }
                        }
                    }
                    if wells.len() >= b && have_plate {
                        break;
                    }
                    // Trash the exhausted plate, then fetch a fresh one.
                    if have_plate {
                        let args =
                            ActionArgs::none().with("source", deck.clone()).with("target", "trash");
                        if command!("pf400", "transfer", args).is_none() {
                            break 'outer;
                        }
                    }
                    // sciclops held across the exchange hand-off so flows
                    // cannot collide on the exchange nest.
                    let crane = res["sciclops"];
                    ctx.acquire(crane);
                    let got = {
                        let result = shared.lock().engine.dispatch(
                            ctx.now(),
                            "sciclops",
                            "get_plate",
                            &ActionArgs::none(),
                        );
                        match result {
                            Ok(cmd) => {
                                ctx.hold(cmd.busy);
                                true
                            }
                            Err(e) => {
                                shared.lock().error.get_or_insert(e.to_string());
                                false
                            }
                        }
                    };
                    if !got {
                        ctx.release(crane);
                        break 'outer;
                    }
                    let args = ActionArgs::none()
                        .with("source", "sciclops.exchange")
                        .with("target", deck.clone());
                    let moved = command!("pf400", "transfer", args).is_some();
                    ctx.release(crane);
                    if !moved {
                        break 'outer;
                    }
                    shared.lock().plates_used += 1;
                    have_plate = true;
                    // Prime this handler's reservoirs.
                    if command!(&barty, "fill_colors", ActionArgs::none()).is_none() {
                        break 'outer;
                    }
                }
                if wells.len() < b {
                    let s = shared.lock();
                    if let Ok(Some(id)) = s.engine.workcell.world.plate_at(&deck) {
                        if let Ok(plate) = s.engine.workcell.world.plate(id) {
                            wells = plate.next_free(b);
                        }
                    }
                }
                if wells.len() < b {
                    shared.lock().error.get_or_insert("plate allocation failed".into());
                    break 'outer;
                }
                let wells = &wells[..b];

                // Propose from the shared history.
                let (ratios, protocol) = {
                    let mut s = shared.lock();
                    let Shared { solver, history, solver_rng, samples_done, .. } = &mut *s;
                    // The shared counter orders concurrent flows, so a
                    // moving target advances identically run to run.
                    let target = cfg.target_at(*samples_done);
                    let ratios = solver.propose(target, history, b, solver_rng);
                    let protocol = match build_protocol(&ratios, wells, &dyes) {
                        Ok(p) => p,
                        Err(e) => {
                            s.error.get_or_insert(e.to_string());
                            break 'outer;
                        }
                    };
                    (ratios, protocol)
                };

                // Replenish this handler's bank when low.
                let needs_refill = {
                    let s = shared.lock();
                    match s.engine.workcell.world.bank(&ot2) {
                        Ok(bank) => {
                            bank.reservoirs.iter().any(|r| r.volume_ul < watermark)
                                || !bank.can_supply(&protocol.demand_ul(dyes.len()))
                        }
                        Err(_) => false,
                    }
                };
                if needs_refill {
                    if command!(&barty, "drain_colors", ActionArgs::none()).is_none() {
                        break 'outer;
                    }
                    if command!(&barty, "fill_colors", ActionArgs::none()).is_none() {
                        break 'outer;
                    }
                }

                // Mix on this flow's handler (runs concurrently with other
                // flows — the whole point of the experiment).
                let args = ActionArgs::none().with_protocol(protocol);
                if command!(&ot2, "run_protocol", args).is_none() {
                    break 'outer;
                }

                // Image turnaround: hold the camera for the full nest visit.
                let cam = res["camera"];
                ctx.acquire(cam);
                let to_nest =
                    ActionArgs::none().with("source", deck.clone()).with("target", "camera.nest");
                if command!("pf400", "transfer", to_nest).is_none() {
                    ctx.release(cam);
                    break 'outer;
                }
                // The camera resource is already held for the whole nest
                // visit; dispatch the capture directly.
                let capture = shared.lock().engine.dispatch(
                    ctx.now(),
                    "camera",
                    "take_picture",
                    &ActionArgs::none(),
                );
                let image = match capture {
                    Ok(cmd) => {
                        ctx.hold(cmd.busy);
                        match cmd.data {
                            ActionData::Image(img) => img,
                            _ => {
                                shared
                                    .lock()
                                    .error
                                    .get_or_insert("camera returned no image".into());
                                ctx.release(cam);
                                break 'outer;
                            }
                        }
                    }
                    Err(e) => {
                        shared.lock().error.get_or_insert(e.to_string());
                        ctx.release(cam);
                        break 'outer;
                    }
                };
                let back =
                    ActionArgs::none().with("source", "camera.nest").with("target", deck.clone());
                if command!("pf400", "transfer", back).is_none() {
                    ctx.release(cam);
                    break 'outer;
                }
                ctx.release(cam);

                // Compute: detection + grading.
                ctx.hold(SimDuration::from_secs_f64(compute_s));
                let reading = match detector.detect_with(&image, &mut scratch) {
                    Ok(r) => r,
                    Err(e) => {
                        shared.lock().error.get_or_insert(e.to_string());
                        break 'outer;
                    }
                };
                let mut s = shared.lock();
                for (ratio, well) in ratios.iter().zip(wells) {
                    let measured: Rgb8 =
                        reading.well(well.row, well.col).map(|w| w.color).unwrap_or_default();
                    let score = cfg.score_measurement(measured, s.samples_done);
                    s.history.push(Observation { ratios: ratio.clone(), measured, score });
                    s.samples_done += 1;
                    s.per_handler[flow - 1] += 1;
                }
            }
        });
    }

    let outcome = sim.run().map_err(|e| AppError::Setup(e.to_string()))?;
    let shared = Arc::try_unwrap(shared)
        .map_err(|_| AppError::Setup("flow still holds shared state".into()))
        .map(Mutex::into_inner)?;
    if let Some(err) = shared.error {
        return Err(AppError::Setup(err));
    }
    let best =
        sdl_solvers::best_observation(&shared.history).map(|o| o.score).unwrap_or(f64::INFINITY);
    let duration = outcome.end - SimTime::ZERO;
    let solver_fallbacks = shared.solver.degenerate_fallbacks();
    Ok(MultiOt2Outcome {
        n_ot2,
        samples_measured: shared.samples_done,
        duration,
        robotic_commands: shared.engine.counters.robotic_completed,
        total_commands: shared.engine.counters.completed,
        best_score: best,
        per_handler_samples: shared.per_handler,
        plates_used: shared.plates_used,
        time_per_color: if shared.samples_done > 0 {
            duration / shared.samples_done as u64
        } else {
            SimDuration::ZERO
        },
        solver_fallbacks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(samples: u32, batch: u32) -> AppConfig {
        AppConfig { sample_budget: samples, batch, publish_images: false, ..AppConfig::default() }
    }

    #[test]
    fn yaml_generator_scales() {
        let y = multi_ot2_workcell_yaml(3);
        let cfg = WorkcellConfig::from_yaml(&y).unwrap();
        assert_eq!(cfg.modules.len(), 2 + 3 * 2 + 1);
    }

    #[test]
    fn single_handler_matches_sequential_structure() {
        let out = run_multi_ot2(&base(8, 2), 1).expect("n=1 run");
        assert_eq!(out.samples_measured, 8);
        assert_eq!(out.per_handler_samples, vec![8]);
        assert!(out.best_score.is_finite());
    }

    #[test]
    fn two_handlers_split_work_and_finish_faster() {
        let one = run_multi_ot2(&base(16, 2), 1).expect("n=1");
        let two = run_multi_ot2(&base(16, 2), 2).expect("n=2");
        assert_eq!(two.samples_measured, 16);
        // Both handlers did real work.
        assert!(two.per_handler_samples.iter().all(|&s| s > 0), "{:?}", two.per_handler_samples);
        // The paper's prediction: lower TWH for the same experimental result.
        assert!(
            two.duration.as_secs_f64() < one.duration.as_secs_f64() * 0.75,
            "2 OT2s: {} vs 1 OT2: {}",
            two.duration,
            one.duration
        );
        // Commands at least match the single-handler count (extra plate
        // logistics can only add).
        assert!(two.robotic_commands >= one.robotic_commands.min(16 * 3));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_multi_ot2(&base(12, 3), 2).expect("a");
        let b = run_multi_ot2(&base(12, 3), 2).expect("b");
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.per_handler_samples, b.per_handler_samples);
    }
}
