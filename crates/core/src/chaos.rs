//! Deterministic, seeded chaos injection for the distributed stack.
//!
//! Production failures hit three layers — the transport between driver and
//! workers, the worker processes themselves, and the durable event log —
//! and each layer carries a contract (idempotent resends, eviction and
//! readmission, clean-prefix recovery) that is only believable if it is
//! exercised *systematically*. This module makes failure a first-class,
//! reproducible input:
//!
//! * [`ChaosPolicy`] — a parsed fault schedule (`seed=7,connect=0.2,...`)
//!   shared by every layer.
//! * [`ChaosStream`] — the client-side roll stream used by
//!   [`RemoteBackend`](crate::RemoteBackend). Rolls are a pure counter-based
//!   function of `(seed, key, roll index)` via [`rand::counter::hash`], so
//!   a fixed `(chaos_seed, worker, scenario, attempt)` tuple reproduces the
//!   exact same fault interleaving on every run — chaos is replayable, not
//!   merely random.
//! * [`ChaosClock`] — the worker-side shared stream (`sdl-lab serve
//!   --chaos`), rolled once per `/v1` request to stall, error, or hang up
//!   sessions in-process.
//! * [`Corruption`] — an event-log corruption injector (torn tails, bit
//!   flips, truncated boundaries) feeding `EventLog::recover` fuzzing.
//!
//! Faults split into two families. *Retry-safe* faults (connect refusals,
//! pre-read disconnects, injected 5xx, duplicate-response replays, read
//! timeouts) land on paths the stack already guarantees are idempotent —
//! a campaign under any retry-safe schedule must produce a fingerprint
//! bit-identical to the clean run. Everything else (worker kills past the
//! failure budget, hard scenario errors) must degrade *gracefully*: the
//! campaign terminates with deterministic `scenario_failed` results
//! instead of hanging or corrupting the merge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rand::counter;

/// A parsed chaos schedule: per-fault probabilities plus the seed that
/// makes every injection decision reproducible.
///
/// Parsed from a `key=value` spec string (see [`ChaosPolicy::parse`]).
/// Client-side faults (`connect`, `disconnect`, `timeout`, `http500`,
/// `replay`) drive [`ChaosStream`]; worker-side faults (`stall`, `error`,
/// `kill`) drive [`ChaosClock`]. A single policy can carry both families —
/// each layer only rolls the faults it owns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPolicy {
    /// Seed for every injection roll. Same seed, same schedule of faults.
    pub seed: u64,
    /// P(refuse a TCP connect attempt) — client side, retry-safe.
    pub connect: f64,
    /// P(drop the connection after sending, before reading the response) —
    /// client side, retry-safe (the worker's idempotent replay absorbs the
    /// resend).
    pub disconnect: f64,
    /// P(simulate a read timeout) — client side. Surfaces as a transport
    /// error, so the scheduler evicts the worker and re-drives elsewhere;
    /// retry-safe at the campaign level.
    pub timeout: f64,
    /// P(synthesize an HTTP 500 instead of sending the request) — client
    /// side, retry-safe (the request is never sent, so a resend is a plain
    /// first send).
    pub http500: f64,
    /// P(discard a good response and resend, exercising the worker's
    /// duplicate-response replay cache) — client side, retry-safe.
    pub replay: f64,
    /// P(stall a `/v1` request by [`stall_ms`](ChaosPolicy::stall_ms)) —
    /// worker side, retry-safe (slow is not wrong).
    pub stall: f64,
    /// P(answer a `/v1` request with a real HTTP 500) — worker side. Not
    /// retry-safe: surfaces as a deterministic scenario failure.
    pub error: f64,
    /// P(hang up a `/v1` connection without answering) — worker side.
    /// Exercises eviction/readmission/steal; quarantine bounds the damage.
    pub kill: f64,
    /// P(shed a `/v1` request with a 429 + `Retry-After`, as if a quota
    /// had run dry) — worker side, retry-safe (the client treats it as
    /// backpressure and retries the same worker).
    pub shed: f64,
    /// P(trickle the request onto the wire in two halves with a pause
    /// between them, simulating a slow client) — client side, retry-safe
    /// (slower, never wrong; exercises the server's read deadlines).
    pub slow_reader: f64,
    /// How long a `stall` fault sleeps, in milliseconds. Also the pause a
    /// `slow_reader` fault inserts mid-request.
    pub stall_ms: u64,
}

impl Default for ChaosPolicy {
    /// All probabilities zero: a no-op policy that injects nothing.
    fn default() -> ChaosPolicy {
        ChaosPolicy {
            seed: 0,
            connect: 0.0,
            disconnect: 0.0,
            timeout: 0.0,
            http500: 0.0,
            replay: 0.0,
            stall: 0.0,
            error: 0.0,
            kill: 0.0,
            shed: 0.0,
            slow_reader: 0.0,
            stall_ms: 25,
        }
    }
}

impl ChaosPolicy {
    /// Parse a `key=value,key=value` chaos spec, e.g.
    /// `seed=7,connect=0.2,disconnect=0.1,replay=0.1` (client) or
    /// `seed=1,stall=0.3,stall_ms=50,kill=0.05` (worker). Unknown keys and
    /// probabilities outside `[0, 1]` are errors. An empty spec is the
    /// no-op policy.
    pub fn parse(spec: &str) -> Result<ChaosPolicy, String> {
        let mut policy = ChaosPolicy::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec: `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |slot: &mut f64| -> Result<(), String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("chaos spec: `{key}={value}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos spec: `{key}={value}` must be in [0, 1]"));
                }
                *slot = p;
                Ok(())
            };
            match key {
                "seed" => {
                    policy.seed = value
                        .parse()
                        .map_err(|_| format!("chaos spec: `seed={value}` is not a u64"))?;
                }
                "stall_ms" => {
                    policy.stall_ms = value
                        .parse()
                        .map_err(|_| format!("chaos spec: `stall_ms={value}` is not a u64"))?;
                }
                "connect" => prob(&mut policy.connect)?,
                "disconnect" => prob(&mut policy.disconnect)?,
                "timeout" => prob(&mut policy.timeout)?,
                "http500" => prob(&mut policy.http500)?,
                "replay" => prob(&mut policy.replay)?,
                "stall" => prob(&mut policy.stall)?,
                "error" => prob(&mut policy.error)?,
                "kill" => prob(&mut policy.kill)?,
                "shed" => prob(&mut policy.shed)?,
                "slow_reader" => prob(&mut policy.slow_reader)?,
                other => return Err(format!("chaos spec: unknown key `{other}`")),
            }
        }
        Ok(policy)
    }

    /// True when no fault has a non-zero probability (the policy is inert).
    pub fn is_noop(&self) -> bool {
        [
            self.connect,
            self.disconnect,
            self.timeout,
            self.http500,
            self.replay,
            self.stall,
            self.error,
            self.kill,
            self.shed,
            self.slow_reader,
        ]
        .iter()
        .all(|&p| p == 0.0)
    }

    /// True when every client-side fault in the policy is retry-safe, i.e.
    /// the fingerprint-identity contract applies (no worker-side scenario
    /// failures are scheduled).
    pub fn is_retry_safe(&self) -> bool {
        self.error == 0.0 && self.kill == 0.0
    }

    /// A [`ChaosStream`] for one injection site, keyed so distinct sites
    /// (worker × scenario × attempt) roll independent schedules.
    pub fn stream(&self, key: u64) -> ChaosStream {
        ChaosStream { policy: *self, key: counter::hash(self.seed, key), counter: 0 }
    }
}

/// The key identifying one client-side injection site: a pure function of
/// `(worker url, scenario index, attempt)`, so the fault schedule a backend
/// experiences is fixed by where it points and which re-drive it is.
pub fn stream_key(worker: &str, scenario: usize, attempt: u32) -> u64 {
    let url = counter::mix64(fnv1a64(worker.as_bytes()));
    counter::hash(counter::hash(url, scenario as u64), attempt as u64)
}

/// FNV-1a 64-bit — the same tiny hash the event log uses for line
/// checksums, reused here to fold worker URLs into stream keys.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic roll stream for one client-side injection site.
///
/// Each call to [`fires`](ChaosStream::fires) consumes one counter tick;
/// the sequence of decisions is a pure function of `(policy.seed, key)`.
/// [`RemoteBackend`](crate::RemoteBackend) holds one stream per scenario
/// attempt and rolls it at every fault point in a fixed order, so replaying
/// the same attempt replays the same faults.
#[derive(Debug, Clone)]
pub struct ChaosStream {
    policy: ChaosPolicy,
    key: u64,
    counter: u64,
}

impl ChaosStream {
    /// The policy this stream rolls against.
    pub fn policy(&self) -> &ChaosPolicy {
        &self.policy
    }

    /// Roll once: true with probability `p`, deterministically in the
    /// stream's counter sequence. Every call advances the counter whether
    /// or not the fault fires, so fault points stay aligned across runs.
    pub fn fires(&mut self, p: f64) -> bool {
        let bits = counter::hash(self.key, self.counter);
        self.counter = self.counter.wrapping_add(1);
        p > 0.0 && counter::unit_f64(bits) < p
    }
}

/// What a worker decides to do to one incoming `/v1` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Serve it normally.
    None,
    /// Sleep this long first, then serve it (retry-safe: slow ≠ wrong).
    Stall(Duration),
    /// Answer with a real HTTP 500 (a deterministic scenario failure).
    Error,
    /// Hang up without answering (exercises eviction/readmission).
    Kill,
    /// Refuse with a 429 + `Retry-After` (deterministic overload; the
    /// client treats it as backpressure, not a scenario failure).
    Shed,
}

/// The worker-side chaos stream: one shared atomic counter rolled per
/// `/v1` request, so a fixed seed yields a fixed fault sequence in request
/// arrival order. Health probes (`/healthz`) are never chaos'd — a worker
/// under chaos must still be *observable*, or readmission could never run.
#[derive(Debug)]
pub struct ChaosClock {
    policy: ChaosPolicy,
    counter: AtomicU64,
}

impl ChaosClock {
    /// A clock rolling `policy`'s worker-side faults from tick zero.
    pub fn new(policy: ChaosPolicy) -> ChaosClock {
        ChaosClock { policy, counter: AtomicU64::new(0) }
    }

    /// The policy this clock rolls against.
    pub fn policy(&self) -> &ChaosPolicy {
        &self.policy
    }

    /// Roll the next tick into a [`WorkerFault`]. One uniform draw is cut
    /// by cumulative probability — kill, then error, then shed, then
    /// stall — so the per-request fault mix matches the spec exactly (and
    /// a zero-probability family never perturbs the others' schedule).
    pub fn decide(&self) -> WorkerFault {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let u = counter::unit_f64(counter::hash(self.policy.seed, n));
        let p = &self.policy;
        if u < p.kill {
            WorkerFault::Kill
        } else if u < p.kill + p.error {
            WorkerFault::Error
        } else if u < p.kill + p.error + p.shed {
            WorkerFault::Shed
        } else if u < p.kill + p.error + p.shed + p.stall {
            WorkerFault::Stall(Duration::from_millis(p.stall_ms))
        } else {
            WorkerFault::None
        }
    }
}

/// One way to damage an event-log file, as a value — so a corruption
/// schedule can be generated, logged, and replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the file mid-line at byte `cut` (a crash during a write).
    TornTail {
        /// Byte offset to truncate at.
        cut: usize,
    },
    /// Flip one bit (silent media corruption; breaks that line's checksum).
    BitFlip {
        /// Byte offset of the damaged byte.
        offset: usize,
        /// Which bit (0–7) to flip.
        bit: u8,
    },
    /// Keep only the first `keep` complete events (a crash between
    /// fsync batches that loses a whole tail of lines).
    TruncateEvents {
        /// Number of newline-terminated lines to keep.
        keep: usize,
    },
}

/// Apply one [`Corruption`] to a log image, returning the damaged bytes.
/// Out-of-range offsets clamp to the valid range so generated schedules
/// can never panic.
pub fn apply_corruption(bytes: &[u8], c: Corruption) -> Vec<u8> {
    match c {
        Corruption::TornTail { cut } => bytes[..cut.min(bytes.len())].to_vec(),
        Corruption::BitFlip { offset, bit } => {
            let mut out = bytes.to_vec();
            if let Some(b) = out.get_mut(offset.min(bytes.len().saturating_sub(1))) {
                *b ^= 1 << (bit % 8);
            }
            out
        }
        Corruption::TruncateEvents { keep } => {
            let mut end = 0usize;
            let mut lines = 0usize;
            for (i, &b) in bytes.iter().enumerate() {
                if lines == keep {
                    break;
                }
                if b == b'\n' {
                    lines += 1;
                    end = i + 1;
                }
            }
            if lines < keep {
                end = bytes.len();
            }
            bytes[..end].to_vec()
        }
    }
}

/// Generate `count` deterministic corruptions for a log image: a seeded
/// mix of torn tails, bit flips, and whole-event truncations sized to the
/// image. Pure in `(seed, bytes.len(), count)`.
pub fn corruption_schedule(seed: u64, bytes: &[u8], count: usize) -> Vec<Corruption> {
    let len = bytes.len().max(1);
    let lines = bytes.iter().filter(|&&b| b == b'\n').count();
    (0..count as u64)
        .map(|i| {
            let kind = counter::hash(seed, i * 3);
            let a = counter::hash(seed, i * 3 + 1);
            let b = counter::hash(seed, i * 3 + 2);
            match kind % 3 {
                0 => Corruption::TornTail { cut: (a as usize) % len },
                1 => Corruption::BitFlip { offset: (a as usize) % len, bit: (b % 8) as u8 },
                _ => Corruption::TruncateEvents { keep: (a as usize) % (lines + 1) },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_key() {
        let p = ChaosPolicy::parse(
            "seed=42, connect=0.1, disconnect=0.2, timeout=0.05, http500=0.3, \
             replay=0.15, stall=0.4, error=0.25, kill=0.5, shed=0.35, \
             slow_reader=0.45, stall_ms=75",
        )
        .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.connect, 0.1);
        assert_eq!(p.disconnect, 0.2);
        assert_eq!(p.timeout, 0.05);
        assert_eq!(p.http500, 0.3);
        assert_eq!(p.replay, 0.15);
        assert_eq!(p.stall, 0.4);
        assert_eq!(p.error, 0.25);
        assert_eq!(p.kill, 0.5);
        assert_eq!(p.shed, 0.35);
        assert_eq!(p.slow_reader, 0.45);
        assert_eq!(p.stall_ms, 75);
        assert!(!p.is_noop());
        assert!(!p.is_retry_safe());
        // The overload family alone is retry-safe: sheds are backpressure,
        // slow reads are just slow.
        let overload = ChaosPolicy::parse("seed=1,shed=0.3,slow_reader=0.2").unwrap();
        assert!(!overload.is_noop());
        assert!(overload.is_retry_safe());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(ChaosPolicy::parse("connect=1.5").is_err());
        assert!(ChaosPolicy::parse("connect=-0.1").is_err());
        assert!(ChaosPolicy::parse("warp=0.5").is_err());
        assert!(ChaosPolicy::parse("connect").is_err());
        assert!(ChaosPolicy::parse("seed=abc").is_err());
        assert!(ChaosPolicy::parse("").unwrap().is_noop());
    }

    #[test]
    fn streams_are_reproducible_and_site_independent() {
        let p = ChaosPolicy::parse("seed=7,disconnect=0.5").unwrap();
        let rolls = |key: u64| -> Vec<bool> {
            let mut s = p.stream(key);
            (0..64).map(|_| s.fires(p.disconnect)).collect()
        };
        // Same (seed, key) → same schedule; different keys → different ones.
        assert_eq!(rolls(1), rolls(1));
        assert_ne!(rolls(1), rolls(2));
        // A different seed reshuffles the same key.
        let p2 = ChaosPolicy::parse("seed=8,disconnect=0.5").unwrap();
        let mut s2 = p2.stream(1);
        let r2: Vec<bool> = (0..64).map(|_| s2.fires(p2.disconnect)).collect();
        assert_ne!(rolls(1), r2);
    }

    #[test]
    fn zero_probability_never_fires_and_one_always_does() {
        let p = ChaosPolicy::default();
        let mut s = p.stream(9);
        assert!((0..256).all(|_| !s.fires(0.0)));
        let mut s = p.stream(9);
        assert!((0..256).all(|_| s.fires(1.0)));
    }

    #[test]
    fn stream_keys_separate_worker_scenario_and_attempt() {
        let k = stream_key("127.0.0.1:8331", 3, 0);
        assert_eq!(k, stream_key("127.0.0.1:8331", 3, 0));
        assert_ne!(k, stream_key("127.0.0.1:8332", 3, 0));
        assert_ne!(k, stream_key("127.0.0.1:8331", 4, 0));
        assert_ne!(k, stream_key("127.0.0.1:8331", 3, 1));
    }

    #[test]
    fn clock_rates_track_the_spec() {
        let p = ChaosPolicy::parse("seed=3,kill=0.2,error=0.1,shed=0.15,stall=0.3,stall_ms=5")
            .unwrap();
        let clock = ChaosClock::new(p);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            match clock.decide() {
                WorkerFault::Kill => counts[0] += 1,
                WorkerFault::Error => counts[1] += 1,
                WorkerFault::Stall(d) => {
                    assert_eq!(d, Duration::from_millis(5));
                    counts[2] += 1;
                }
                WorkerFault::None => counts[3] += 1,
                WorkerFault::Shed => counts[4] += 1,
            }
        }
        let near = |n: usize, p: f64| (n as f64 / 10_000.0 - p).abs() < 0.03;
        assert!(near(counts[0], 0.2), "kill rate {}", counts[0]);
        assert!(near(counts[1], 0.1), "error rate {}", counts[1]);
        assert!(near(counts[2], 0.3), "stall rate {}", counts[2]);
        assert!(near(counts[3], 0.25), "clean rate {}", counts[3]);
        assert!(near(counts[4], 0.15), "shed rate {}", counts[4]);
        // Same seed, fresh clock → identical sequence.
        let a: Vec<WorkerFault> = {
            let c = ChaosClock::new(p);
            (0..32).map(|_| c.decide()).collect()
        };
        let b: Vec<WorkerFault> = {
            let c = ChaosClock::new(p);
            (0..32).map(|_| c.decide()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn corruption_apply_is_total() {
        let log = b"line one\nline two\nline three\n";
        assert_eq!(apply_corruption(log, Corruption::TornTail { cut: 5 }), b"line ".to_vec());
        assert_eq!(apply_corruption(log, Corruption::TornTail { cut: 10_000 }), log.to_vec());
        let flipped = apply_corruption(log, Corruption::BitFlip { offset: 0, bit: 1 });
        assert_eq!(flipped[0], b'l' ^ 0b10);
        assert_eq!(&flipped[1..], &log[1..]);
        assert_eq!(
            apply_corruption(log, Corruption::TruncateEvents { keep: 2 }),
            b"line one\nline two\n".to_vec()
        );
        assert_eq!(apply_corruption(log, Corruption::TruncateEvents { keep: 0 }), Vec::<u8>::new());
        assert_eq!(apply_corruption(log, Corruption::TruncateEvents { keep: 9 }), log.to_vec());
        // Empty input never panics.
        assert_eq!(
            apply_corruption(b"", Corruption::BitFlip { offset: 3, bit: 2 }),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn corruption_schedule_is_deterministic() {
        let log = b"a\nb\nc\nd\n";
        let s1 = corruption_schedule(11, log, 16);
        let s2 = corruption_schedule(11, log, 16);
        assert_eq!(s1, s2);
        assert_ne!(s1, corruption_schedule(12, log, 16));
        // And covers all three kinds over a modest schedule.
        let kinds: Vec<u8> = s1
            .iter()
            .map(|c| match c {
                Corruption::TornTail { .. } => 0,
                Corruption::BitFlip { .. } => 1,
                Corruption::TruncateEvents { .. } => 2,
            })
            .collect();
        assert!(kinds.contains(&0) && kinds.contains(&1) && kinds.contains(&2));
    }
}
