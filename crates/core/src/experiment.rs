//! Experiment sweeps: the driver behind Figure 4 and the solver-comparison
//! study. Each configuration runs its own independent simulated lab; sweeps
//! parallelize across crossbeam scoped threads (one virtual 8-hour run per
//! core).

use crate::app::{AppError, ColorPickerApp, ExperimentOutcome};
use crate::config::AppConfig;
use sdl_solvers::SolverKind;

/// Run one experiment to completion.
pub fn run_one(config: AppConfig) -> Result<ExperimentOutcome, AppError> {
    ColorPickerApp::new(config)?.run()
}

/// A labelled configuration inside a sweep.
#[derive(Debug, Clone)]
pub struct SweepItem {
    /// Label for reports ("B=1", "genetic/seed 3"…).
    pub label: String,
    /// The configuration to run.
    pub config: AppConfig,
}

/// Run many experiments in parallel; results come back in input order.
pub fn run_sweep(items: Vec<SweepItem>) -> Vec<(String, Result<ExperimentOutcome, AppError>)> {
    let mut slots: Vec<Option<(String, Result<ExperimentOutcome, AppError>)>> =
        (0..items.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            handles.push((i, scope.spawn(move |_| (item.label.clone(), run_one(item.config)))));
        }
        for (i, h) in handles {
            slots[i] = Some(h.join().expect("sweep worker panicked"));
        }
    })
    .expect("sweep scope");
    slots.into_iter().map(|s| s.expect("all slots filled")).collect()
}

/// The Figure-4 batch sweep: N samples at each batch size, same solver.
pub fn batch_sweep(base: &AppConfig, batches: &[u32]) -> Vec<SweepItem> {
    batches
        .iter()
        .map(|&b| {
            let mut config = base.clone();
            config.batch = b;
            // Per-experiment seed, as in the paper (each experiment's first
            // samples are independently random).
            config.seed = base.seed.wrapping_add(b as u64).wrapping_mul(0x9e37_79b9);
            SweepItem { label: format!("B={b}"), config }
        })
        .collect()
}

/// Solver-comparison sweep: same budget, several seeds per solver.
pub fn solver_sweep(base: &AppConfig, solvers: &[SolverKind], seeds: &[u64]) -> Vec<SweepItem> {
    let mut items = Vec::new();
    for &solver in solvers {
        for &seed in seeds {
            let mut config = base.clone();
            config.solver = solver;
            config.seed = seed;
            items.push(SweepItem { label: format!("{}/seed{}", solver.name(), seed), config });
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AppConfig {
        AppConfig {
            sample_budget: 6,
            batch: 3,
            publish_images: false,
            ..AppConfig::default()
        }
    }

    #[test]
    fn sweep_preserves_order_and_labels() {
        let base = small_config();
        let items = batch_sweep(&base, &[1, 2, 3]);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].label, "B=1");
        assert_eq!(items[2].config.batch, 3);
        // Distinct seeds per experiment.
        assert_ne!(items[0].config.seed, items[1].config.seed);
    }

    #[test]
    fn solver_sweep_crosses_solvers_and_seeds() {
        let base = small_config();
        let items = solver_sweep(&base, &[SolverKind::Genetic, SolverKind::Random], &[1, 2, 3]);
        assert_eq!(items.len(), 6);
        assert_eq!(items[0].label, "genetic/seed1");
        assert_eq!(items[5].config.solver, SolverKind::Random);
    }

    #[test]
    fn parallel_sweep_runs_everything() {
        let base = small_config();
        let items = batch_sweep(&base, &[2, 3]);
        let results = run_sweep(items);
        assert_eq!(results.len(), 2);
        for (label, r) in &results {
            let out = r.as_ref().unwrap_or_else(|e| panic!("{label} failed: {e}"));
            assert_eq!(out.samples_measured, 6, "{label}");
        }
    }
}
