//! The ask/tell experiment session (inversion of the paper's Figure-2
//! loop).
//!
//! [`Experiment`] owns the decision and data side of a run — solver,
//! measurement history, trajectory, termination criteria and portal
//! publication — and knows nothing about *how* batches get executed. A
//! driver asks it for proposals and tells it results:
//!
//! ```
//! use sdl_core::{AppConfig, Experiment, LabBackend, SimBackend};
//!
//! let config = AppConfig { sample_budget: 4, batch: 2, publish_images: false, ..AppConfig::default() };
//! let mut backend = SimBackend::new(&config).unwrap();
//! let mut session = Experiment::new(config).unwrap();
//! let caps = backend.open().unwrap();
//! while let Some(batch) = session.ask(&caps) {
//!     let result = backend.submit_batch(&batch).unwrap();
//!     session.tell(&batch, result).unwrap();
//! }
//! let close = backend.close(session.samples_measured()).unwrap();
//! let outcome = session.outcome(close);
//! assert_eq!(outcome.samples_measured, 4);
//! ```
//!
//! [`Experiment::run_on`] packages that loop (including out-of-plates
//! mapping) for any [`LabBackend`].

use crate::app::{AppError, ExperimentOutcome, TrajectoryPoint};
use crate::backend::{BackendCaps, BackendClose, Batch, BatchResult, LabBackend};
use crate::campaign::{CampaignEvent, EventScope};
use crate::config::AppConfig;
use crate::termination::TerminationReason;
use bytes::Bytes;
use rand::rngs::StdRng;
use sdl_color::Rgb8;
use sdl_datapub::{
    AcdcPortal, BlobStore, ExperimentRecord, FlowJob, FlowStats, PublishFlow, SampleRecord,
};
use sdl_desim::RngHub;
use sdl_solvers::{ColorSolver, Observation};
use std::sync::Arc;

/// An in-flight experiment: proposals out, measurements in.
pub struct Experiment {
    config: AppConfig,
    solver: Box<dyn ColorSolver>,
    solver_rng: StdRng,
    history: Vec<Observation>,
    trajectory: Vec<TrajectoryPoint>,
    samples_done: u32,
    runs: u32,
    portal: Arc<AcdcPortal>,
    store: Arc<BlobStore>,
    flow: Option<PublishFlow>,
    announced: bool,
    termination: Option<TerminationReason>,
    events: Option<EventScope>,
}

impl Experiment {
    /// Start a session: build the solver, derive its RNG stream, open the
    /// publication flow.
    pub fn new(config: AppConfig) -> Result<Experiment, AppError> {
        let solver =
            config.build_solver(config.dyes.len()).map_err(|e| AppError::Setup(e.to_string()))?;
        let hub = RngHub::new(config.seed);
        let portal = Arc::new(AcdcPortal::new());
        let store = Arc::new(BlobStore::in_memory());
        let flow = PublishFlow::start(Arc::clone(&portal), Arc::clone(&store));
        Ok(Experiment {
            solver,
            solver_rng: hub.stream("app.solver"),
            history: Vec::new(),
            trajectory: Vec::new(),
            samples_done: 0,
            runs: 0,
            portal,
            store,
            flow: Some(flow),
            announced: false,
            termination: None,
            events: None,
            config,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &AppConfig {
        &self.config
    }

    /// The measurement history accumulated so far.
    pub fn history(&self) -> &[Observation] {
        &self.history
    }

    /// The best-so-far trajectory accumulated so far.
    pub fn trajectory(&self) -> &[TrajectoryPoint] {
        &self.trajectory
    }

    /// Samples measured so far.
    pub fn samples_measured(&self) -> u32 {
        self.samples_done
    }

    /// Why the session stopped, once it has.
    pub fn termination(&self) -> Option<&TerminationReason> {
        self.termination.as_ref()
    }

    /// True once a termination criterion has been met.
    pub fn is_done(&self) -> bool {
        self.termination.is_some()
    }

    /// The portal every record publishes into.
    pub fn portal(&self) -> &Arc<AcdcPortal> {
        &self.portal
    }

    /// Swap in a custom decision procedure before the first [`ask`]
    /// (the solver RNG stream is unchanged). Used by the equivalence tests
    /// and the `hotpath` bench to pin a solver variant.
    ///
    /// [`ask`]: Experiment::ask
    pub fn replace_solver(&mut self, solver: Box<dyn ColorSolver>) {
        self.solver = solver;
    }

    /// Attach a campaign event-log scope: every subsequent ask/tell appends
    /// `batch_asked` / `batch_told` / `sample_published` events *before*
    /// the session acts on the data. Campaign executors attach this; a bare
    /// session stays silent.
    pub fn attach_events(&mut self, scope: EventScope) {
        self.events = Some(scope);
    }

    /// Resume an interrupted experiment from previously published records.
    ///
    /// Restores the measurement history (ratios, measured colors, scores)
    /// and the sample/iteration counters from `records`, so a crashed
    /// control host can continue where it stopped: the solver sees the full
    /// history and the budget accounting picks up at the right sample. The
    /// physical plate is gone after a crash, so the loop starts on a fresh
    /// plate; elapsed time restarts at the recovery (TWH semantics: the
    /// crash was an intervention).
    pub fn restore_from_records(&mut self, records: &[SampleRecord]) {
        let mut records: Vec<&SampleRecord> = records.iter().collect();
        records.sort_by_key(|r| r.sample);
        for r in &records {
            self.history.push(Observation {
                ratios: r.ratios.clone(),
                measured: Rgb8::new(r.measured[0], r.measured[1], r.measured[2]),
                score: r.score,
            });
        }
        self.samples_done = records.last().map(|r| r.sample).unwrap_or(0);
        self.runs = records.last().map(|r| r.run).unwrap_or(0);
        self.trajectory = records
            .iter()
            .map(|r| TrajectoryPoint {
                sample: r.sample,
                elapsed_min: r.elapsed_s / 60.0,
                score: r.score,
                best: r.best_so_far,
            })
            .collect();
    }

    /// Announce the experiment on the portal (idempotent; the first `ask`
    /// does it automatically).
    pub fn announce(&mut self) {
        if self.announced {
            return;
        }
        self.announced = true;
        if let Some(flow) = &self.flow {
            flow.publish(FlowJob {
                record: ExperimentRecord {
                    experiment_id: self.config.experiment_id(),
                    name: self.config.experiment_name.clone(),
                    date: self.config.date.clone(),
                    target: self.config.target.channels(),
                    solver: self.config.solver_label().to_string(),
                    batch: self.config.batch,
                    sample_budget: self.config.sample_budget,
                }
                .to_value(),
                image: None,
            });
        }
    }

    /// Propose the next batch, or `None` once a termination criterion is
    /// met (the reason is then available via [`Experiment::termination`]).
    pub fn ask(&mut self, caps: &BackendCaps) -> Option<Batch> {
        if self.termination.is_some() {
            return None;
        }
        self.announce();

        // Loop check: enough wells in budget? (Figure 2) Saturating:
        // restoring records from a larger-budget run must terminate, not
        // underflow.
        let remaining = self.config.sample_budget.saturating_sub(self.samples_done);
        if remaining == 0 {
            self.termination = Some(TerminationReason::BudgetExhausted);
            return None;
        }

        // Batches are never split across plates, so a batch is never larger
        // than the executor's plate.
        let b = remaining.min(self.config.batch).min(caps.plate_capacity.max(1)) as usize;

        // Solver proposes (Figure 2: Solver.Run_Iteration).
        let proposed_at = self.events.as_ref().map(|_| std::time::Instant::now());
        // A moving target chases `target_to`: the solver is pointed at the
        // target of the *next* sample to be measured.
        let target = self.config.target_at(self.samples_done);
        let ratios = self.solver.propose(target, &self.history, b, &mut self.solver_rng);
        debug_assert_eq!(ratios.len(), b);
        self.runs += 1;
        if let (Some(scope), Some(t)) = (&self.events, proposed_at) {
            scope.emit(&CampaignEvent::BatchAsked {
                index: scope.index,
                attempt: scope.attempt,
                run: self.runs,
                size: b,
                propose_us: t.elapsed().as_micros() as u64,
            });
        }
        Some(Batch { run: self.runs, ratios })
    }

    /// Feed one executed batch back: grade each measurement, extend the
    /// history and trajectory, publish sample records, and evaluate the
    /// match-threshold termination criterion.
    pub fn tell(&mut self, batch: &Batch, result: BatchResult) -> Result<(), AppError> {
        if result.measurements.len() != batch.ratios.len() {
            return Err(AppError::Setup(format!(
                "backend measured {} wells for a batch of {} proposals",
                result.measurements.len(),
                batch.ratios.len()
            )));
        }
        if let Some(scope) = &self.events {
            scope.emit(&CampaignEvent::BatchTold {
                index: scope.index,
                attempt: scope.attempt,
                run: batch.run,
                size: batch.ratios.len(),
                elapsed_us: result.elapsed.as_micros(),
                batch_wall_us: result.batch_wall.as_micros(),
            });
        }
        let image_bytes: Option<Bytes> = result.image;
        for (i, (ratio, m)) in batch.ratios.iter().zip(&result.measurements).enumerate() {
            let measured = m.color;
            let target_now = self.config.target_at(self.samples_done);
            let score = self.config.score_measurement(measured, self.samples_done);
            self.history.push(Observation { ratios: ratio.clone(), measured, score });
            self.samples_done += 1;
            let best =
                sdl_solvers::best_observation(&self.history).map(|o| o.score).unwrap_or(score);
            self.trajectory.push(TrajectoryPoint {
                sample: self.samples_done,
                elapsed_min: result.elapsed.as_minutes(),
                score,
                best,
            });
            if let Some(scope) = &self.events {
                scope.emit(&CampaignEvent::SamplePublished {
                    index: scope.index,
                    attempt: scope.attempt,
                    run: batch.run,
                    sample: self.samples_done,
                    well: m.well.to_string(),
                    ratios: ratio.clone(),
                    measured: measured.channels(),
                    score,
                    best,
                    elapsed_us: result.elapsed.as_micros(),
                    batch_wall_us: result.batch_wall.as_micros(),
                });
            }
            if let Some(flow) = &self.flow {
                let volumes = sdl_color::Recipe::from_ratios(ratio, &self.config.dyes)
                    .map(|r| r.volumes_ul().to_vec())
                    .unwrap_or_default();
                let mut record = SampleRecord {
                    experiment_id: self.config.experiment_id(),
                    run: batch.run,
                    sample: self.samples_done,
                    well: m.well.to_string(),
                    ratios: ratio.clone(),
                    volumes_ul: volumes,
                    measured: measured.channels(),
                    target: target_now.channels(),
                    score,
                    best_so_far: best,
                    elapsed_s: result.elapsed.as_secs_f64(),
                    batch_wall_s: Some(result.batch_wall.as_secs_f64()),
                    image_ref: None,
                }
                .to_value();
                // "The data created includes … the timing of each step"
                // (§2.3): the iteration's workflow log rides with its first
                // sample.
                if i == 0 {
                    if let Some(timing) = &result.timing {
                        record.set("timing", timing.clone());
                    }
                }
                flow.publish(FlowJob { record, image: image_bytes.clone() });
            }
        }

        // Check: target matched?
        if let Some(threshold) = self.config.match_threshold {
            let best = sdl_solvers::best_observation(&self.history).map(|o| o.score);
            if let Some(best) = best {
                if best <= threshold {
                    self.termination = Some(TerminationReason::TargetMatched { score: best });
                }
            }
        }
        Ok(())
    }

    /// Force a termination reason (drivers use this to record lab-side
    /// aborts such as plate-storage exhaustion).
    pub fn terminate(&mut self, reason: TerminationReason) {
        self.termination.get_or_insert(reason);
    }

    /// Finish the session: close the publication flow and combine the
    /// session's state with the backend's final accounting.
    pub fn outcome(&mut self, close: BackendClose) -> ExperimentOutcome {
        let flow_stats = match self.flow.take() {
            Some(flow) => flow.close(),
            None => FlowStats::default(),
        };
        let best = sdl_solvers::best_observation(&self.history);
        let (best_score, best_ratios) =
            best.map(|o| (o.score, o.ratios.clone())).unwrap_or((f64::INFINITY, Vec::new()));
        ExperimentOutcome {
            experiment_id: self.config.experiment_id(),
            termination: self.termination.clone().unwrap_or(TerminationReason::BudgetExhausted),
            best_score,
            best_ratios,
            samples_measured: self.samples_done,
            duration: close.duration,
            trajectory: self.trajectory.clone(),
            metrics: close.metrics,
            counters: close.counters,
            plates_used: close.plates_used,
            solver_fallbacks: self.solver.degenerate_fallbacks(),
            portal: Arc::clone(&self.portal),
            store: Arc::clone(&self.store),
            flow_stats,
        }
    }

    /// Drive the session to completion on `backend`: the ask/tell loop,
    /// out-of-plates mapping, and final close, exactly as the pre-redesign
    /// `ColorPickerApp::run` behaved.
    pub fn run_on(&mut self, backend: &mut dyn LabBackend) -> Result<ExperimentOutcome, AppError> {
        // Announce before the lab starts, mirroring the legacy run order
        // (the experiment record precedes every lab action, even a failed
        // first plate fetch).
        self.announce();
        let caps = match backend.open() {
            Ok(caps) => caps,
            Err(e) if is_out_of_plates(&e) => {
                self.terminate(TerminationReason::OutOfPlates);
                let close = backend.close(self.samples_done)?;
                return Ok(self.outcome(close));
            }
            Err(e) => return Err(e),
        };
        while let Some(batch) = self.ask(&caps) {
            match backend.submit_batch(&batch) {
                Ok(result) => self.tell(&batch, result)?,
                Err(e) if is_out_of_plates(&e) => {
                    self.terminate(TerminationReason::OutOfPlates);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        let close = backend.close(self.samples_done)?;
        Ok(self.outcome(close))
    }
}

/// Did the lab abort because the plate crane ran dry? (The one lab-side
/// error that is a termination criterion rather than a failure.)
fn is_out_of_plates(e: &AppError) -> bool {
    matches!(
        e,
        AppError::Wei(sdl_wei::WeiError::CommandAborted {
            cause: sdl_instruments::InstrumentError::OutOfPlates,
            ..
        })
    )
}
