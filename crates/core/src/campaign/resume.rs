//! Resume an interrupted campaign from its event log.
//!
//! The log is the source of truth: `campaign_opened` embeds every
//! [`ScenarioSpec`], `sample_published` events carry each measurement
//! bit-exactly, and `scenario_finished` carries the authoritative close
//! telemetry. A resume therefore needs nothing but the log file:
//!
//! 1. **Recover** — [`EventLog::recover`] truncates the file to its
//!    checksum-verified prefix and reopens it for appending.
//! 2. **Replay** — every scenario with a terminal event is rebuilt
//!    *through the solver*: the recorded samples feed a [`ReplayBackend`],
//!    whose bit-exact proposal verification proves the log matches what
//!    the solver would do again. Close telemetry that replay cannot see
//!    (virtual duration, plate count, robot command totals) is patched
//!    from the logged [`ScenarioSummary`].
//! 3. **Re-drive** — scenarios without a terminal event run live on the
//!    runner's thread pool, appending to the same log with a bumped
//!    attempt number.
//!
//! The merged report publishes in input order, so its fingerprint is
//! bit-identical to the uninterrupted run's.

use crate::app::{AppError, ExperimentOutcome};
use crate::backend::{LabBackend, ReplayBackend};
use crate::campaign::events::{
    CampaignEvent, EventLog, EventScope, RecoveryReport, ScenarioSummary,
};
use crate::campaign::publish::{publish_campaign_record, publish_scenario};
use crate::campaign::report::{CampaignReport, ScenarioOutcome, ScenarioResult};
use crate::campaign::runner::{best_of, execute, CampaignRunner};
use crate::campaign::spec::{RunMode, ScenarioSpec};
use crate::experiment::Experiment;
use sdl_datapub::SampleRecord;
use sdl_vision::DetectorScratch;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// What a resume restored versus re-executed.
#[derive(Debug, Clone)]
pub struct ResumeStats {
    /// Scenarios rebuilt from the log without re-execution.
    pub replayed: usize,
    /// Scenarios re-driven live (no terminal event in the log).
    pub redriven: usize,
    /// The recovery scan: accepted events and any torn tail.
    pub recovery: RecoveryReport,
}

/// Per-scenario state mined from the recovered event stream.
#[derive(Default)]
struct Mined {
    /// Terminal outcome, first one wins: finished summary or failure text.
    terminal: Option<Result<(u32, ScenarioSummary), String>>,
    /// `sample_published` events per attempt, in log order.
    samples: BTreeMap<u32, Vec<SampleRecord>>,
    /// Highest attempt number that ever started.
    last_attempt: Option<u32>,
}

impl CampaignRunner {
    /// Resume the campaign recorded in the event log at `path`: recover
    /// the log's verified prefix, rebuild finished scenarios through
    /// [`ReplayBackend`]'s bit-exact verification, re-drive unfinished
    /// ones on this runner's thread pool, and append the continuation to
    /// the same log. The merged fingerprint is bit-identical to an
    /// uninterrupted run of the same campaign.
    pub fn resume(
        &self,
        path: impl AsRef<Path>,
    ) -> Result<(CampaignReport, ResumeStats), AppError> {
        let (log, events, recovery) = EventLog::recover(&path)?;
        if log.closed() {
            return Err(AppError::Setup(format!(
                "event log {} records a completed campaign (nothing to resume)",
                path.as_ref().display()
            )));
        }
        let log = Arc::new(log);

        // Mine the stream: specs from campaign_opened, then per-scenario
        // terminal events and per-attempt sample records.
        let mut specs: Option<Vec<ScenarioSpec>> = None;
        let mut mined: Vec<Mined> = Vec::new();
        for rec in &events {
            match &rec.event {
                CampaignEvent::CampaignOpened { specs: raw, .. } => {
                    let parsed: Result<Vec<ScenarioSpec>, _> =
                        raw.iter().map(ScenarioSpec::from_value).collect();
                    let parsed = parsed
                        .map_err(|e| AppError::Setup(format!("event log spec unreadable: {e}")))?;
                    mined = parsed.iter().map(|_| Mined::default()).collect();
                    specs = Some(parsed);
                }
                CampaignEvent::ScenarioStarted { index, attempt, .. } => {
                    if let Some(m) = mined.get_mut(*index) {
                        m.last_attempt = Some(m.last_attempt.map_or(*attempt, |a| a.max(*attempt)));
                    }
                }
                CampaignEvent::SamplePublished {
                    index,
                    attempt,
                    run,
                    sample,
                    well,
                    ratios,
                    measured,
                    score,
                    best,
                    elapsed_us,
                    batch_wall_us,
                } => {
                    let (Some(m), Some(spec)) =
                        (mined.get_mut(*index), specs.as_ref().and_then(|s| s.get(*index)))
                    else {
                        continue;
                    };
                    m.samples.entry(*attempt).or_default().push(SampleRecord {
                        experiment_id: spec.config.experiment_id(),
                        run: *run,
                        sample: *sample,
                        well: well.clone(),
                        ratios: ratios.clone(),
                        volumes_ul: Vec::new(),
                        measured: *measured,
                        target: spec.config.target.channels(),
                        score: *score,
                        best_so_far: *best,
                        elapsed_s: *elapsed_us as f64 / 1e6,
                        batch_wall_s: Some(*batch_wall_us as f64 / 1e6),
                        image_ref: None,
                    });
                }
                CampaignEvent::ScenarioFinished { index, attempt, summary, .. } => {
                    if let Some(m) = mined.get_mut(*index) {
                        m.terminal.get_or_insert(Ok((*attempt, summary.clone())));
                    }
                }
                CampaignEvent::ScenarioFailed { index, error, .. } => {
                    if let Some(m) = mined.get_mut(*index) {
                        m.terminal.get_or_insert(Err(error.clone()));
                    }
                }
                _ => {}
            }
        }
        let specs = specs.ok_or_else(|| {
            AppError::Setup(format!(
                "event log {} has no campaign_opened event",
                path.as_ref().display()
            ))
        })?;
        let n = specs.len();

        let todo: Vec<usize> = (0..n).filter(|&i| mined[i].terminal.is_none()).collect();
        let (replayed, redriven) = (n - todo.len(), todo.len());
        log.append(&CampaignEvent::CampaignResumed { replayed, redriven });

        // Rebuild every terminal scenario from its logged attempt.
        let mut slots: Vec<Option<ScenarioResult>> = (0..n).map(|_| None).collect();
        for (i, m) in mined.iter_mut().enumerate() {
            let Some(terminal) = m.terminal.take() else { continue };
            let spec = specs[i].clone();
            let outcome = match terminal {
                Ok((attempt, summary)) => {
                    let samples = m.samples.remove(&attempt).unwrap_or_default();
                    rebuild(&spec, &summary, samples)
                }
                Err(msg) => Err(AppError::Restored(msg)),
            };
            slots[i] = Some(ScenarioResult { spec, index: i, outcome });
        }

        // Re-drive the rest live, appending to the recovered log.
        if !todo.is_empty() {
            let workers = self.threads.min(todo.len());
            let todo = Arc::new(todo);
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, ScenarioResult)>();
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let todo = Arc::clone(&todo);
                    let (specs, mined, log, next) = (&specs, &mined, &log, &next);
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let mut scratch = DetectorScratch::default();
                        let me = format!("local-{w}");
                        loop {
                            let pos = next.fetch_add(1, Ordering::Relaxed);
                            if pos >= todo.len() {
                                break;
                            }
                            let i = todo[pos];
                            let spec = specs[i].clone();
                            let attempt = mined[i].last_attempt.map_or(0, |a| a + 1);
                            log.append(&CampaignEvent::ScenarioClaimed {
                                index: i,
                                worker: me.clone(),
                                claim: "own".to_string(),
                                queue_depth: todo.len() - (pos + 1),
                            });
                            log.append(&CampaignEvent::ScenarioStarted {
                                index: i,
                                label: spec.label.clone(),
                                attempt,
                                worker: me.clone(),
                            });
                            let ev = EventScope::new(Arc::clone(log), i, attempt);
                            let outcome = execute(&spec, &mut scratch, Some(ev));
                            log.append(&match &outcome {
                                Ok(o) => CampaignEvent::ScenarioFinished {
                                    index: i,
                                    label: spec.label.clone(),
                                    attempt,
                                    worker: me.clone(),
                                    summary: ScenarioSummary::of(o),
                                },
                                Err(e) => CampaignEvent::ScenarioFailed {
                                    index: i,
                                    label: spec.label.clone(),
                                    attempt,
                                    worker: me.clone(),
                                    error: e.to_string(),
                                },
                            });
                            if tx.send((i, ScenarioResult { spec, index: i, outcome })).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                for (i, result) in rx {
                    slots[i] = Some(result);
                }
            });
        }

        // Publish the merged campaign in input order, exactly as an
        // uninterrupted run streams it.
        let results: Vec<ScenarioResult> =
            slots.into_iter().map(|s| s.expect("every scenario slot filled")).collect();
        for result in &results {
            publish_scenario(&self.portal, &self.store, self.publish_records, result);
        }
        publish_campaign_record(&self.portal, &results);
        log.append(&CampaignEvent::CampaignClosed {
            scenarios: n,
            failed: results.iter().filter(|r| r.outcome.is_err()).count(),
            best_score: best_of(&results),
            scheduler: None,
        });

        let stats = ResumeStats { replayed, redriven, recovery };
        Ok((
            CampaignReport { results, portal: Arc::clone(&self.portal), threads: self.threads },
            stats,
        ))
    }
}

/// Rebuild one finished scenario from its logged samples and summary.
fn rebuild(
    spec: &ScenarioSpec,
    summary: &ScenarioSummary,
    samples: Vec<SampleRecord>,
) -> Result<ScenarioOutcome, AppError> {
    match spec.mode {
        RunMode::Single => {
            replay_single(spec, summary, samples).map(|o| ScenarioOutcome::Single(Box::new(o)))
        }
        RunMode::MultiOt2(_) => {
            summary.to_multi_outcome().map(ScenarioOutcome::MultiOt2).ok_or_else(|| {
                AppError::Setup(format!(
                    "scenario '{}' finished as multi-OT2 but its summary has no multi telemetry",
                    spec.label
                ))
            })
        }
    }
}

/// Re-derive a single-loop scenario through the solver against a
/// [`ReplayBackend`] built from the logged samples. The backend verifies
/// every proposal bit-exactly against the log; the summary patches the
/// close telemetry replay cannot reconstruct (virtual duration, plates,
/// robot command counts, waiting-hours metrics).
fn replay_single(
    spec: &ScenarioSpec,
    summary: &ScenarioSummary,
    samples: Vec<SampleRecord>,
) -> Result<ExperimentOutcome, AppError> {
    let recorded = samples.len() as u32;
    let mut session = Experiment::new(spec.config.clone())?;
    let mut backend = ReplayBackend::from_records(samples);
    let caps = backend.open()?;
    loop {
        // Stop once every recorded sample is consumed: the logged
        // termination explains why the original stopped here (an
        // out-of-plates abort leaves fewer samples than the budget).
        if session.samples_measured() >= recorded {
            break;
        }
        let Some(batch) = session.ask(&caps) else { break };
        let result = backend.submit_batch(&batch)?;
        session.tell(&batch, result)?;
    }
    if let Some(t) = &summary.single {
        session.terminate(t.termination.clone());
    }
    let close = backend.close(session.samples_measured())?;
    let mut out = session.outcome(close);
    out.duration = summary.duration;
    out.plates_used = summary.plates;
    out.counters.robotic_completed = summary.robotic_commands;
    out.solver_fallbacks = summary.solver_fallbacks;
    if let Some(t) = &summary.single {
        out.termination = t.termination.clone();
        out.metrics.twh = t.twh;
        out.metrics.ccwh = t.ccwh;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendSpec;
    use crate::campaign::runner::CampaignRunner;
    use crate::config::AppConfig;
    use sdl_solvers::SolverKind;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sdl-resume-{}-{name}.jsonl", std::process::id()))
    }

    fn specs() -> Vec<ScenarioSpec> {
        let mut out: Vec<ScenarioSpec> = (0..5)
            .map(|i| {
                let solver = [SolverKind::Genetic, SolverKind::Random, SolverKind::Bayesian][i % 3];
                ScenarioSpec::new(
                    format!("s{i}"),
                    AppConfig {
                        solver,
                        sample_budget: 6,
                        batch: 2,
                        seed: 40 + i as u64,
                        publish_images: false,
                        ..AppConfig::default()
                    },
                )
            })
            .collect();
        let base =
            AppConfig { sample_budget: 4, batch: 2, publish_images: false, ..AppConfig::default() };
        out.push(ScenarioSpec::multi_ot2("m2", base.clone(), 2));
        // A scenario that fails (multi-OT2 cannot run on a remote backend):
        // resume must restore its error display verbatim.
        let mut bad = ScenarioSpec::multi_ot2("bad", base, 2);
        bad.backend = BackendSpec::Remote("127.0.0.1:1".to_string());
        out.push(bad);
        // A scenario that terminates early on a match threshold: resume
        // must reproduce the TargetMatched termination, not BudgetExhausted.
        let mut matched = AppConfig {
            solver: SolverKind::Random,
            sample_budget: 40,
            batch: 4,
            seed: 7,
            publish_images: false,
            ..AppConfig::default()
        };
        matched.match_threshold = Some(200.0);
        out.push(ScenarioSpec::new("matched", matched));
        out
    }

    #[test]
    fn resuming_a_complete_log_replays_every_scenario_bit_exactly() {
        let golden = CampaignRunner::new().threads(2).run(specs());
        let path = tmp("complete");
        let log = Arc::new(EventLog::create(&path).unwrap());
        let full = CampaignRunner::new().threads(2).with_events(log).run(specs());
        assert_eq!(golden.fingerprint(), full.fingerprint());

        // The closed log refuses a resume outright.
        let err = CampaignRunner::new().resume(&path).unwrap_err();
        assert!(err.to_string().contains("nothing to resume"), "{err}");

        // Strip the campaign_closed line: everything replays, nothing runs.
        let raw = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = raw.lines().collect();
        assert!(lines.last().unwrap().contains("campaign_closed"));
        lines.pop();
        let open = tmp("complete-open");
        std::fs::write(&open, lines.join("\n") + "\n").unwrap();
        let (report, stats) = CampaignRunner::new().threads(2).resume(&open).unwrap();
        assert_eq!(golden.fingerprint(), report.fingerprint());
        assert_eq!((stats.replayed, stats.redriven), (specs().len(), 0));
        assert!(stats.recovery.torn.is_none());
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(open);
    }

    #[test]
    fn resuming_a_truncated_log_redrives_the_rest_bit_exactly() {
        let golden = CampaignRunner::new().threads(2).run(specs());
        let path = tmp("truncated");
        let log = Arc::new(EventLog::create(&path).unwrap());
        CampaignRunner::new().threads(2).with_events(log).run(specs());

        // Cut the log mid-stream (past the opened event, before the end),
        // simulating a crash: the tail line is torn, some scenarios have
        // no terminal event.
        let raw = std::fs::read(&path).unwrap();
        let first_line = raw.iter().position(|&b| b == b'\n').unwrap() + 1;
        let cut = (raw.len() * 2 / 5).max(first_line + 1);
        let torn = tmp("truncated-cut");
        std::fs::write(&torn, &raw[..cut]).unwrap();

        let (report, stats) = CampaignRunner::new().threads(2).resume(&torn).unwrap();
        assert_eq!(golden.fingerprint(), report.fingerprint(), "resume diverged: {stats:?}");
        assert!(stats.redriven >= 1, "cut log should leave unfinished scenarios: {stats:?}");
        assert_eq!(stats.replayed + stats.redriven, specs().len());

        // The continued log is itself complete: a second resume refuses.
        let err = CampaignRunner::new().resume(&torn).unwrap_err();
        assert!(err.to_string().contains("nothing to resume"), "{err}");
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(torn);
    }
}
