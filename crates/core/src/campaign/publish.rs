//! Streaming campaign results into the data portal.
//!
//! Both campaign executors — the thread-pool [`CampaignRunner`] and the
//! distributed [`CampaignScheduler`] — publish through these helpers, so a
//! campaign's portal stream has one shape regardless of where the scenarios
//! executed.
//!
//! [`CampaignRunner`]: crate::CampaignRunner
//! [`CampaignScheduler`]: crate::CampaignScheduler

use crate::campaign::report::{ScenarioOutcome, ScenarioResult};
use crate::campaign::spec::RunMode;
use sdl_conf::Value;
use sdl_datapub::{AcdcPortal, BlobStore};

/// Stream one scenario's summary record into the portal, and its plate
/// images into the shared blob store. With `publish_records`, the
/// scenario's full per-sample record set merges in too.
pub(crate) fn publish_scenario(
    portal: &AcdcPortal,
    store: &BlobStore,
    publish_records: bool,
    result: &ScenarioResult,
) {
    if let Ok(ScenarioOutcome::Single(out)) = &result.outcome {
        out.store.merge_into(store);
        if publish_records {
            portal.merge_from(&out.portal);
        }
    }
    let mut v = Value::map();
    v.set("kind", "campaign_scenario");
    v.set("label", result.spec.label.as_str());
    v.set("index", result.index as i64);
    v.set("experiment_id", result.spec.config.experiment_id().as_str());
    v.set("solver", result.spec.config.solver_label());
    v.set("backend", result.spec.backend.to_string().as_str());
    v.set("batch", result.spec.config.batch as i64);
    v.set("seed", result.spec.config.seed as i64);
    v.set("samples", result.spec.config.sample_budget as i64);
    if let RunMode::MultiOt2(n) = result.spec.mode {
        v.set("n_ot2", n as i64);
    }
    match &result.outcome {
        Ok(o) => {
            v.set("best_score", o.best_score());
            v.set("duration_s", o.duration().as_secs_f64());
            v.set("samples_measured", o.samples_measured() as i64);
            v.set("plates_used", o.plates_used() as i64);
            v.set("robotic_commands", o.robotic_commands() as i64);
            v.set("solver_fallbacks", o.solver_fallbacks() as i64);
            if let ScenarioOutcome::Single(out) = o {
                v.set("twh_s", out.metrics.twh.as_secs_f64());
                v.set("ccwh", out.metrics.ccwh as i64);
                v.set("termination", out.termination.to_string().as_str());
            }
        }
        Err(e) => {
            v.set("error", e.to_string().as_str());
        }
    }
    portal.ingest(v);
}

/// One closing record describing the whole campaign.
pub(crate) fn publish_campaign_record(portal: &AcdcPortal, results: &[ScenarioResult]) {
    let mut v = Value::map();
    v.set("kind", "campaign");
    v.set("scenarios", results.len() as i64);
    v.set("failed", results.iter().filter(|r| r.outcome.is_err()).count() as i64);
    let best = results
        .iter()
        .filter_map(|r| r.outcome.as_ref().ok())
        .map(ScenarioOutcome::best_score)
        .fold(f64::INFINITY, f64::min);
    if best.is_finite() {
        v.set("best_score", best);
    }
    portal.ingest(v);
}
