//! The work-stealing shard queue behind the distributed campaign scheduler.
//!
//! Scenario *indices* (positions in the campaign's input order) are grouped
//! into contiguous shards and dealt round-robin onto per-worker deques.
//! A worker drains its own deque from the front; when empty it takes from
//! the shared retry queue (work bounced off a dead worker), and only then
//! steals from the *back* of a peer's deque — so steals grab the work the
//! victim would have reached last, keeping each worker's stream of
//! scenarios as contiguous (and cache/solver-warm) as possible.
//!
//! The queue tracks only *who runs what next*; results never pass through
//! it, so no ordering here can affect the campaign's merged output. The
//! merge layer slots results by index, which is why the distributed
//! fingerprint is bit-identical to the single-process one for any deal,
//! steal or retry interleaving.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How a worker came by a scenario index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Claim {
    /// From the worker's own shard deque.
    Own(usize),
    /// From the shared retry queue (bounced off a dead worker).
    Retry(usize),
    /// Stolen from the back of another worker's deque; `victim` is the
    /// worker slot the shard was dealt to.
    Stolen { index: usize, victim: usize },
}

impl Claim {
    /// The claimed scenario index.
    pub(crate) fn index(&self) -> usize {
        match *self {
            Claim::Own(i) | Claim::Retry(i) | Claim::Stolen { index: i, .. } => i,
        }
    }
}

/// Sharded scenario indices with work stealing and a retry lane.
pub(crate) struct ShardQueue {
    deques: Vec<Mutex<VecDeque<usize>>>,
    retry: Mutex<VecDeque<usize>>,
    /// Indices not yet *completed* (claimed-but-in-flight still counts):
    /// drivers keep serving until this hits zero, so work requeued by a
    /// dying worker can never be stranded.
    outstanding: AtomicUsize,
}

impl ShardQueue {
    /// Deal `indices` into contiguous shards of `shard_size`, round-robin
    /// across `workers` deques.
    pub(crate) fn deal(indices: &[usize], workers: usize, shard_size: usize) -> ShardQueue {
        let workers = workers.max(1);
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (k, shard) in indices.chunks(shard_size.max(1)).enumerate() {
            deques[k % workers].lock().extend(shard.iter().copied());
        }
        ShardQueue {
            deques,
            retry: Mutex::new(VecDeque::new()),
            outstanding: AtomicUsize::new(indices.len()),
        }
    }

    /// Claim the next index for worker `me`: own front → retry queue →
    /// steal from a peer's back (peers scanned round-robin from `me + 1`).
    pub(crate) fn claim(&self, me: usize) -> Option<Claim> {
        if let Some(i) = self.deques[me].lock().pop_front() {
            return Some(Claim::Own(i));
        }
        if let Some(i) = self.retry.lock().pop_front() {
            return Some(Claim::Retry(i));
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(i) = self.deques[victim].lock().pop_back() {
                return Some(Claim::Stolen { index: i, victim });
            }
        }
        None
    }

    /// Scenarios still sitting in worker `me`'s own deque (the event log's
    /// `queue_depth` gauge; steals and retries drain elsewhere).
    pub(crate) fn depth(&self, me: usize) -> usize {
        self.deques[me].lock().len()
    }

    /// Claim from anywhere (the local fallback executor's view: retry lane
    /// first, then any deque's back).
    pub(crate) fn claim_any(&self) -> Option<usize> {
        if let Some(i) = self.retry.lock().pop_front() {
            return Some(i);
        }
        for d in &self.deques {
            if let Some(i) = d.lock().pop_back() {
                return Some(i);
            }
        }
        None
    }

    /// Put an index back after a failed attempt on a dead worker.
    pub(crate) fn requeue(&self, index: usize) {
        self.retry.lock().push_back(index);
    }

    /// Record one index as finished (a final result was produced).
    pub(crate) fn complete_one(&self) {
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }

    /// Indices still without a final result.
    pub(crate) fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deals_contiguous_shards_round_robin() {
        let q = ShardQueue::deal(&[0, 1, 2, 3, 4, 5, 6], 2, 2);
        // Shards [0,1] [2,3] [4,5] [6] → worker 0: 0,1,4,5; worker 1: 2,3,6.
        let contents = |w: usize| -> Vec<usize> { q.deques[w].lock().iter().copied().collect() };
        assert_eq!(contents(0), vec![0, 1, 4, 5]);
        assert_eq!(contents(1), vec![2, 3, 6]);
        assert_eq!((q.depth(0), q.depth(1)), (4, 3));
        assert_eq!(q.outstanding(), 7);
    }

    #[test]
    fn claim_prefers_own_then_retry_then_steal() {
        let q = ShardQueue::deal(&[0, 1, 2, 3], 2, 1);
        // Worker 0 owns 0,2; worker 1 owns 1,3.
        assert_eq!(q.claim(0), Some(Claim::Own(0)));
        q.requeue(7);
        assert_eq!(q.claim(0), Some(Claim::Own(2)));
        assert_eq!(q.claim(0), Some(Claim::Retry(7)));
        // Own deque and retry lane empty: steal from worker 1's *back*.
        assert_eq!(q.claim(0), Some(Claim::Stolen { index: 3, victim: 1 }));
        assert_eq!(q.claim(1), Some(Claim::Own(1)));
        assert_eq!(q.claim(1), None);
    }

    #[test]
    fn claim_any_drains_everything() {
        let q = ShardQueue::deal(&[0, 1, 2], 3, 1);
        q.requeue(9);
        let mut got = Vec::new();
        while let Some(i) = q.claim_any() {
            got.push(i);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 9]);
    }

    #[test]
    fn outstanding_tracks_completions_not_claims() {
        let q = ShardQueue::deal(&[0, 1], 1, 1);
        assert_eq!(q.outstanding(), 2);
        let _ = q.claim(0);
        assert_eq!(q.outstanding(), 2, "claiming is not completing");
        q.complete_one();
        q.complete_one();
        assert_eq!(q.outstanding(), 0);
    }
}
