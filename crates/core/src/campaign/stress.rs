//! The ColorBench-style stress suite: a built-in campaign matrix that
//! probes every solver under perceptual objectives and adversarial
//! observation conditions — illumination drift, sensor-gain drift,
//! multiple acceptable targets and a target that moves mid-experiment.
//!
//! [`StressSuite`] expands `objectives × stress kinds × solvers × seeds`
//! into ordinary [`ScenarioSpec`]s, so the suite runs through the exact
//! same campaign machinery as any declarative matrix (thread pool or
//! distributed scheduler, event logs, resume, fingerprints).
//! [`Leaderboard`] then folds a finished [`CampaignReport`] back into a
//! per-solver ranking: within each *cell* — one (objective, stress kind,
//! seed) triple — every solver faced identical conditions, so ranking by
//! score inside the cell and averaging ranks across cells compares
//! solvers without letting an easy cell drown out a hard one.

use crate::campaign::report::CampaignReport;
use crate::campaign::spec::ScenarioSpec;
use crate::config::AppConfig;
use sdl_color::{Objective, Rgb8};
use sdl_conf::Value;
use sdl_datapub::AcdcPortal;
use sdl_solvers::SolverKind;
use sdl_vision::{DriftSpec, Fidelity};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One adversarial condition in the stress matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StressKind {
    /// The unmodified base configuration (control group).
    Baseline,
    /// Periodic white-balance (illumination-tint) drift on the camera.
    WbDrift,
    /// Periodic sensor-gain (exposure) drift on the camera.
    GainDrift,
    /// Several acceptable targets: the score is the best match against
    /// any of them (the solver only observes scores, so it must cope
    /// with a multi-modal landscape).
    MultiTarget,
    /// The target interpolates to a different color over the budget, so
    /// early observations go stale.
    MovingTarget,
}

impl StressKind {
    /// Every stress kind, in canonical (label and report) order.
    pub const ALL: [StressKind; 5] = [
        StressKind::Baseline,
        StressKind::WbDrift,
        StressKind::GainDrift,
        StressKind::MultiTarget,
        StressKind::MovingTarget,
    ];

    /// Name as used in scenario labels and leaderboard cells (contains
    /// no `/`, so labels stay splittable).
    pub fn name(self) -> &'static str {
        match self {
            StressKind::Baseline => "baseline",
            StressKind::WbDrift => "wb-drift",
            StressKind::GainDrift => "gain-drift",
            StressKind::MultiTarget => "multi-target",
            StressKind::MovingTarget => "moving-target",
        }
    }

    /// Parse the name produced by [`StressKind::name`].
    pub fn parse(s: &str) -> Option<StressKind> {
        StressKind::ALL.into_iter().find(|k| k.name() == s.trim().to_ascii_lowercase())
    }

    /// The names [`StressKind::parse`] accepts, for error messages.
    pub fn valid_names() -> String {
        StressKind::ALL.map(StressKind::name).join(", ")
    }

    /// Impose this condition on a base configuration. Deterministic: the
    /// perturbation derives only from fields already in `config`.
    ///
    /// Drift kinds downgrade a `full`-fidelity camera to `fast` — the
    /// frozen reference renderer refuses drift by design, and the suite
    /// must keep the control (`baseline`) cell on whatever fidelity the
    /// base requested while still exercising drift elsewhere.
    pub fn apply(self, config: &mut AppConfig) {
        let [r, g, b] = config.target.channels();
        match self {
            StressKind::Baseline => {}
            StressKind::WbDrift => {
                config.drift = Some(DriftSpec::WB);
                if config.fidelity == Fidelity::Full {
                    config.fidelity = Fidelity::Fast;
                }
            }
            StressKind::GainDrift => {
                config.drift = Some(DriftSpec::GAIN);
                if config.fidelity == Fidelity::Full {
                    config.fidelity = Fidelity::Fast;
                }
            }
            StressKind::MultiTarget => {
                // The complement plus a wrapping channel shift: both are
                // guaranteed distinct from the target in every channel
                // (255 - r == r has no u8 solution; wrapping_add(85) is
                // never the identity), so the landscape really is
                // multi-modal even for achromatic targets.
                config.target_set = vec![
                    Rgb8::new(255 - r, 255 - g, 255 - b),
                    Rgb8::new(b.wrapping_add(85), r.wrapping_add(85), g.wrapping_add(85)),
                ];
            }
            StressKind::MovingTarget => {
                // Wrapping offsets keep the endpoint distinct from the
                // start in every channel, for any target (a pure channel
                // rotation would be the identity on achromatic targets).
                config.target_to =
                    Some(Rgb8::new(r.wrapping_add(90), g.wrapping_sub(70), b.wrapping_add(50)));
            }
        }
    }
}

impl std::fmt::Display for StressKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The built-in stress matrix: `objectives × kinds × solvers × seeds`,
/// expanded over a base configuration.
#[derive(Debug, Clone)]
pub struct StressSuite {
    /// Base configuration every cell starts from (its `solver`,
    /// `objective` and `seed` are overridden per scenario).
    pub base: AppConfig,
    /// Solvers under comparison (ranked against each other per cell).
    pub solvers: Vec<SolverKind>,
    /// Objectives to score under.
    pub objectives: Vec<Objective>,
    /// Stress conditions to impose.
    pub kinds: Vec<StressKind>,
    /// Master seeds; each is one replication of the full matrix.
    pub seeds: Vec<u64>,
}

impl StressSuite {
    /// The default suite over `base`: four search strategies (the
    /// deterministic `grid` and the oracle `analytic` are excluded —
    /// they would win or lose every cell identically), three objectives
    /// spanning the metric families (RGB-Euclidean control, CIEDE2000,
    /// CAM16-UCS), all five stress kinds, two seeds.
    pub fn new(mut base: AppConfig) -> StressSuite {
        base.publish_images = false;
        StressSuite {
            solvers: vec![
                SolverKind::Genetic,
                SolverKind::Bayesian,
                SolverKind::Random,
                SolverKind::Annealing,
            ],
            objectives: vec![Objective::Rgb, Objective::Ciede2000, Objective::Cam16Ucs],
            kinds: StressKind::ALL.to_vec(),
            seeds: vec![base.seed, base.seed.wrapping_add(1)],
            base,
        }
    }

    /// Number of scenarios the suite expands to.
    pub fn len(&self) -> usize {
        self.objectives.len() * self.kinds.len() * self.solvers.len() * self.seeds.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the matrix into ordinary campaign scenarios, labelled
    /// `stress/{objective}/{kind}/{solver}/s{seed}` (the label is what
    /// [`Leaderboard::from_report`] later parses the stress kind back out
    /// of). Row-major with seed fastest, so every solver×seed block of
    /// one cell group is contiguous.
    pub fn scenarios(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::with_capacity(self.len());
        for &objective in &self.objectives {
            for &kind in &self.kinds {
                for &solver in &self.solvers {
                    for &seed in &self.seeds {
                        let mut config = self.base.clone();
                        config.objective = objective;
                        config.solver = solver;
                        config.custom_solver = None;
                        config.seed = seed;
                        kind.apply(&mut config);
                        let label = format!(
                            "stress/{}/{}/{}/s{seed}",
                            objective.name(),
                            kind.name(),
                            solver.name()
                        );
                        out.push(ScenarioSpec::new(label, config));
                    }
                }
            }
        }
        out
    }
}

impl Default for StressSuite {
    fn default() -> StressSuite {
        StressSuite::new(AppConfig::default())
    }
}

/// One solver's aggregate standing across every stress cell it ran in.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardRow {
    /// Solver label (as recorded in the scenario configs).
    pub solver: String,
    /// Cells this solver completed (failed scenarios don't count).
    pub cells: usize,
    /// Cells this solver won outright (rank 1).
    pub wins: usize,
    /// Mean within-cell rank (1.0 = won every cell; lower is better).
    pub mean_rank: f64,
    /// Mean best score, normalized by each objective's scale so RGB and
    /// ΔE cells average in comparable units.
    pub mean_score: f64,
}

/// Per-solver ranking folded out of a stress-suite campaign report.
///
/// A *cell* is one (objective, stress kind, seed) triple — inside it,
/// every solver faced identical conditions, so the within-cell order of
/// best scores is a fair comparison. Scores are normalized by
/// [`Objective::scale`] before any cross-cell averaging.
#[derive(Debug, Clone)]
pub struct Leaderboard {
    /// Rows sorted best first (by mean rank, then mean score, then name).
    pub rows: Vec<LeaderboardRow>,
    /// Number of distinct cells that produced at least one result.
    pub cells: usize,
    /// Stress scenarios that failed (excluded from the ranking).
    pub failed: usize,
}

impl Leaderboard {
    /// Fold a campaign report into a leaderboard. Only scenarios labelled
    /// `stress/{objective}/{kind}/{solver}/s{seed}` participate; anything
    /// else in the report is ignored, so a stress suite can share a
    /// portal with other work.
    pub fn from_report(report: &CampaignReport) -> Leaderboard {
        // Cell key -> (solver, normalized best score). BTreeMap keeps the
        // fold order — and therefore tie-breaks and float summation —
        // independent of scenario completion order.
        let mut cells: BTreeMap<(String, String, u64), Vec<(String, f64)>> = BTreeMap::new();
        let mut failed = 0usize;
        for result in &report.results {
            let mut parts = result.spec.label.split('/');
            if parts.next() != Some("stress") {
                continue;
            }
            let config = &result.spec.config;
            let Some(kind) = parts.nth(1) else { continue };
            match &result.outcome {
                Ok(outcome) => {
                    let norm = outcome.best_score() / config.objective.scale();
                    cells
                        .entry((config.objective.name().to_string(), kind.to_string(), config.seed))
                        .or_default()
                        .push((config.solver_label().to_string(), norm));
                }
                Err(_) => failed += 1,
            }
        }

        #[derive(Default)]
        struct Acc {
            cells: usize,
            wins: usize,
            rank_sum: f64,
            score_sum: f64,
        }
        let n_cells = cells.len();
        let mut acc: BTreeMap<String, Acc> = BTreeMap::new();
        for entries in cells.into_values() {
            let mut entries = entries;
            entries.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            for (i, (solver, score)) in entries.into_iter().enumerate() {
                let a = acc.entry(solver).or_default();
                a.cells += 1;
                a.wins += (i == 0) as usize;
                a.rank_sum += (i + 1) as f64;
                a.score_sum += score;
            }
        }

        let mut rows: Vec<LeaderboardRow> = acc
            .into_iter()
            .map(|(solver, a)| LeaderboardRow {
                solver,
                cells: a.cells,
                wins: a.wins,
                mean_rank: a.rank_sum / a.cells as f64,
                mean_score: a.score_sum / a.cells as f64,
            })
            .collect();
        rows.sort_by(|a, b| {
            a.mean_rank
                .total_cmp(&b.mean_rank)
                .then_with(|| a.mean_score.total_cmp(&b.mean_score))
                .then_with(|| a.solver.cmp(&b.solver))
        });
        Leaderboard { rows, cells: n_cells, failed }
    }

    /// Render the leaderboard as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>6} {:>7} {:>12}",
            "solver", "mean rank", "wins", "cells", "mean score"
        );
        let _ = writeln!(out, "{:-<51}", "");
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<12} {:>10.2} {:>6} {:>7} {:>12.2}",
                row.solver, row.mean_rank, row.wins, row.cells, row.mean_score
            );
        }
        let _ = write!(out, "({} cells, {} failed scenario(s))", self.cells, self.failed);
        out
    }

    /// The leaderboard as a portal record (`kind: stress_leaderboard`).
    pub fn to_value(&self) -> Value {
        let mut v = Value::map();
        v.set("kind", "stress_leaderboard");
        v.set("cells", self.cells as i64);
        v.set("failed", self.failed as i64);
        let mut rows = Value::seq();
        for row in &self.rows {
            let mut r = Value::map();
            r.set("solver", row.solver.as_str());
            r.set("mean_rank", row.mean_rank);
            r.set("wins", row.wins as i64);
            r.set("cells", row.cells as i64);
            r.set("mean_score", row.mean_score);
            rows.push(r);
        }
        v.set("rows", rows);
        v
    }

    /// Ingest the leaderboard record into a portal.
    pub fn publish(&self, portal: &AcdcPortal) {
        portal.ingest(self.to_value());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::runner::CampaignRunner;
    use sdl_conf::ValueExt;

    fn tiny_suite() -> StressSuite {
        let mut suite = StressSuite::new(AppConfig {
            sample_budget: 4,
            batch: 2,
            seed: 11,
            publish_images: false,
            ..AppConfig::default()
        });
        suite.solvers = vec![SolverKind::Random, SolverKind::Genetic];
        suite.objectives = vec![Objective::Rgb, Objective::Ciede2000];
        suite.kinds = vec![StressKind::Baseline, StressKind::WbDrift, StressKind::MovingTarget];
        suite.seeds = vec![11];
        suite
    }

    #[test]
    fn suite_expands_the_full_matrix_with_parsable_labels() {
        let suite = tiny_suite();
        let scenarios = suite.scenarios();
        assert_eq!(scenarios.len(), suite.len());
        assert_eq!(scenarios.len(), 2 * 3 * 2);
        for spec in &scenarios {
            let parts: Vec<&str> = spec.label.split('/').collect();
            assert_eq!(parts.len(), 5, "{}", spec.label);
            assert_eq!(parts[0], "stress");
            assert_eq!(parts[1], spec.config.objective.name());
            assert!(StressKind::parse(parts[2]).is_some(), "{}", spec.label);
            assert_eq!(parts[3], spec.config.solver_label());
            assert_eq!(parts[4], format!("s{}", spec.config.seed));
        }
        // The baseline cell is untouched; drift cells carry drift.
        let baseline = &scenarios[0];
        assert_eq!(baseline.config.drift, None);
        assert_eq!(baseline.config.target_to, None);
        let drifted = scenarios.iter().find(|s| s.label.contains("/wb-drift/")).unwrap();
        assert_eq!(drifted.config.drift, Some(DriftSpec::WB));
        let moving = scenarios.iter().find(|s| s.label.contains("/moving-target/")).unwrap();
        assert!(moving.config.target_to.is_some());
    }

    #[test]
    fn drift_kinds_downgrade_the_frozen_reference_renderer() {
        let mut config = AppConfig { fidelity: Fidelity::Full, ..AppConfig::default() };
        StressKind::GainDrift.apply(&mut config);
        assert_eq!(config.fidelity, Fidelity::Fast);
        assert_eq!(config.drift, Some(DriftSpec::GAIN));
        // Non-drift kinds leave the requested fidelity alone.
        let mut config = AppConfig { fidelity: Fidelity::Full, ..AppConfig::default() };
        StressKind::MultiTarget.apply(&mut config);
        assert_eq!(config.fidelity, Fidelity::Full);
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in StressKind::ALL {
            assert_eq!(StressKind::parse(kind.name()), Some(kind));
            assert!(StressKind::valid_names().contains(kind.name()));
            assert!(!kind.name().contains('/'));
        }
        assert_eq!(StressKind::parse("vibes"), None);
    }

    #[test]
    fn leaderboard_ranks_solvers_within_cells() {
        let suite = tiny_suite();
        let report = CampaignRunner::new().threads(2).run(suite.scenarios());
        let board = Leaderboard::from_report(&report);
        assert_eq!(board.failed, 0);
        // One cell per objective × kind × seed.
        assert_eq!(board.cells, 2 * 3);
        assert_eq!(board.rows.len(), 2);
        for row in &board.rows {
            assert_eq!(row.cells, board.cells, "{} missed cells", row.solver);
            assert!(row.mean_rank >= 1.0 && row.mean_rank <= 2.0, "{}", row.mean_rank);
            assert!(row.mean_score.is_finite());
        }
        // Ranks over N solvers sum to N(N+1)/2 per cell, so mean ranks
        // across the two rows average to 1.5 exactly.
        let total: f64 = board.rows.iter().map(|r| r.mean_rank).sum();
        assert!((total - 3.0).abs() < 1e-9, "{total}");
        // Wins across solvers account for every cell.
        let wins: usize = board.rows.iter().map(|r| r.wins).sum();
        assert_eq!(wins, board.cells);
        // Rows come best-first.
        assert!(board.rows[0].mean_rank <= board.rows[1].mean_rank);

        let table = board.render_table();
        assert!(table.contains("mean rank"), "{table}");

        board.publish(&report.portal);
        let records = report.portal.find("kind", "stress_leaderboard");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].opt_i64("cells"), Some(board.cells as i64));
    }

    #[test]
    fn leaderboard_is_deterministic_across_thread_counts() {
        let suite = tiny_suite();
        let one = CampaignRunner::new().threads(1).run(suite.scenarios());
        let four = CampaignRunner::new().threads(4).run(suite.scenarios());
        assert_eq!(one.fingerprint(), four.fingerprint());
        assert_eq!(Leaderboard::from_report(&one).rows, Leaderboard::from_report(&four).rows);
    }

    #[test]
    fn leaderboard_ignores_non_stress_labels_and_counts_failures() {
        let ok =
            AppConfig { sample_budget: 2, batch: 2, publish_images: false, ..Default::default() };
        let mut specs = vec![ScenarioSpec::new("not-stress", ok.clone())];
        // An unregistered custom solver makes the scenario fail at setup.
        let mut bad = ok.clone();
        bad.custom_solver = Some("no-such-solver".into());
        bad.objective = Objective::Cie76;
        specs.push(ScenarioSpec::new("stress/cie76/baseline/genetic/s1", bad));
        let mut fine = ok;
        fine.objective = Objective::Cie76;
        fine.solver = SolverKind::Random;
        specs.push(ScenarioSpec::new("stress/cie76/baseline/random/s1", fine));
        let report = CampaignRunner::new().threads(1).run(specs);
        let board = Leaderboard::from_report(&report);
        assert_eq!(board.failed, 1);
        assert_eq!(board.cells, 1);
        assert_eq!(board.rows.len(), 1);
        assert_eq!(board.rows[0].solver, "random");
        assert_eq!(board.rows[0].wins, 1);
    }
}
