//! The parallel campaign executor.

use crate::backend::BackendSpec;
use crate::campaign::events::{CampaignEvent, EventLog, EventScope, ScenarioSummary};
use crate::campaign::publish::{publish_campaign_record, publish_scenario};
use crate::campaign::report::{CampaignReport, ScenarioOutcome, ScenarioResult};
use crate::campaign::spec::{RunMode, ScenarioSpec};
use crate::experiment::Experiment;
use crate::multi::run_multi_ot2;
use sdl_datapub::{AcdcPortal, BlobStore};
use sdl_vision::DetectorScratch;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Executes scenario lists across an OS-thread pool.
///
/// Every scenario is an isolated simulated lab whose randomness derives
/// entirely from its own spec (`config.seed`), so the report is a pure
/// function of the scenario list: **bit-identical regardless of the number
/// of worker threads** and of completion order. Scenario summaries stream
/// into the runner's [`AcdcPortal`] in input order as prefixes complete.
pub struct CampaignRunner {
    pub(crate) threads: usize,
    pub(crate) portal: Arc<AcdcPortal>,
    pub(crate) store: Arc<BlobStore>,
    pub(crate) progress: bool,
    pub(crate) publish_records: bool,
    pub(crate) events: Option<Arc<EventLog>>,
    pub(crate) name: String,
}

impl Default for CampaignRunner {
    fn default() -> Self {
        CampaignRunner::new()
    }
}

impl CampaignRunner {
    /// A runner with one worker per available core.
    pub fn new() -> CampaignRunner {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        CampaignRunner {
            threads,
            portal: Arc::new(AcdcPortal::new()),
            store: Arc::new(BlobStore::in_memory()),
            progress: false,
            publish_records: false,
            events: None,
            name: "campaign".to_string(),
        }
    }

    /// Builder: append every lifecycle event to `log` (the campaign's
    /// append-only source of truth; see [`EventLog`]).
    pub fn with_events(mut self, log: Arc<EventLog>) -> CampaignRunner {
        self.events = Some(log);
        self
    }

    /// Builder: the campaign name recorded in the `campaign_opened` event.
    pub fn name(mut self, name: impl Into<String>) -> CampaignRunner {
        self.name = name.into();
        self
    }

    /// Builder: use exactly `n` worker threads.
    pub fn threads(mut self, n: usize) -> CampaignRunner {
        self.threads = n.max(1);
        self
    }

    /// Builder: print one progress line per completed scenario to stderr.
    pub fn progress(mut self, on: bool) -> CampaignRunner {
        self.progress = on;
        self
    }

    /// Builder: stream scenario summaries into an existing portal instead
    /// of a fresh one.
    pub fn with_portal(mut self, portal: Arc<AcdcPortal>) -> CampaignRunner {
        self.portal = portal;
        self
    }

    /// The portal scenario summaries stream into.
    pub fn portal(&self) -> &Arc<AcdcPortal> {
        &self.portal
    }

    /// Builder: collect published plate images into an existing blob store
    /// (e.g. one a portal server is concurrently serving `/blobs/` from).
    pub fn with_store(mut self, store: Arc<BlobStore>) -> CampaignRunner {
        self.store = store;
        self
    }

    /// Builder: also stream each scenario's *full* record set (experiment
    /// metadata and per-sample records) into the campaign portal, not just
    /// the scenario summary. This is what a live portal server wants: the
    /// Figure-3 summary and run-detail views become available per
    /// experiment as each scenario completes.
    pub fn publish_records(mut self, on: bool) -> CampaignRunner {
        self.publish_records = on;
        self
    }

    /// The blob store scenario plate images merge into.
    pub fn store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    /// The number of worker threads `run` will use.
    pub fn worker_threads(&self) -> usize {
        self.threads
    }

    /// Execute every scenario, returning per-scenario results in input
    /// order.
    pub fn run(&self, scenarios: Vec<ScenarioSpec>) -> CampaignReport {
        let n = scenarios.len();
        if n == 0 {
            return CampaignReport {
                results: Vec::new(),
                portal: Arc::clone(&self.portal),
                threads: self.threads,
            };
        }
        let workers = self.threads.min(n);
        let scenarios = Arc::new(scenarios);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, ScenarioResult)>();

        if let Some(log) = &self.events {
            log.append(&CampaignEvent::CampaignOpened {
                campaign: self.name.clone(),
                executor: "runner".to_string(),
                workers: Vec::new(),
                specs: scenarios.iter().map(|s| s.to_value()).collect(),
            });
        }

        let mut slots: Vec<Option<ScenarioResult>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let scenarios = Arc::clone(&scenarios);
                let next = &next;
                let tx = tx.clone();
                let events = self.events.as_ref();
                scope.spawn(move || {
                    // One scratch arena per worker thread: detector buffers
                    // (several MB) are reused across every scenario this
                    // worker executes instead of reallocated per run.
                    let mut scratch = DetectorScratch::default();
                    let me = format!("local-{w}");
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= scenarios.len() {
                            break;
                        }
                        let spec = scenarios[i].clone();
                        if let Some(log) = events {
                            log.append(&CampaignEvent::ScenarioClaimed {
                                index: i,
                                worker: me.clone(),
                                claim: "own".to_string(),
                                queue_depth: scenarios.len() - (i + 1),
                            });
                            log.append(&CampaignEvent::ScenarioStarted {
                                index: i,
                                label: spec.label.clone(),
                                attempt: 0,
                                worker: me.clone(),
                            });
                        }
                        let ev = events.map(|log| EventScope::new(Arc::clone(log), i, 0));
                        let outcome = execute(&spec, &mut scratch, ev);
                        if let Some(log) = events {
                            log.append(&match &outcome {
                                Ok(o) => CampaignEvent::ScenarioFinished {
                                    index: i,
                                    label: spec.label.clone(),
                                    attempt: 0,
                                    worker: me.clone(),
                                    summary: ScenarioSummary::of(o),
                                },
                                Err(e) => CampaignEvent::ScenarioFailed {
                                    index: i,
                                    label: spec.label.clone(),
                                    attempt: 0,
                                    worker: me.clone(),
                                    error: e.to_string(),
                                },
                            });
                        }
                        let result = ScenarioResult { spec, index: i, outcome };
                        if tx.send((i, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            // Collect on this thread, publishing completed prefixes in input
            // order so the portal stream is deterministic too.
            let mut pending: BTreeMap<usize, ScenarioResult> = BTreeMap::new();
            let mut next_publish = 0usize;
            let mut done = 0usize;
            while done < n {
                let (i, result) = rx.recv().expect("campaign worker channel closed early");
                done += 1;
                if self.progress {
                    eprintln!(
                        "[{done}/{n}] {} {}",
                        result.spec.label,
                        match &result.outcome {
                            Ok(o) => format!("best {:.2} in {}", o.best_score(), o.duration()),
                            Err(e) => format!("FAILED: {e}"),
                        }
                    );
                }
                pending.insert(i, result);
                while let Some(result) = pending.remove(&next_publish) {
                    publish_scenario(&self.portal, &self.store, self.publish_records, &result);
                    slots[next_publish] = Some(result);
                    next_publish += 1;
                }
            }
        });

        let results: Vec<ScenarioResult> =
            slots.into_iter().map(|s| s.expect("every scenario slot filled")).collect();
        publish_campaign_record(&self.portal, &results);
        if let Some(log) = &self.events {
            log.append(&CampaignEvent::CampaignClosed {
                scenarios: n,
                failed: results.iter().filter(|r| r.outcome.is_err()).count(),
                best_score: best_of(&results),
                scheduler: None,
            });
        }
        CampaignReport { results, portal: Arc::clone(&self.portal), threads: self.threads }
    }
}

/// Best (lowest) score across successful scenarios, if any.
pub(crate) fn best_of(results: &[ScenarioResult]) -> Option<f64> {
    results
        .iter()
        .filter_map(|r| r.outcome.as_ref().ok())
        .map(|o| o.best_score())
        .fold(None, |a, s| Some(a.map_or(s, |a: f64| a.min(s))))
}

/// Run one scenario to completion (workers call this; also the single-run
/// fast path): an [`Experiment`] session driven on the scenario's
/// configured lab backend. `scratch` is the worker's reusable detector
/// arena, loaned to backends with a detection pipeline. With `events`, the
/// session appends batch/sample events as it goes (multi-OT2 scenarios log
/// only their lifecycle; their summary carries the close telemetry).
pub(crate) fn execute(
    spec: &ScenarioSpec,
    scratch: &mut DetectorScratch,
    events: Option<EventScope>,
) -> Result<ScenarioOutcome, crate::app::AppError> {
    match spec.mode {
        RunMode::Single => {
            let mut session = Experiment::new(spec.config.clone())?;
            if let Some(scope) = events {
                session.attach_events(scope);
            }
            let mut backend = spec.backend.build(&spec.config)?;
            backend.swap_scratch(scratch);
            let outcome = session.run_on(backend.as_mut());
            backend.swap_scratch(scratch);
            outcome.map(|o| ScenarioOutcome::Single(Box::new(o)))
        }
        RunMode::MultiOt2(n) => {
            if spec.backend != BackendSpec::Sim {
                return Err(crate::app::AppError::Setup(format!(
                    "multi-OT2 scenarios only run on the sim backend (got '{}')",
                    spec.backend
                )));
            }
            run_multi_ot2(&spec.config, n).map(ScenarioOutcome::MultiOt2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppConfig;
    use sdl_conf::ValueExt;

    fn spec(label: &str, seed: u64) -> ScenarioSpec {
        ScenarioSpec::new(
            label,
            AppConfig {
                sample_budget: 4,
                batch: 2,
                seed,
                publish_images: false,
                ..AppConfig::default()
            },
        )
    }

    #[test]
    fn results_come_back_in_input_order() {
        let report =
            CampaignRunner::new().threads(4).run(vec![spec("a", 1), spec("b", 2), spec("c", 3)]);
        assert_eq!(report.len(), 3);
        let labels: Vec<&str> = report.results.iter().map(|r| r.label()).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        for r in &report.results {
            assert_eq!(r.expect_outcome().samples_measured(), 4, "{}", r.label());
        }
    }

    #[test]
    fn portal_receives_stream_in_order() {
        let report = CampaignRunner::new().threads(8).run(vec![
            spec("s0", 1),
            spec("s1", 2),
            spec("s2", 3),
            spec("s3", 4),
        ]);
        let records = report.portal.find("kind", "campaign_scenario");
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.opt_i64("index"), Some(i as i64), "stream out of order");
        }
        assert_eq!(report.portal.find("kind", "campaign").len(), 1);
    }

    #[test]
    fn full_records_and_blobs_stream_into_shared_sinks() {
        let portal = Arc::new(AcdcPortal::new());
        let store = Arc::new(BlobStore::in_memory());
        let mut with_images = spec("imaged", 7);
        with_images.config.publish_images = true;
        let report = CampaignRunner::new()
            .threads(2)
            .with_portal(Arc::clone(&portal))
            .with_store(Arc::clone(&store))
            .publish_records(true)
            .run(vec![with_images, spec("plain", 8)]);
        assert_eq!(report.len(), 2);
        // Full per-sample records from both scenarios landed in the shared
        // portal alongside the scenario summaries.
        assert_eq!(portal.find("kind", "experiment").len(), 2);
        assert_eq!(portal.find("kind", "sample").len(), 8);
        assert_eq!(portal.find("kind", "campaign_scenario").len(), 2);
        // The imaged scenario's plate frames were merged into the shared
        // blob store under their original references.
        assert!(!store.is_empty(), "publish_images scenario produced no blobs");
        let sample_with_image = portal
            .search(|r| r.opt_str("kind") == Some("sample") && r.opt_str("image_ref").is_some());
        let r = sample_with_image[0].opt_str("image_ref").unwrap();
        assert!(store.get(&sdl_datapub::BlobRef(r.to_string())).is_some());
    }

    #[test]
    fn summaries_only_without_publish_records() {
        let report = CampaignRunner::new().threads(2).run(vec![spec("s", 9)]);
        assert_eq!(report.portal.find("kind", "sample").len(), 0);
        assert_eq!(report.portal.find("kind", "campaign_scenario").len(), 1);
    }

    #[test]
    fn multi_ot2_scenarios_execute() {
        let base =
            AppConfig { sample_budget: 6, batch: 2, publish_images: false, ..AppConfig::default() };
        let report =
            CampaignRunner::new().threads(2).run(vec![ScenarioSpec::multi_ot2("m2", base, 2)]);
        let out = report.results[0].expect_outcome();
        assert_eq!(out.samples_measured(), 6);
        assert_eq!(out.as_multi().n_ot2, 2);
    }

    #[test]
    fn empty_campaign_is_fine() {
        let report = CampaignRunner::new().run(Vec::new());
        assert!(report.is_empty());
        assert_eq!(report.fingerprint(), "");
    }

    #[test]
    fn event_log_captures_the_full_lifecycle() {
        let log = Arc::new(EventLog::in_memory());
        let report = CampaignRunner::new()
            .threads(2)
            .name("lifecycle")
            .with_events(Arc::clone(&log))
            .run(vec![spec("a", 1), spec("b", 2)]);
        assert_eq!(report.len(), 2);

        let (lines, head, closed) = log.lines_from(1, usize::MAX);
        assert_eq!(lines.len() as u64, head);
        assert!(closed, "campaign_closed must mark the log closed");
        let events: Vec<CampaignEvent> = lines
            .iter()
            .map(|(_, l)| crate::campaign::EventRecord::from_line(l).unwrap().event)
            .collect();
        assert!(
            matches!(&events[0], CampaignEvent::CampaignOpened { campaign, specs, .. }
                if campaign == "lifecycle" && specs.len() == 2),
            "first event must be campaign_opened"
        );
        assert!(matches!(
            events.last(),
            Some(CampaignEvent::CampaignClosed { scenarios: 2, failed: 0, .. })
        ));
        let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count();
        assert_eq!(count("scenario_claimed"), 2);
        assert_eq!(count("scenario_started"), 2);
        assert_eq!(count("scenario_finished"), 2);
        // 4 samples per scenario in batches of 2 → 2 asks, 2 tells each.
        assert_eq!(count("batch_asked"), 4);
        assert_eq!(count("batch_told"), 4);
        assert_eq!(count("sample_published"), 8);
        // Every batch is asked before it is told, per scenario.
        for idx in 0..2usize {
            let mut asked = 0u32;
            for e in &events {
                match e {
                    CampaignEvent::BatchAsked { index, run, .. } if *index == idx => {
                        asked = *run;
                    }
                    CampaignEvent::BatchTold { index, run, .. } if *index == idx => {
                        assert!(*run <= asked, "told run {run} before it was asked");
                    }
                    _ => {}
                }
            }
        }
    }
}
