//! The parallel campaign executor.

use crate::backend::BackendSpec;
use crate::campaign::publish::{publish_campaign_record, publish_scenario};
use crate::campaign::report::{CampaignReport, ScenarioOutcome, ScenarioResult};
use crate::campaign::spec::{RunMode, ScenarioSpec};
use crate::experiment::Experiment;
use crate::multi::run_multi_ot2;
use sdl_datapub::{AcdcPortal, BlobStore};
use sdl_vision::DetectorScratch;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Executes scenario lists across an OS-thread pool.
///
/// Every scenario is an isolated simulated lab whose randomness derives
/// entirely from its own spec (`config.seed`), so the report is a pure
/// function of the scenario list: **bit-identical regardless of the number
/// of worker threads** and of completion order. Scenario summaries stream
/// into the runner's [`AcdcPortal`] in input order as prefixes complete.
pub struct CampaignRunner {
    threads: usize,
    portal: Arc<AcdcPortal>,
    store: Arc<BlobStore>,
    progress: bool,
    publish_records: bool,
}

impl Default for CampaignRunner {
    fn default() -> Self {
        CampaignRunner::new()
    }
}

impl CampaignRunner {
    /// A runner with one worker per available core.
    pub fn new() -> CampaignRunner {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        CampaignRunner {
            threads,
            portal: Arc::new(AcdcPortal::new()),
            store: Arc::new(BlobStore::in_memory()),
            progress: false,
            publish_records: false,
        }
    }

    /// Builder: use exactly `n` worker threads.
    pub fn threads(mut self, n: usize) -> CampaignRunner {
        self.threads = n.max(1);
        self
    }

    /// Builder: print one progress line per completed scenario to stderr.
    pub fn progress(mut self, on: bool) -> CampaignRunner {
        self.progress = on;
        self
    }

    /// Builder: stream scenario summaries into an existing portal instead
    /// of a fresh one.
    pub fn with_portal(mut self, portal: Arc<AcdcPortal>) -> CampaignRunner {
        self.portal = portal;
        self
    }

    /// The portal scenario summaries stream into.
    pub fn portal(&self) -> &Arc<AcdcPortal> {
        &self.portal
    }

    /// Builder: collect published plate images into an existing blob store
    /// (e.g. one a portal server is concurrently serving `/blobs/` from).
    pub fn with_store(mut self, store: Arc<BlobStore>) -> CampaignRunner {
        self.store = store;
        self
    }

    /// Builder: also stream each scenario's *full* record set (experiment
    /// metadata and per-sample records) into the campaign portal, not just
    /// the scenario summary. This is what a live portal server wants: the
    /// Figure-3 summary and run-detail views become available per
    /// experiment as each scenario completes.
    pub fn publish_records(mut self, on: bool) -> CampaignRunner {
        self.publish_records = on;
        self
    }

    /// The blob store scenario plate images merge into.
    pub fn store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    /// The number of worker threads `run` will use.
    pub fn worker_threads(&self) -> usize {
        self.threads
    }

    /// Execute every scenario, returning per-scenario results in input
    /// order.
    pub fn run(&self, scenarios: Vec<ScenarioSpec>) -> CampaignReport {
        let n = scenarios.len();
        if n == 0 {
            return CampaignReport {
                results: Vec::new(),
                portal: Arc::clone(&self.portal),
                threads: self.threads,
            };
        }
        let workers = self.threads.min(n);
        let scenarios = Arc::new(scenarios);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, ScenarioResult)>();

        let mut slots: Vec<Option<ScenarioResult>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let scenarios = Arc::clone(&scenarios);
                let next = &next;
                let tx = tx.clone();
                scope.spawn(move || {
                    // One scratch arena per worker thread: detector buffers
                    // (several MB) are reused across every scenario this
                    // worker executes instead of reallocated per run.
                    let mut scratch = DetectorScratch::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= scenarios.len() {
                            break;
                        }
                        let spec = scenarios[i].clone();
                        let outcome = execute(&spec, &mut scratch);
                        let result = ScenarioResult { spec, index: i, outcome };
                        if tx.send((i, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            // Collect on this thread, publishing completed prefixes in input
            // order so the portal stream is deterministic too.
            let mut pending: BTreeMap<usize, ScenarioResult> = BTreeMap::new();
            let mut next_publish = 0usize;
            let mut done = 0usize;
            while done < n {
                let (i, result) = rx.recv().expect("campaign worker channel closed early");
                done += 1;
                if self.progress {
                    eprintln!(
                        "[{done}/{n}] {} {}",
                        result.spec.label,
                        match &result.outcome {
                            Ok(o) => format!("best {:.2} in {}", o.best_score(), o.duration()),
                            Err(e) => format!("FAILED: {e}"),
                        }
                    );
                }
                pending.insert(i, result);
                while let Some(result) = pending.remove(&next_publish) {
                    publish_scenario(&self.portal, &self.store, self.publish_records, &result);
                    slots[next_publish] = Some(result);
                    next_publish += 1;
                }
            }
        });

        let results: Vec<ScenarioResult> =
            slots.into_iter().map(|s| s.expect("every scenario slot filled")).collect();
        publish_campaign_record(&self.portal, &results);
        CampaignReport { results, portal: Arc::clone(&self.portal), threads: self.threads }
    }
}

/// Run one scenario to completion (workers call this; also the single-run
/// fast path): an [`Experiment`] session driven on the scenario's
/// configured lab backend. `scratch` is the worker's reusable detector
/// arena, loaned to backends with a detection pipeline.
pub(crate) fn execute(
    spec: &ScenarioSpec,
    scratch: &mut DetectorScratch,
) -> Result<ScenarioOutcome, crate::app::AppError> {
    match spec.mode {
        RunMode::Single => {
            let mut session = Experiment::new(spec.config.clone())?;
            let mut backend = spec.backend.build(&spec.config)?;
            backend.swap_scratch(scratch);
            let outcome = session.run_on(backend.as_mut());
            backend.swap_scratch(scratch);
            outcome.map(|o| ScenarioOutcome::Single(Box::new(o)))
        }
        RunMode::MultiOt2(n) => {
            if spec.backend != BackendSpec::Sim {
                return Err(crate::app::AppError::Setup(format!(
                    "multi-OT2 scenarios only run on the sim backend (got '{}')",
                    spec.backend
                )));
            }
            run_multi_ot2(&spec.config, n).map(ScenarioOutcome::MultiOt2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppConfig;
    use sdl_conf::ValueExt;

    fn spec(label: &str, seed: u64) -> ScenarioSpec {
        ScenarioSpec::new(
            label,
            AppConfig {
                sample_budget: 4,
                batch: 2,
                seed,
                publish_images: false,
                ..AppConfig::default()
            },
        )
    }

    #[test]
    fn results_come_back_in_input_order() {
        let report =
            CampaignRunner::new().threads(4).run(vec![spec("a", 1), spec("b", 2), spec("c", 3)]);
        assert_eq!(report.len(), 3);
        let labels: Vec<&str> = report.results.iter().map(|r| r.label()).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        for r in &report.results {
            assert_eq!(r.expect_outcome().samples_measured(), 4, "{}", r.label());
        }
    }

    #[test]
    fn portal_receives_stream_in_order() {
        let report = CampaignRunner::new().threads(8).run(vec![
            spec("s0", 1),
            spec("s1", 2),
            spec("s2", 3),
            spec("s3", 4),
        ]);
        let records = report.portal.find("kind", "campaign_scenario");
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.opt_i64("index"), Some(i as i64), "stream out of order");
        }
        assert_eq!(report.portal.find("kind", "campaign").len(), 1);
    }

    #[test]
    fn full_records_and_blobs_stream_into_shared_sinks() {
        let portal = Arc::new(AcdcPortal::new());
        let store = Arc::new(BlobStore::in_memory());
        let mut with_images = spec("imaged", 7);
        with_images.config.publish_images = true;
        let report = CampaignRunner::new()
            .threads(2)
            .with_portal(Arc::clone(&portal))
            .with_store(Arc::clone(&store))
            .publish_records(true)
            .run(vec![with_images, spec("plain", 8)]);
        assert_eq!(report.len(), 2);
        // Full per-sample records from both scenarios landed in the shared
        // portal alongside the scenario summaries.
        assert_eq!(portal.find("kind", "experiment").len(), 2);
        assert_eq!(portal.find("kind", "sample").len(), 8);
        assert_eq!(portal.find("kind", "campaign_scenario").len(), 2);
        // The imaged scenario's plate frames were merged into the shared
        // blob store under their original references.
        assert!(!store.is_empty(), "publish_images scenario produced no blobs");
        let sample_with_image = portal
            .search(|r| r.opt_str("kind") == Some("sample") && r.opt_str("image_ref").is_some());
        let r = sample_with_image[0].opt_str("image_ref").unwrap();
        assert!(store.get(&sdl_datapub::BlobRef(r.to_string())).is_some());
    }

    #[test]
    fn summaries_only_without_publish_records() {
        let report = CampaignRunner::new().threads(2).run(vec![spec("s", 9)]);
        assert_eq!(report.portal.find("kind", "sample").len(), 0);
        assert_eq!(report.portal.find("kind", "campaign_scenario").len(), 1);
    }

    #[test]
    fn multi_ot2_scenarios_execute() {
        let base =
            AppConfig { sample_budget: 6, batch: 2, publish_images: false, ..AppConfig::default() };
        let report =
            CampaignRunner::new().threads(2).run(vec![ScenarioSpec::multi_ot2("m2", base, 2)]);
        let out = report.results[0].expect_outcome();
        assert_eq!(out.samples_measured(), 6);
        assert_eq!(out.as_multi().n_ot2, 2);
    }

    #[test]
    fn empty_campaign_is_fine() {
        let report = CampaignRunner::new().run(Vec::new());
        assert!(report.is_empty());
        assert_eq!(report.fingerprint(), "");
    }
}
