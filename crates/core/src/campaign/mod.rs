//! The campaign engine: every way of running experiments — single runs,
//! batch sweeps, solver comparisons, fault studies, multi-OT2 scaling —
//! goes through one parallel, deterministic runner.
//!
//! * [`ScenarioSpec`] — one fully specified experiment: target color ×
//!   solver × seed × batch × sample budget × workcell × fault profile;
//! * [`CampaignRunner`] — executes a `Vec<ScenarioSpec>` across a
//!   configurable OS-thread pool. Each scenario derives all randomness
//!   from its own spec, so a campaign's results are **bit-identical
//!   regardless of worker-thread count**;
//! * [`CampaignScheduler`] — the distributed flavor: the same scenario
//!   list sharded across a pool of `sdl-lab serve` workers with work
//!   stealing, retry-on-worker-death and the same bit-identical merge;
//! * [`CampaignReport`] — per-scenario outcomes plus aggregate views,
//!   streamed into an [`sdl_datapub::AcdcPortal`] as scenarios finish;
//! * [`CampaignConfig`] — a declarative scenario matrix
//!   (`solvers × seeds × batches × targets × …`) loaded via `sdl-conf`.
//!
//! The legacy sweep helpers ([`run_sweep`], [`batch_sweep`],
//! [`solver_sweep`], [`run_one`]) are thin veneers over the runner.

mod events;
mod progress;
mod publish;
mod queue;
mod report;
mod resume;
mod runner;
mod scheduler;
mod spec;
mod stress;

pub use events::{
    CampaignEvent, EventLog, EventRecord, EventScope, MultiTelemetry, RecoveryReport,
    ScenarioSummary, SingleTelemetry,
};
pub use progress::{ProgressModel, WorkerProgress};
pub use report::{CampaignReport, ScenarioOutcome, ScenarioResult};
pub use resume::ResumeStats;
pub use runner::CampaignRunner;
pub use scheduler::{CampaignScheduler, PhaseTimings, SchedulerReport, WorkerStats};
pub use spec::{CampaignConfig, RunMode, ScenarioSpec};
pub use stress::{Leaderboard, LeaderboardRow, StressKind, StressSuite};

use crate::app::{AppError, ColorPickerApp, ExperimentOutcome};
use crate::config::AppConfig;
use sdl_solvers::SolverKind;

/// Run one experiment to completion on the current thread.
pub fn run_one(config: AppConfig) -> Result<ExperimentOutcome, AppError> {
    ColorPickerApp::new(config)?.run()
}

/// A labelled configuration inside a sweep (alias kept for the pre-campaign
/// API; a sweep item *is* a scenario).
pub type SweepItem = ScenarioSpec;

/// Run many experiments in parallel through the campaign engine; results
/// come back in input order.
pub fn run_sweep(items: Vec<ScenarioSpec>) -> Vec<(String, Result<ExperimentOutcome, AppError>)> {
    CampaignRunner::new().run(items).into_label_outcomes()
}

/// The Figure-4 batch sweep: N samples at each batch size, same solver.
pub fn batch_sweep(base: &AppConfig, batches: &[u32]) -> Vec<ScenarioSpec> {
    batches
        .iter()
        .map(|&b| {
            let mut config = base.clone();
            config.batch = b;
            // Per-experiment seed, as in the paper (each experiment's first
            // samples are independently random).
            config.seed = base.seed.wrapping_add(b as u64).wrapping_mul(0x9e37_79b9);
            ScenarioSpec::new(format!("B={b}"), config)
        })
        .collect()
}

/// Solver-comparison sweep: same budget, several seeds per solver.
pub fn solver_sweep(base: &AppConfig, solvers: &[SolverKind], seeds: &[u64]) -> Vec<ScenarioSpec> {
    let mut items = Vec::new();
    for &solver in solvers {
        for &seed in seeds {
            let mut config = base.clone();
            config.solver = solver;
            config.seed = seed;
            items.push(ScenarioSpec::new(format!("{}/seed{}", solver.name(), seed), config));
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AppConfig {
        AppConfig { sample_budget: 6, batch: 3, publish_images: false, ..AppConfig::default() }
    }

    #[test]
    fn sweep_preserves_order_and_labels() {
        let base = small_config();
        let items = batch_sweep(&base, &[1, 2, 3]);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].label, "B=1");
        assert_eq!(items[2].config.batch, 3);
        // Distinct seeds per experiment.
        assert_ne!(items[0].config.seed, items[1].config.seed);
    }

    #[test]
    fn solver_sweep_crosses_solvers_and_seeds() {
        let base = small_config();
        let items = solver_sweep(&base, &[SolverKind::Genetic, SolverKind::Random], &[1, 2, 3]);
        assert_eq!(items.len(), 6);
        assert_eq!(items[0].label, "genetic/seed1");
        assert_eq!(items[5].config.solver, SolverKind::Random);
    }

    #[test]
    fn parallel_sweep_runs_everything() {
        let base = small_config();
        let items = batch_sweep(&base, &[2, 3]);
        let results = run_sweep(items);
        assert_eq!(results.len(), 2);
        for (label, r) in &results {
            let out = r.as_ref().unwrap_or_else(|e| panic!("{label} failed: {e}"));
            assert_eq!(out.samples_measured, 6, "{label}");
        }
    }
}
