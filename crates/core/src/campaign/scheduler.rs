//! The distributed campaign scheduler: one campaign fanned across a pool
//! of `remote:<url>` workers.
//!
//! # Lifecycle
//!
//! **Shard** — the scenario matrix is split into contiguous index shards
//! dealt round-robin onto per-worker deques ([`ShardQueue`]). **Steal** —
//! a worker that drains its own deque takes from the shared retry lane,
//! then steals from the back of the busiest-looking peer, so fast workers
//! finish slow workers' shards instead of idling. **Retry** — a transport
//! failure ([`AppError::Transport`]) means the worker died, not the
//! scenario: the driver evicts the worker, requeues the index, and starts
//! probing `/healthz` for readmission. **Merge** — results slot into a
//! fixed per-index table and publish in input order, so the merged
//! [`CampaignReport`] (and its fingerprint) is bit-identical to the
//! single-process run at any worker count, shard size, steal or failure
//! interleaving.
//!
//! # Determinism
//!
//! Every scenario derives all randomness from its own spec: the solver
//! runs *driver-side* inside [`Experiment`], and the worker hosts only the
//! deterministic simulated lab. A scenario re-driven from scratch on a
//! different worker therefore reproduces the exact same batches and
//! measurements, and a failed attempt's partially published records live
//! in a per-session portal that is discarded with the dead session —
//! nothing leaks into the campaign portal except final results, in input
//! order.
//!
//! # Liveness
//!
//! Killed workers degrade throughput, never correctness: their queued and
//! in-flight work re-enters the retry lane, healthy workers absorb it, and
//! if the *entire* pool is dead the driver process itself executes the
//! remainder in-process (the sim backend is the same code the workers
//! run). The campaign therefore always terminates with a full result set.

use crate::app::AppError;
use crate::backend::{BackendSpec, RemoteBackend, RetryPolicy};
use crate::campaign::events::{CampaignEvent, EventLog, EventScope, ScenarioSummary};
use crate::campaign::publish::{publish_campaign_record, publish_scenario};
use crate::campaign::queue::{Claim, ShardQueue};
use crate::campaign::report::{CampaignReport, ScenarioOutcome, ScenarioResult};
use crate::campaign::runner::{best_of, execute};
use crate::campaign::spec::{RunMode, ScenarioSpec};
use crate::chaos::{self, ChaosPolicy};
use crate::experiment::Experiment;
use sdl_conf::Value;
use sdl_datapub::{AcdcPortal, BlobStore};
use sdl_vision::DetectorScratch;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How long an idle driver sleeps between queue polls.
const IDLE_POLL: Duration = Duration::from_millis(1);

/// Per-worker dispatch accounting for one scheduled campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// The worker's address.
    pub url: String,
    /// Scenarios this worker completed (final results).
    pub completed: u64,
    /// Completed scenarios claimed from another worker's deque.
    pub stolen: u64,
    /// Scenario attempts bounced off this worker by a transport failure
    /// (each one was requeued and re-driven elsewhere).
    pub retries: u64,
    /// Times the worker was evicted from the healthy pool.
    pub evictions: u64,
    /// Times a health probe readmitted it.
    pub readmissions: u64,
    /// HTTP requests this worker answered.
    pub wire_posts: u64,
    /// Requests resent after a provably-unread send (reaped keep-alive).
    pub wire_resends: u64,
    /// In-budget TCP reconnect attempts.
    pub wire_reconnects: u64,
    /// Faults the chaos policy injected into this worker's wire traffic.
    pub chaos_injected: u64,
    /// Load-shed responses (429/503) this worker returned at the wire
    /// level; most are absorbed by the backend's in-budget resends.
    pub sheds: u64,
    /// Scenario attempts that surfaced backpressure to the driver, which
    /// then waited out the worker's `Retry-After` and requeued the work
    /// instead of evicting the (alive, merely busy) worker.
    pub throttled: u64,
    /// Scenarios this worker's driver quarantined — failed deterministically
    /// after exhausting the per-scenario failure budget instead of being
    /// requeued forever.
    pub quarantined: u64,
    /// Time spent driving scenarios on this worker.
    pub busy: Duration,
    /// Share of `busy` spent on scenarios stolen from a peer's deque.
    pub steal_busy: Duration,
    /// Share of `busy` wasted on attempts that died with the worker.
    pub retry_busy: Duration,
}

/// Wall-clock time the scheduler spent in each phase of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Partitioning the matrix and dealing shards onto worker deques.
    pub deal: Duration,
    /// Pool-wide time driving scenarios claimed by stealing.
    pub steal: Duration,
    /// Pool-wide time wasted on attempts that bounced off dead workers.
    pub retry: Duration,
    /// Publishing merged results into the campaign portal, input order.
    pub merge: Duration,
}

/// What the scheduler did to finish a campaign: per-worker utilization,
/// steal/retry/eviction counters, and the local fallback's share.
#[derive(Debug, Clone, Default)]
pub struct SchedulerReport {
    /// Per-worker accounting, in pool order.
    pub workers: Vec<WorkerStats>,
    /// Shard size the matrix was dealt with.
    pub shard_size: usize,
    /// Scenarios executed in the driver process because they cannot ship
    /// over `/v1` (multi-OT2, replay, explicitly-remote backends).
    pub local: u64,
    /// Shippable scenarios executed in the driver process because the
    /// whole pool was dead at the time.
    pub fallback: u64,
    /// Wall-clock duration of the scheduled run.
    pub wall: Duration,
    /// Samples measured across all scenarios (throughput numerator).
    pub samples: u64,
    /// Per-phase wall-clock breakdown (deal/steal/retry/merge).
    pub phases: PhaseTimings,
}

impl SchedulerReport {
    /// Scenario attempts bounced off dead workers, pool-wide.
    pub fn total_retries(&self) -> u64 {
        self.workers.iter().map(|w| w.retries).sum()
    }

    /// Completed scenarios that were stolen, pool-wide.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Worker evictions, pool-wide.
    pub fn total_evictions(&self) -> u64 {
        self.workers.iter().map(|w| w.evictions).sum()
    }

    /// Chaos-injected faults, pool-wide.
    pub fn total_chaos_injected(&self) -> u64 {
        self.workers.iter().map(|w| w.chaos_injected).sum()
    }

    /// Scenarios quarantined after exhausting the failure budget.
    pub fn total_quarantined(&self) -> u64 {
        self.workers.iter().map(|w| w.quarantined).sum()
    }

    /// Wire-level load-shed responses (429/503) observed, pool-wide.
    pub fn total_sheds(&self) -> u64 {
        self.workers.iter().map(|w| w.sheds).sum()
    }

    /// Scenario attempts throttled (waited out and requeued), pool-wide.
    pub fn total_throttled(&self) -> u64 {
        self.workers.iter().map(|w| w.throttled).sum()
    }

    /// Measured samples per wall-clock second.
    pub fn samples_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.samples as f64 / s
        } else {
            0.0
        }
    }

    /// Encode for portal records and the CLI (`kind: campaign_scheduler`).
    pub fn to_value(&self) -> Value {
        let mut v = Value::map();
        v.set("kind", "campaign_scheduler");
        v.set("pool", self.workers.len() as i64);
        v.set("shard_size", self.shard_size as i64);
        v.set("local", self.local as i64);
        v.set("fallback", self.fallback as i64);
        v.set("wall_s", self.wall.as_secs_f64());
        v.set("samples", self.samples as i64);
        v.set("samples_per_s", self.samples_per_sec());
        v.set("retries", self.total_retries() as i64);
        v.set("steals", self.total_steals() as i64);
        v.set("evictions", self.total_evictions() as i64);
        v.set("chaos_injected", self.total_chaos_injected() as i64);
        v.set("quarantined", self.total_quarantined() as i64);
        v.set("sheds", self.total_sheds() as i64);
        v.set("throttled", self.total_throttled() as i64);
        let mut phases = Value::map();
        phases.set("deal_s", self.phases.deal.as_secs_f64());
        phases.set("steal_s", self.phases.steal.as_secs_f64());
        phases.set("retry_s", self.phases.retry.as_secs_f64());
        phases.set("merge_s", self.phases.merge.as_secs_f64());
        v.set("phases", phases);
        let mut workers = Value::seq();
        for w in &self.workers {
            let mut e = Value::map();
            e.set("url", w.url.as_str());
            e.set("completed", w.completed as i64);
            e.set("stolen", w.stolen as i64);
            e.set("retries", w.retries as i64);
            e.set("evictions", w.evictions as i64);
            e.set("readmissions", w.readmissions as i64);
            e.set("posts", w.wire_posts as i64);
            e.set("resends", w.wire_resends as i64);
            e.set("reconnects", w.wire_reconnects as i64);
            e.set("chaos", w.chaos_injected as i64);
            e.set("quarantined", w.quarantined as i64);
            e.set("shed", w.sheds as i64);
            e.set("throttled", w.throttled as i64);
            e.set("busy_s", w.busy.as_secs_f64());
            workers.push(e);
        }
        v.set("workers", workers);
        v
    }

    /// One human line per worker, for `--progress` style output.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                let mut line = format!(
                    "worker {}: {} done ({} stolen), {} retries, {} evictions, busy {:.2}s",
                    w.url,
                    w.completed,
                    w.stolen,
                    w.retries,
                    w.evictions,
                    w.busy.as_secs_f64()
                );
                if w.chaos_injected > 0 {
                    line.push_str(&format!(", {} chaos", w.chaos_injected));
                }
                if w.quarantined > 0 {
                    line.push_str(&format!(", {} quarantined", w.quarantined));
                }
                if w.sheds > 0 {
                    line.push_str(&format!(", {} shed", w.sheds));
                }
                if w.throttled > 0 {
                    line.push_str(&format!(", {} throttled", w.throttled));
                }
                line
            })
            .collect();
        out.push(format!(
            "driver: {} local, {} fallback; {:.1} samples/s over {:.2}s",
            self.local,
            self.fallback,
            self.samples_per_sec(),
            self.wall.as_secs_f64()
        ));
        out.push(format!(
            "phases: deal {:.3}s, steal {:.3}s, retry {:.3}s, merge {:.3}s",
            self.phases.deal.as_secs_f64(),
            self.phases.steal.as_secs_f64(),
            self.phases.retry.as_secs_f64(),
            self.phases.merge.as_secs_f64()
        ));
        out
    }
}

/// Fans a campaign across a pool of `sdl-lab serve` workers with work
/// stealing, retry-on-worker-death and a deterministic merge (see the
/// module docs for the full lifecycle).
pub struct CampaignScheduler {
    workers: Vec<String>,
    shard: Option<usize>,
    retry: RetryPolicy,
    probe_budget: u32,
    failure_budget: u32,
    chaos: ChaosPolicy,
    portal: Arc<AcdcPortal>,
    store: Arc<BlobStore>,
    progress: bool,
    publish_records: bool,
    events: Option<Arc<EventLog>>,
    name: String,
}

impl CampaignScheduler {
    /// A scheduler over this worker pool (`host:port` or `http://host:port`
    /// addresses). The pool may be empty: everything then runs in-process.
    pub fn new(workers: Vec<String>) -> CampaignScheduler {
        CampaignScheduler {
            workers: workers
                .into_iter()
                .map(|w| w.trim().trim_start_matches("http://").trim_end_matches('/').to_string())
                .collect(),
            shard: None,
            retry: RetryPolicy::failover(),
            probe_budget: 5,
            failure_budget: 10,
            chaos: ChaosPolicy::default(),
            portal: Arc::new(AcdcPortal::new()),
            store: Arc::new(BlobStore::in_memory()),
            progress: false,
            publish_records: false,
            events: None,
            name: "campaign".to_string(),
        }
    }

    /// Builder: append every lifecycle event to `log` (see [`EventLog`]).
    pub fn with_events(mut self, log: Arc<EventLog>) -> CampaignScheduler {
        self.events = Some(log);
        self
    }

    /// Builder: the campaign name recorded in the `campaign_opened` event.
    pub fn name(mut self, name: impl Into<String>) -> CampaignScheduler {
        self.name = name.into();
        self
    }

    /// Builder: shard size (scenarios per deal unit). Default: enough
    /// shards for ~4 steals per worker.
    pub fn shard_size(mut self, n: usize) -> CampaignScheduler {
        self.shard = Some(n.max(1));
        self
    }

    /// Builder: replace the failover [`RetryPolicy`] used for worker
    /// connections and health probes.
    pub fn retry(mut self, retry: RetryPolicy) -> CampaignScheduler {
        self.retry = retry;
        self
    }

    /// Builder: consecutive failed health probes before a dead worker's
    /// driver gives up on readmission entirely.
    pub fn probe_budget(mut self, probes: u32) -> CampaignScheduler {
        self.probe_budget = probes;
        self
    }

    /// Builder: per-scenario failure budget. A scenario whose execution
    /// attempts have *all* died with their worker this many times is
    /// quarantined — finished as a deterministic `scenario_failed` result —
    /// instead of being requeued forever. A scenario that repeatedly kills
    /// whatever worker touches it (a poison pill) therefore terminates the
    /// campaign instead of hanging it. `0` disables the budget (requeue
    /// without limit). Default: 10.
    pub fn failure_budget(mut self, attempts: u32) -> CampaignScheduler {
        self.failure_budget = attempts;
        self
    }

    /// Builder: inject client-side transport chaos into every remote
    /// scenario drive. Each worker × scenario × attempt gets its own
    /// deterministic fault stream keyed by [`chaos::stream_key`], so a
    /// fixed `(chaos seed, schedule)` reproduces the exact same fault
    /// interleaving and counters across runs.
    pub fn chaos(mut self, policy: ChaosPolicy) -> CampaignScheduler {
        self.chaos = policy;
        self
    }

    /// Builder: print one progress line per completed scenario to stderr.
    pub fn progress(mut self, on: bool) -> CampaignScheduler {
        self.progress = on;
        self
    }

    /// Builder: stream scenario summaries into an existing portal.
    pub fn with_portal(mut self, portal: Arc<AcdcPortal>) -> CampaignScheduler {
        self.portal = portal;
        self
    }

    /// Builder: collect plate images into an existing blob store.
    pub fn with_store(mut self, store: Arc<BlobStore>) -> CampaignScheduler {
        self.store = store;
        self
    }

    /// Builder: also stream each scenario's full record set into the
    /// campaign portal (see [`CampaignRunner::publish_records`]).
    ///
    /// [`CampaignRunner::publish_records`]: crate::CampaignRunner::publish_records
    pub fn publish_records(mut self, on: bool) -> CampaignScheduler {
        self.publish_records = on;
        self
    }

    /// The worker pool.
    pub fn pool(&self) -> &[String] {
        &self.workers
    }

    /// Execute every scenario across the pool. Results come back in input
    /// order; the report's fingerprint is bit-identical to
    /// [`CampaignRunner`](crate::CampaignRunner) on the same scenarios.
    pub fn run(&self, scenarios: Vec<ScenarioSpec>) -> (CampaignReport, SchedulerReport) {
        let n = scenarios.len();
        let started = Instant::now();
        let mut sched = SchedulerReport {
            workers: self
                .workers
                .iter()
                .map(|url| WorkerStats { url: url.clone(), ..WorkerStats::default() })
                .collect(),
            ..SchedulerReport::default()
        };
        if n == 0 {
            sched.shard_size = self.shard.unwrap_or(1);
            return (
                CampaignReport {
                    results: Vec::new(),
                    portal: Arc::clone(&self.portal),
                    threads: self.workers.len().max(1),
                },
                sched,
            );
        }

        if let Some(log) = &self.events {
            log.append(&CampaignEvent::CampaignOpened {
                campaign: self.name.clone(),
                executor: "scheduler".to_string(),
                workers: self.workers.clone(),
                specs: scenarios.iter().map(|s| s.to_value()).collect(),
            });
        }

        // Partition: scenarios shippable over /v1 (single-loop on the sim
        // backend — the worker instantiates the lab from the config) vs
        // everything that must run in the driver process.
        let deal_started = Instant::now();
        let shippable: Vec<usize> = (0..n)
            .filter(|&i| {
                scenarios[i].mode == RunMode::Single && scenarios[i].backend == BackendSpec::Sim
            })
            .collect();
        let local: Vec<usize> = (0..n)
            .filter(|&i| {
                !(scenarios[i].mode == RunMode::Single && scenarios[i].backend == BackendSpec::Sim)
            })
            .collect();

        let pool = self.workers.len();
        let shard_size = self.shard.unwrap_or_else(|| {
            if pool == 0 {
                1
            } else {
                (shippable.len() / (pool * 4)).max(1)
            }
        });
        sched.shard_size = shard_size;

        // With no pool, every scenario is driver-local.
        let (queued, extra_local): (&[usize], &[usize]) =
            if pool == 0 { (&[], &shippable) } else { (&shippable, &[]) };
        let queue = ShardQueue::deal(queued, pool.max(1), shard_size);
        sched.phases.deal = deal_started.elapsed();

        let scenarios = Arc::new(scenarios);
        // Per-scenario execution attempt counter: every start (first try,
        // retry after eviction, local fallback) gets a distinct attempt
        // number in the event log, so resume can tell partial attempts from
        // the one that finished.
        let attempts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        // Drivers currently holding a live worker; the in-process fallback
        // only engages when this reaches zero.
        let healthy = AtomicUsize::new(pool);
        let (tx, rx) = mpsc::channel::<(usize, ScenarioResult)>();
        let stats: Vec<parking_lot::Mutex<WorkerStats>> =
            sched.workers.drain(..).map(parking_lot::Mutex::new).collect();

        let mut slots: Vec<Option<ScenarioResult>> = (0..n).map(|_| None).collect();
        let mut merge_spent = Duration::ZERO;
        std::thread::scope(|scope| {
            // One driver thread per remote worker.
            for (w, url) in self.workers.iter().enumerate() {
                let scenarios = Arc::clone(&scenarios);
                let tx = tx.clone();
                let (queue, healthy, stats) = (&queue, &healthy, &stats[w]);
                // Per-worker jitter seed: drivers retrying the same dead
                // peer spread their backoff waits apart (a no-op unless the
                // policy opted into jitter).
                let retry = self.retry.with_jitter(
                    self.retry.jitter_permille,
                    rand::counter::hash(self.retry.jitter_seed, w as u64),
                );
                let (probe_budget, failure_budget, chaos) =
                    (self.probe_budget, self.failure_budget, self.chaos);
                let (events, attempts, pool_urls) =
                    (self.events.as_ref(), &attempts[..], &self.workers[..]);
                scope.spawn(move || {
                    drive_worker(
                        w,
                        url,
                        &scenarios,
                        queue,
                        healthy,
                        stats,
                        &tx,
                        retry,
                        probe_budget,
                        failure_budget,
                        chaos,
                        events,
                        attempts,
                        pool_urls,
                    );
                });
            }

            // The driver process's own executor: runs unshippable scenarios,
            // then stands by as the last-resort fallback for a dead pool.
            {
                let scenarios = Arc::clone(&scenarios);
                let tx = tx.clone();
                let (queue, healthy) = (&queue, &healthy);
                let (events, attempts) = (self.events.as_ref(), &attempts[..]);
                let local = [local, extra_local.to_vec()].concat();
                scope.spawn(move || {
                    let mut scratch = DetectorScratch::default();
                    let run_local =
                        |i: usize, claim: &str, depth: usize, scratch: &mut DetectorScratch| {
                            let spec = scenarios[i].clone();
                            let attempt = attempts[i].fetch_add(1, Ordering::Relaxed);
                            if let Some(log) = events {
                                log.append(&CampaignEvent::ScenarioClaimed {
                                    index: i,
                                    worker: "driver".to_string(),
                                    claim: claim.to_string(),
                                    queue_depth: depth,
                                });
                                log.append(&CampaignEvent::ScenarioStarted {
                                    index: i,
                                    label: spec.label.clone(),
                                    attempt,
                                    worker: "driver".to_string(),
                                });
                            }
                            let ev = events.map(|log| EventScope::new(Arc::clone(log), i, attempt));
                            let outcome = execute(&spec, scratch, ev);
                            if let Some(log) = events {
                                log.append(&finish_event(i, &spec, attempt, "driver", &outcome));
                            }
                            ScenarioResult { spec, index: i, outcome }
                        };
                    for (pos, &i) in local.iter().enumerate() {
                        let result = run_local(i, "local", local.len() - (pos + 1), &mut scratch);
                        if tx.send((i, result)).is_err() {
                            return;
                        }
                    }
                    // Fallback: only claim shippable work while no driver
                    // holds a healthy worker (otherwise stay out of the
                    // pool's way — throughput scaling is theirs to prove).
                    loop {
                        if queue.outstanding() == 0 {
                            return;
                        }
                        if healthy.load(Ordering::Acquire) > 0 {
                            std::thread::sleep(IDLE_POLL);
                            continue;
                        }
                        let Some(i) = queue.claim_any() else {
                            std::thread::sleep(IDLE_POLL);
                            continue;
                        };
                        let depth = queue.outstanding().saturating_sub(1);
                        let result = run_local(i, "fallback", depth, &mut scratch);
                        queue.complete_one();
                        if tx.send((i, result)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);

            // Deterministic merge: collect results, publish completed
            // prefixes in input order (same protocol as CampaignRunner).
            let mut pending: BTreeMap<usize, ScenarioResult> = BTreeMap::new();
            let mut next_publish = 0usize;
            let mut done = 0usize;
            while done < n {
                let (i, result) = rx.recv().expect("scheduler worker channel closed early");
                done += 1;
                if self.progress {
                    eprintln!(
                        "[{done}/{n}] {} {}",
                        result.spec.label,
                        match &result.outcome {
                            Ok(o) => format!("best {:.2} in {}", o.best_score(), o.duration()),
                            Err(e) => format!("FAILED: {e}"),
                        }
                    );
                }
                pending.insert(i, result);
                let merge_started = Instant::now();
                while let Some(result) = pending.remove(&next_publish) {
                    publish_scenario(&self.portal, &self.store, self.publish_records, &result);
                    slots[next_publish] = Some(result);
                    next_publish += 1;
                }
                merge_spent += merge_started.elapsed();
            }
        });

        let results: Vec<ScenarioResult> =
            slots.into_iter().map(|s| s.expect("every scenario slot filled")).collect();
        let merge_started = Instant::now();
        publish_campaign_record(&self.portal, &results);
        merge_spent += merge_started.elapsed();

        sched.workers = stats.into_iter().map(|m| m.into_inner()).collect();
        let remote_done: u64 = sched.workers.iter().map(|w| w.completed).sum();
        sched.local = local_unshippable_count(&results);
        // Quarantined scenarios were terminated by a remote driver, not run
        // by the in-process fallback — keep them out of its tally.
        sched.fallback =
            (n as u64).saturating_sub(remote_done + sched.local + sched.total_quarantined());
        sched.wall = started.elapsed();
        sched.samples = results
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(|o| o.samples_measured() as u64)
            .sum();
        sched.phases.merge = merge_spent;
        sched.phases.steal = sched.workers.iter().map(|w| w.steal_busy).sum();
        sched.phases.retry = sched.workers.iter().map(|w| w.retry_busy).sum();
        self.portal.ingest(sched.to_value());
        if let Some(log) = &self.events {
            log.append(&CampaignEvent::CampaignClosed {
                scenarios: n,
                failed: results.iter().filter(|r| r.outcome.is_err()).count(),
                best_score: best_of(&results),
                scheduler: Some(sched.to_value()),
            });
        }

        let report =
            CampaignReport { results, portal: Arc::clone(&self.portal), threads: pool.max(1) };
        (report, sched)
    }
}

/// Scenarios that could never have shipped (the driver-local share that is
/// not fallback work).
fn local_unshippable_count(results: &[ScenarioResult]) -> u64 {
    results
        .iter()
        .filter(|r| !(r.spec.mode == RunMode::Single && r.spec.backend == BackendSpec::Sim))
        .count() as u64
}

/// The terminal per-scenario event for one execution attempt.
fn finish_event(
    index: usize,
    spec: &ScenarioSpec,
    attempt: u32,
    worker: &str,
    outcome: &Result<ScenarioOutcome, AppError>,
) -> CampaignEvent {
    match outcome {
        Ok(o) => CampaignEvent::ScenarioFinished {
            index,
            label: spec.label.clone(),
            attempt,
            worker: worker.to_string(),
            summary: ScenarioSummary::of(o),
        },
        Err(e) => CampaignEvent::ScenarioFailed {
            index,
            label: spec.label.clone(),
            attempt,
            worker: worker.to_string(),
            error: e.to_string(),
        },
    }
}

/// One remote worker's driver loop: claim → drive remotely → merge or
/// requeue; on transport failure, evict and probe for readmission.
#[allow(clippy::too_many_arguments)]
fn drive_worker(
    me: usize,
    url: &str,
    scenarios: &[ScenarioSpec],
    queue: &ShardQueue,
    healthy: &AtomicUsize,
    stats: &parking_lot::Mutex<WorkerStats>,
    tx: &mpsc::Sender<(usize, ScenarioResult)>,
    retry: RetryPolicy,
    probe_budget: u32,
    failure_budget: u32,
    chaos: ChaosPolicy,
    events: Option<&Arc<EventLog>>,
    attempts: &[AtomicU32],
    pool: &[String],
) {
    let mut is_healthy = true;
    let mut probe_failures = 0u32;
    loop {
        if queue.outstanding() == 0 {
            break;
        }
        if !is_healthy {
            if probe(url, retry.connect_timeout) {
                is_healthy = true;
                probe_failures = 0;
                healthy.fetch_add(1, Ordering::AcqRel);
                stats.lock().readmissions += 1;
                if let Some(log) = events {
                    log.append(&CampaignEvent::WorkerReadmitted { worker: url.to_string() });
                }
            } else {
                probe_failures += 1;
                if probe_failures > probe_budget {
                    break; // permanently dead; the pool (or fallback) owns the rest
                }
                std::thread::sleep(retry.backoff(probe_failures));
                continue;
            }
        }
        let Some(claim) = queue.claim(me) else {
            std::thread::sleep(IDLE_POLL);
            continue;
        };
        let index = claim.index();
        let spec = scenarios[index].clone();
        let attempt = attempts[index].fetch_add(1, Ordering::Relaxed);
        if let Some(log) = events {
            let kind = match claim {
                Claim::Own(_) => "own",
                Claim::Retry(_) => "retry",
                Claim::Stolen { .. } => "stolen",
            };
            log.append(&CampaignEvent::ScenarioClaimed {
                index,
                worker: url.to_string(),
                claim: kind.to_string(),
                queue_depth: queue.depth(me),
            });
            if let Claim::Stolen { victim, .. } = claim {
                log.append(&CampaignEvent::WorkerStolenFrom {
                    victim: pool[victim].clone(),
                    thief: url.to_string(),
                    index,
                });
            }
            log.append(&CampaignEvent::ScenarioStarted {
                index,
                label: spec.label.clone(),
                attempt,
                worker: url.to_string(),
            });
        }
        let ev = events.map(|log| EventScope::new(Arc::clone(log), index, attempt));
        let started = Instant::now();
        let (outcome, wire) = drive_one(url, &spec, retry, chaos, index, attempt, ev);
        let busy = started.elapsed();
        let stolen = matches!(claim, Claim::Stolen { .. });
        {
            let mut s = stats.lock();
            s.busy += busy;
            if stolen {
                s.steal_busy += busy;
            }
            s.wire_posts += wire.posts;
            s.wire_resends += wire.resends;
            s.wire_reconnects += wire.reconnects;
            s.chaos_injected += wire.injected();
            s.sheds += wire.sheds;
        }
        match outcome {
            Err(e) if e.is_backpressure() => {
                // Backpressure, not death: the worker answered 429/503 past
                // the backend's in-request retry budget. It is alive and
                // merely over capacity, so it stays in the healthy pool
                // (no eviction, no probing) — the driver waits out the
                // server's Retry-After and requeues the scenario for a
                // clean re-drive. Bounded by the same failure budget as
                // transport deaths so a permanently-shedding worker cannot
                // livelock the campaign.
                let failed_attempts = attempts[index].load(Ordering::Relaxed);
                if failure_budget > 0 && failed_attempts >= failure_budget {
                    queue.complete_one();
                    {
                        let mut s = stats.lock();
                        s.retries += 1;
                        s.retry_busy += busy;
                        s.quarantined += 1;
                    }
                    let outcome: Result<ScenarioOutcome, AppError> = Err(AppError::Backend(
                        format!("quarantined after {failed_attempts} throttled attempts (last: {e})"),
                    ));
                    if let Some(log) = events {
                        log.append(&finish_event(index, &spec, attempt, url, &outcome));
                    }
                    if tx.send((index, ScenarioResult { spec, index, outcome })).is_err() {
                        break;
                    }
                    continue;
                }
                queue.requeue(index);
                {
                    let mut s = stats.lock();
                    s.retries += 1;
                    s.throttled += 1;
                    s.retry_busy += busy;
                }
                std::thread::sleep(retry.backpressure_delay(e.retry_after(), 1));
            }
            Err(e) if e.is_transport() => {
                // `attempts` counts starts, so the load already includes
                // this just-failed attempt.
                let failed_attempts = attempts[index].load(Ordering::Relaxed);
                if failure_budget > 0 && failed_attempts >= failure_budget {
                    // Quarantine: this scenario has now taken a worker down
                    // with every attempt in its budget — a poison pill.
                    // Requeueing it again would let it hunt the rest of the
                    // pool (and then livelock the fallback), so finish it
                    // as a *deterministic* failure instead. The worker is
                    // not evicted here: its driver stays in rotation and
                    // the very next claim decides its health on fresh
                    // evidence.
                    queue.complete_one();
                    {
                        let mut s = stats.lock();
                        s.retries += 1;
                        s.retry_busy += busy;
                        s.quarantined += 1;
                    }
                    let outcome: Result<ScenarioOutcome, AppError> = Err(AppError::Backend(
                        format!("quarantined after {failed_attempts} failed attempts (last: {e})"),
                    ));
                    if let Some(log) = events {
                        log.append(&finish_event(index, &spec, attempt, url, &outcome));
                    }
                    if tx.send((index, ScenarioResult { spec, index, outcome })).is_err() {
                        break;
                    }
                    continue;
                }
                // Worker death, not scenario failure: the attempt's session
                // (and its partial records) died with the worker; requeue
                // for a clean re-drive elsewhere and start probing.
                queue.requeue(index);
                is_healthy = false;
                healthy.fetch_sub(1, Ordering::AcqRel);
                {
                    let mut s = stats.lock();
                    s.retries += 1;
                    s.evictions += 1;
                    s.retry_busy += busy;
                }
                if let Some(log) = events {
                    log.append(&CampaignEvent::WorkerEvicted {
                        worker: url.to_string(),
                        requeued: index,
                    });
                }
            }
            outcome => {
                {
                    let mut s = stats.lock();
                    s.completed += 1;
                    if stolen {
                        s.stolen += 1;
                    }
                }
                queue.complete_one();
                let outcome = outcome.map(|o| ScenarioOutcome::Single(Box::new(o)));
                if let Some(log) = events {
                    log.append(&finish_event(index, &spec, attempt, url, &outcome));
                }
                if tx.send((index, ScenarioResult { spec, index, outcome })).is_err() {
                    break;
                }
            }
        }
    }
    if is_healthy {
        healthy.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Drive one shippable scenario on `url`, returning the outcome plus the
/// backend's wire-level retry accounting. With `events`, the driver-side
/// session appends batch/sample events as the remote lab executes. The
/// chaos stream is keyed by `(url, index, attempt)` so every re-drive
/// rolls its own reproducible fault schedule.
#[allow(clippy::too_many_arguments)]
fn drive_one(
    url: &str,
    spec: &ScenarioSpec,
    retry: RetryPolicy,
    chaos: ChaosPolicy,
    index: usize,
    attempt: u32,
    events: Option<EventScope>,
) -> (Result<crate::app::ExperimentOutcome, AppError>, crate::backend::RemoteStats) {
    let mut backend = RemoteBackend::new(url, spec.config.clone())
        .with_retry(retry)
        .with_chaos(chaos, chaos::stream_key(url, index, attempt));
    let outcome = match Experiment::new(spec.config.clone()) {
        Ok(mut session) => {
            if let Some(scope) = events {
                session.attach_events(scope);
            }
            session.run_on(&mut backend)
        }
        Err(e) => Err(e),
    };
    (outcome, backend.stats())
}

/// One cheap liveness probe: `GET /healthz` with a short connect timeout.
fn probe(url: &str, timeout: Duration) -> bool {
    let Ok(addrs) = url.to_socket_addrs() else { return false };
    for addr in addrs {
        let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) else { continue };
        stream.set_read_timeout(Some(timeout)).ok();
        let mut stream = stream;
        if write!(stream, "GET /healthz HTTP/1.1\r\nHost: lab\r\nConnection: close\r\n\r\n")
            .is_err()
        {
            continue;
        }
        let mut line = String::new();
        if BufReader::new(stream).read_line(&mut line).is_err() {
            continue;
        }
        let ok = line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .is_some_and(|status| status < 500);
        if ok {
            return true;
        }
    }
    false
}
