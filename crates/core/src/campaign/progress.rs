//! A pure fold over the campaign event stream into dashboard state.
//!
//! [`ProgressModel`] consumes [`CampaignEvent`]s in sequence order and
//! maintains everything the `sdl-lab watch` terminal dashboard and the
//! portal's `sdl_lab_campaign_*` gauges display: scenario progress,
//! per-worker counters and queue depths, the best-score sparkline.
//! Rendering is plain text (no ANSI) so the same output is unit-testable
//! and pasteable into docs; the CLI adds cursor control around it.

use crate::campaign::events::CampaignEvent;
use sdl_conf::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Best-score samples kept for the sparkline.
const SPARK_KEEP: usize = 512;

/// Per-worker view folded from claim/steal/eviction events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerProgress {
    /// Scenarios this worker finished.
    pub done: u64,
    /// Scenarios currently executing.
    pub running: u64,
    /// Claims that were steals from a peer.
    pub steals: u64,
    /// Times a peer stole from this worker's queue.
    pub stolen_from: u64,
    /// Retry claims (work bounced off a dead worker).
    pub retries: u64,
    /// Evictions after transport failures.
    pub evictions: u64,
    /// Readmissions after a successful health probe.
    pub readmissions: u64,
    /// Scenarios quarantined on this worker (failure budget exhausted).
    pub quarantined: u64,
    /// Chaos faults injected into this worker's traffic (backfilled from
    /// the `campaign_closed` scheduler payload).
    pub chaos: u64,
    /// Load-shed responses (429/503) this worker returned (backfilled from
    /// the `campaign_closed` scheduler payload).
    pub shed: u64,
    /// Attempts the driver throttled — waited out `Retry-After` and
    /// requeued instead of evicting (backfilled like `chaos`).
    pub throttled: u64,
    /// Scenarios still queued for this worker at its last claim.
    pub queue_depth: u64,
    /// Sequence number of the last event mentioning this worker.
    pub last_seq: u64,
}

/// Dashboard state folded from the event stream.
#[derive(Debug, Clone, Default)]
pub struct ProgressModel {
    /// Campaign name from `campaign_opened`.
    pub campaign: String,
    /// `runner` or `scheduler`.
    pub executor: String,
    /// Total scenarios.
    pub total: usize,
    /// Scenarios finished successfully.
    pub done: usize,
    /// Scenarios failed.
    pub failed: usize,
    /// Labels of scenarios currently running, by index.
    pub running: BTreeMap<usize, String>,
    /// Samples published so far.
    pub samples: u64,
    /// Best (lowest) score seen so far.
    pub best: Option<f64>,
    /// Recent best-so-far scores, one per published sample (bounded).
    pub best_history: Vec<f64>,
    /// Per-worker counters.
    pub workers: BTreeMap<String, WorkerProgress>,
    /// Highest event sequence number applied.
    pub seq: u64,
    /// Scenarios restored from the log by a resume.
    pub replayed: usize,
    /// Scenarios that failed by quarantine (failure budget exhausted).
    pub quarantined: usize,
    /// True once `campaign_closed` was applied.
    pub closed: bool,
    /// The scheduler report payload of `campaign_closed`, when present.
    pub scheduler: Option<Value>,
}

impl ProgressModel {
    /// An empty model.
    pub fn new() -> ProgressModel {
        ProgressModel::default()
    }

    /// Fold one event (with its sequence number) into the model.
    pub fn apply(&mut self, seq: u64, event: &CampaignEvent) {
        self.seq = self.seq.max(seq);
        fn touch<'a>(
            workers: &'a mut BTreeMap<String, WorkerProgress>,
            seq: u64,
            name: &str,
        ) -> &'a mut WorkerProgress {
            let w = workers.entry(name.to_string()).or_default();
            w.last_seq = w.last_seq.max(seq);
            w
        }
        match event {
            CampaignEvent::CampaignOpened { campaign, executor, workers, specs } => {
                self.campaign = campaign.clone();
                self.executor = executor.clone();
                self.total = specs.len();
                for w in workers {
                    touch(&mut self.workers, seq, w);
                }
            }
            CampaignEvent::ScenarioClaimed { worker, claim, queue_depth, .. } => {
                let w = touch(&mut self.workers, seq, worker);
                w.queue_depth = *queue_depth as u64;
                match claim.as_str() {
                    "stolen" => w.steals += 1,
                    "retry" => w.retries += 1,
                    _ => {}
                }
            }
            CampaignEvent::ScenarioStarted { index, label, worker, .. } => {
                self.running.insert(*index, label.clone());
                touch(&mut self.workers, seq, worker).running += 1;
            }
            CampaignEvent::BatchAsked { .. } | CampaignEvent::BatchTold { .. } => {}
            CampaignEvent::SamplePublished { best, .. } => {
                self.samples += 1;
                self.best = Some(self.best.map_or(*best, |b| b.min(*best)));
                if self.best_history.len() == SPARK_KEEP {
                    self.best_history.remove(0);
                }
                self.best_history.push(*best);
            }
            CampaignEvent::ScenarioFinished { index, worker, summary, .. } => {
                self.running.remove(index);
                self.done += 1;
                self.best =
                    Some(self.best.map_or(summary.best_score, |b| b.min(summary.best_score)));
                let w = touch(&mut self.workers, seq, worker);
                w.done += 1;
                w.running = w.running.saturating_sub(1);
            }
            CampaignEvent::ScenarioFailed { index, worker, error, .. } => {
                self.running.remove(index);
                self.failed += 1;
                let quarantined = error.starts_with("quarantined");
                if quarantined {
                    self.quarantined += 1;
                }
                let w = touch(&mut self.workers, seq, worker);
                if quarantined {
                    w.quarantined += 1;
                }
                w.running = w.running.saturating_sub(1);
            }
            CampaignEvent::WorkerEvicted { worker, .. } => {
                let w = touch(&mut self.workers, seq, worker);
                w.evictions += 1;
                w.running = w.running.saturating_sub(1);
            }
            CampaignEvent::WorkerReadmitted { worker } => {
                touch(&mut self.workers, seq, worker).readmissions += 1;
            }
            CampaignEvent::WorkerStolenFrom { victim, thief, .. } => {
                touch(&mut self.workers, seq, victim).stolen_from += 1;
                touch(&mut self.workers, seq, thief);
            }
            CampaignEvent::CampaignResumed { replayed, .. } => {
                self.replayed = *replayed;
            }
            CampaignEvent::CampaignClosed { scenarios, failed, scheduler, .. } => {
                self.total = self.total.max(*scenarios);
                self.failed = *failed;
                self.done = scenarios - failed;
                self.running.clear();
                self.closed = true;
                self.scheduler = scheduler.clone();
                // Backfill per-worker chaos counters: only the scheduler
                // report knows how many faults each backend's stream
                // injected (there is no per-fault event — chaos must not
                // bloat the log it is stress-testing).
                if let Some(sched) = &self.scheduler {
                    if let Some(entries) = sched.get("workers").and_then(Value::as_seq) {
                        for e in entries {
                            let Some(url) = e.get("url").and_then(Value::as_str) else { continue };
                            let w = touch(&mut self.workers, seq, url);
                            w.chaos = e.get("chaos").and_then(Value::as_i64).unwrap_or(0) as u64;
                            w.shed = e.get("shed").and_then(Value::as_i64).unwrap_or(0) as u64;
                            w.throttled =
                                e.get("throttled").and_then(Value::as_i64).unwrap_or(0) as u64;
                            w.quarantined = w
                                .quarantined
                                .max(e.get("quarantined").and_then(Value::as_i64).unwrap_or(0)
                                    as u64);
                        }
                    }
                }
            }
        }
    }

    /// Event-log lag of the slowest worker: how far behind the head the
    /// least recently heard-from worker is (0 with no workers).
    pub fn slowest_worker_lag(&self) -> u64 {
        self.workers.values().map(|w| self.seq.saturating_sub(w.last_seq)).max().unwrap_or(0)
    }

    /// Render the dashboard as plain text, `width` columns wide.
    /// `samples_per_sec` is measured by the caller (the model has no
    /// clock).
    pub fn render(&self, width: usize, samples_per_sec: Option<f64>) -> String {
        let width = width.clamp(40, 200);
        let mut out = String::new();
        let name = if self.campaign.is_empty() { "(waiting for events)" } else { &self.campaign };
        let state = if self.closed { "closed" } else { "live" };
        let _ = writeln!(
            out,
            "campaign {name}  [{state}]  executor={}  seq={}",
            if self.executor.is_empty() { "?" } else { &self.executor },
            self.seq
        );

        let finished = self.done + self.failed;
        let _ = writeln!(
            out,
            "{} {}/{} scenarios  ({} failed, {} running{})",
            bar(finished, self.total, width.saturating_sub(30).max(10)),
            finished,
            self.total,
            self.failed,
            self.running.len(),
            if self.replayed > 0 { format!(", {} replayed", self.replayed) } else { String::new() }
        );

        let best = self.best.map_or("-".to_string(), |b| format!("{b:.2}"));
        let rate = samples_per_sec.map_or("-".to_string(), |r| format!("{r:.1}/s"));
        let _ = writeln!(
            out,
            "samples {}  best {}  rate {}  {}",
            self.samples,
            best,
            rate,
            sparkline(&self.best_history, 32)
        );

        for (index, label) in self.running.iter().take(8) {
            let _ = writeln!(out, "  running #{index} {label}");
        }
        if !self.workers.is_empty() {
            let _ = writeln!(out, "workers:");
            for (name, w) in &self.workers {
                let _ = writeln!(
                    out,
                    "  {:<24} q={} steal={} stolen={} retry={} evict={} readmit={} chaos={} quar={} shed={} throttled={} lag={}",
                    trim_to(name, 24),
                    w.queue_depth,
                    w.steals,
                    w.stolen_from,
                    w.retries,
                    w.evictions,
                    w.readmissions,
                    w.chaos,
                    w.quarantined,
                    w.shed,
                    w.throttled,
                    self.seq.saturating_sub(w.last_seq),
                );
            }
        }
        if self.closed {
            if let Some(sched) = &self.scheduler {
                for line in scheduler_summary(sched) {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
        out
    }
}

/// A `[#####.....]` progress bar `cells` wide.
fn bar(done: usize, total: usize, cells: usize) -> String {
    let cells = cells.max(4);
    let filled = if total == 0 { 0 } else { (done * cells + total / 2) / total.max(1) };
    let filled = filled.min(cells);
    format!("[{}{}]", "#".repeat(filled), ".".repeat(cells - filled))
}

/// Downsample `values` to `cells` columns of unicode block heights.
fn sparkline(values: &[f64], cells: usize) -> String {
    const BLOCKS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (max - min).max(1e-12);
    let cells = cells.min(values.len()).max(1);
    let mut out = String::with_capacity(cells * 3);
    for c in 0..cells {
        // Mean of the slice of values this column covers.
        let lo = c * values.len() / cells;
        let hi = ((c + 1) * values.len() / cells).max(lo + 1);
        let slice: Vec<f64> =
            values[lo..hi.min(values.len())].iter().copied().filter(|v| v.is_finite()).collect();
        if slice.is_empty() {
            out.push(BLOCKS[0]);
            continue;
        }
        let mean = slice.iter().sum::<f64>() / slice.len() as f64;
        let t = ((mean - min) / span).clamp(0.0, 1.0);
        out.push(BLOCKS[((t * 7.0).round() as usize).min(7)]);
    }
    out
}

fn trim_to(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("…{}", &s[s.len() - (n - 1)..])
    }
}

/// Human lines for the `campaign_closed` scheduler payload.
fn scheduler_summary(v: &Value) -> Vec<String> {
    let mut out = Vec::new();
    let get = |k: &str| v.get(k).and_then(Value::as_i64).unwrap_or(0);
    out.push(format!(
        "scheduler: workers={} shard={} local={} fallback={}",
        v.get("workers").and_then(Value::as_seq).map_or(0, <[Value]>::len),
        get("shard_size"),
        get("local"),
        get("fallback"),
    ));
    if get("chaos_injected") > 0 || get("quarantined") > 0 {
        out.push(format!(
            "chaos: {} injected faults, {} quarantined",
            get("chaos_injected"),
            get("quarantined"),
        ));
    }
    if get("sheds") > 0 || get("throttled") > 0 {
        out.push(format!(
            "overload: {} shed responses, {} throttled attempts",
            get("sheds"),
            get("throttled"),
        ));
    }
    if let Some(phases) = v.get("phases") {
        let ph = |k: &str| phases.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        out.push(format!(
            "phases: deal={:.3}s steal={:.3}s retry={:.3}s merge={:.3}s",
            ph("deal_s"),
            ph("steal_s"),
            ph("retry_s"),
            ph("merge_s"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::events::{ScenarioSummary, SingleTelemetry};
    use crate::termination::TerminationReason;
    use sdl_desim::SimDuration;

    fn summary(best: f64) -> ScenarioSummary {
        ScenarioSummary {
            best_score: best,
            duration: SimDuration::from_micros(100),
            samples: 2,
            plates: 1,
            robotic_commands: 10,
            solver_fallbacks: 0,
            single: Some(SingleTelemetry {
                termination: TerminationReason::BudgetExhausted,
                twh: SimDuration::from_micros(100),
                ccwh: 1,
            }),
            multi: None,
        }
    }

    #[test]
    fn model_tracks_progress_and_workers() {
        let mut m = ProgressModel::new();
        let mut seq = 0u64;
        let mut push = |m: &mut ProgressModel, e: CampaignEvent| {
            seq += 1;
            m.apply(seq, &e);
        };
        push(
            &mut m,
            CampaignEvent::CampaignOpened {
                campaign: "demo".into(),
                executor: "scheduler".into(),
                workers: vec!["w:1".into(), "w:2".into()],
                specs: vec![Value::map(), Value::map()],
            },
        );
        assert_eq!(m.total, 2);
        push(
            &mut m,
            CampaignEvent::ScenarioClaimed {
                index: 0,
                worker: "w:1".into(),
                claim: "stolen".into(),
                queue_depth: 1,
            },
        );
        push(
            &mut m,
            CampaignEvent::ScenarioStarted {
                index: 0,
                label: "a".into(),
                attempt: 0,
                worker: "w:1".into(),
            },
        );
        push(
            &mut m,
            CampaignEvent::SamplePublished {
                index: 0,
                attempt: 0,
                run: 1,
                sample: 1,
                well: "A1".into(),
                ratios: vec![1.0],
                measured: [1, 2, 3],
                score: 9.0,
                best: 9.0,
                elapsed_us: 1,
                batch_wall_us: 1,
            },
        );
        assert_eq!(m.samples, 1);
        assert_eq!(m.best, Some(9.0));
        assert_eq!(m.running.len(), 1);
        assert_eq!(m.workers["w:1"].steals, 1);
        push(
            &mut m,
            CampaignEvent::ScenarioFinished {
                index: 0,
                label: "a".into(),
                attempt: 0,
                worker: "w:1".into(),
                summary: summary(3.0),
            },
        );
        assert_eq!(m.done, 1);
        assert_eq!(m.best, Some(3.0));
        assert!(m.running.is_empty());
        push(&mut m, CampaignEvent::WorkerEvicted { worker: "w:2".into(), requeued: 1 });
        assert_eq!(m.workers["w:2"].evictions, 1);
        // w:1 was last heard from at the finish (seq 5); head is now 6.
        assert_eq!(m.slowest_worker_lag(), 1);
        push(
            &mut m,
            CampaignEvent::CampaignClosed {
                scenarios: 2,
                failed: 1,
                best_score: Some(3.0),
                scheduler: None,
            },
        );
        assert!(m.closed);
        assert_eq!(m.done, 1);
        assert_eq!(m.failed, 1);

        let text = m.render(80, Some(12.5));
        assert!(text.contains("campaign demo"), "{text}");
        assert!(text.contains("2/2 scenarios"), "{text}");
        assert!(text.contains("12.5/s"), "{text}");
        assert!(text.contains("w:1"), "{text}");
    }

    #[test]
    fn closed_payload_backfills_shed_and_throttled() {
        let mut m = ProgressModel::new();
        m.apply(
            1,
            &CampaignEvent::CampaignOpened {
                campaign: "demo".into(),
                executor: "scheduler".into(),
                workers: vec!["w:1".into()],
                specs: vec![Value::map()],
            },
        );
        let mut entry = Value::map();
        entry.set("url", "w:1");
        entry.set("chaos", 3i64);
        entry.set("shed", 7i64);
        entry.set("throttled", 2i64);
        entry.set("quarantined", 0i64);
        let mut workers = Value::seq();
        workers.push(entry);
        let mut sched = Value::map();
        sched.set("workers", workers);
        sched.set("sheds", 7i64);
        sched.set("throttled", 2i64);
        m.apply(
            2,
            &CampaignEvent::CampaignClosed {
                scenarios: 1,
                failed: 0,
                best_score: Some(1.0),
                scheduler: Some(sched),
            },
        );
        assert_eq!(m.workers["w:1"].shed, 7);
        assert_eq!(m.workers["w:1"].throttled, 2);
        let text = m.render(120, None);
        assert!(text.contains("shed=7"), "{text}");
        assert!(text.contains("throttled=2"), "{text}");
        assert!(text.contains("overload: 7 shed responses, 2 throttled attempts"), "{text}");
    }

    #[test]
    fn render_survives_empty_model_and_tiny_width() {
        let m = ProgressModel::new();
        let text = m.render(0, None);
        assert!(text.contains("waiting for events"));
    }

    #[test]
    fn bar_and_sparkline_are_bounded() {
        assert_eq!(bar(0, 0, 10), format!("[{}]", ".".repeat(10)));
        assert_eq!(bar(5, 5, 10), format!("[{}]", "#".repeat(10)));
        assert!(bar(3, 10, 10).starts_with("[###"));
        assert_eq!(sparkline(&[], 8), "");
        let s = sparkline(&[5.0, 4.0, 3.0, 2.0, 1.0], 5);
        assert_eq!(s.chars().count(), 5);
        let up: Vec<char> = s.chars().collect();
        assert!(up.first() >= up.last(), "descending best must not rise: {s}");
        // Constant series stays flat rather than dividing by zero.
        let flat = sparkline(&[2.0; 9], 3);
        assert_eq!(flat.chars().count(), 3);
    }
}
