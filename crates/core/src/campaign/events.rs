//! The append-only campaign event log: the source of truth for what a
//! campaign did, in the order it did it.
//!
//! Every state transition of a running campaign — opening, each scenario
//! claim/start/finish, every batch asked and told, every published sample,
//! worker evictions and steals, the final close — is appended to an
//! [`EventLog`] *before* the transition is acted on. The log is therefore
//! sufficient to
//!
//! * **resume** an interrupted campaign (replaying finished scenarios
//!   bit-exactly and re-driving only unfinished ones),
//! * **watch** a live campaign (the portal serves the log tail over
//!   `GET /events` and SSE; `sdl-lab watch` renders it), and
//! * **audit** a finished one (every line is checksummed and ordered).
//!
//! ## Wire format
//!
//! One JSON object per line (JSONL). Each line carries its 1-based
//! sequence number and an FNV-1a-64 checksum of the event body:
//!
//! ```text
//! {"event":"scenario_started","index":3,"label":"genetic/b2/s7","attempt":0,
//!  "worker":"local-1","seq":17,"crc":"9f8a441bb1c00d3e"}
//! ```
//!
//! `crc` covers the serialized event *without* the `seq`/`crc` envelope
//! keys (maps are insertion-ordered, so the covered bytes are exactly the
//! prefix that was hashed at append time). The recovery scan accepts the
//! longest prefix of lines that are newline-terminated, contiguous in
//! `seq`, and checksum-clean; everything after the first torn or corrupt
//! line is discarded. Appends flush to the OS per event (a killed process
//! loses at most the line it was writing) and fsync in batches, forcing a
//! sync at scenario and campaign boundaries.

use crate::app::AppError;
use crate::campaign::report::ScenarioOutcome;
use crate::multi::MultiOt2Outcome;
use crate::termination::TerminationReason;
use sdl_conf::{from_json, to_json, Value, ValueExt};
use sdl_desim::SimDuration;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Fsync no less often than once per this many appends (scenario and
/// campaign boundary events always sync immediately).
const FSYNC_BATCH: u32 = 64;

/// Authoritative end-of-scenario telemetry, embedded in
/// [`CampaignEvent::ScenarioFinished`]. Carries exactly the accounting a
/// resume cannot reconstruct from the sample stream alone (robotic command
/// totals, the virtual-clock close, TWH/CCWH, the termination reason), so
/// a resumed campaign's fingerprint is bit-identical to the uninterrupted
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// Best score achieved.
    pub best_score: f64,
    /// Virtual-clock duration.
    pub duration: SimDuration,
    /// Samples measured.
    pub samples: u32,
    /// Plates consumed.
    pub plates: u32,
    /// Robotic commands completed.
    pub robotic_commands: u64,
    /// Degenerate-surrogate fallbacks.
    pub solver_fallbacks: u64,
    /// Single-loop extras (present iff the scenario ran single-loop).
    pub single: Option<SingleTelemetry>,
    /// Multi-OT2 extras (present iff the scenario ran multi-OT2).
    pub multi: Option<MultiTelemetry>,
}

/// Single-loop close telemetry that replay cannot reconstruct.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleTelemetry {
    /// Why the run stopped.
    pub termination: TerminationReason,
    /// Total workcell hours (Table 1).
    pub twh: SimDuration,
    /// Completed-command workcell hours numerator.
    pub ccwh: u64,
}

/// Multi-OT2 outcome fields beyond the shared summary.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTelemetry {
    /// Liquid handlers that shared the budget.
    pub n_ot2: usize,
    /// All commands issued (completed or not).
    pub total_commands: u64,
    /// Samples measured per handler.
    pub per_handler_samples: Vec<u32>,
    /// Virtual time per color mixed.
    pub time_per_color: SimDuration,
}

impl ScenarioSummary {
    /// Capture the summary of a finished scenario.
    pub fn of(outcome: &ScenarioOutcome) -> ScenarioSummary {
        let mut s = ScenarioSummary {
            best_score: outcome.best_score(),
            duration: outcome.duration(),
            samples: outcome.samples_measured(),
            plates: outcome.plates_used(),
            robotic_commands: outcome.robotic_commands(),
            solver_fallbacks: outcome.solver_fallbacks(),
            single: None,
            multi: None,
        };
        match outcome {
            ScenarioOutcome::Single(o) => {
                s.single = Some(SingleTelemetry {
                    termination: o.termination.clone(),
                    twh: o.metrics.twh,
                    ccwh: o.metrics.ccwh,
                });
            }
            ScenarioOutcome::MultiOt2(m) => {
                s.multi = Some(MultiTelemetry {
                    n_ot2: m.n_ot2,
                    total_commands: m.total_commands,
                    per_handler_samples: m.per_handler_samples.clone(),
                    time_per_color: m.time_per_color,
                });
            }
        }
        s
    }

    /// Rebuild a multi-OT2 outcome from the summary (multi scenarios have
    /// no per-sample state beyond it).
    pub fn to_multi_outcome(&self) -> Option<MultiOt2Outcome> {
        let m = self.multi.as_ref()?;
        Some(MultiOt2Outcome {
            n_ot2: m.n_ot2,
            samples_measured: self.samples,
            duration: self.duration,
            robotic_commands: self.robotic_commands,
            total_commands: m.total_commands,
            best_score: self.best_score,
            per_handler_samples: m.per_handler_samples.clone(),
            plates_used: self.plates,
            time_per_color: m.time_per_color,
            solver_fallbacks: self.solver_fallbacks,
        })
    }

    fn to_value(&self) -> Value {
        let mut v = Value::map();
        v.set("best_score", self.best_score);
        v.set("duration_us", self.duration.as_micros() as i64);
        v.set("samples", self.samples);
        v.set("plates", self.plates);
        v.set("robotic_commands", self.robotic_commands as i64);
        v.set("solver_fallbacks", self.solver_fallbacks as i64);
        if let Some(t) = &self.single {
            let mut single = Value::map();
            single.set("termination", termination_to_value(&t.termination));
            single.set("twh_us", t.twh.as_micros() as i64);
            single.set("ccwh", t.ccwh as i64);
            v.set("single", single);
        }
        if let Some(m) = &self.multi {
            let mut multi = Value::map();
            multi.set("n_ot2", m.n_ot2);
            multi.set("total_commands", m.total_commands as i64);
            multi.set("per_handler", m.per_handler_samples.clone());
            multi.set("time_per_color_us", m.time_per_color.as_micros() as i64);
            v.set("multi", multi);
        }
        v
    }

    fn from_value(v: &Value) -> Result<ScenarioSummary, String> {
        let single = match v.get("single") {
            None => None,
            Some(s) => Some(SingleTelemetry {
                termination: termination_from_value(
                    s.get("termination").ok_or("single.termination missing")?,
                )?,
                twh: SimDuration::from_micros(need_u64(s, "twh_us")?),
                ccwh: need_u64(s, "ccwh")?,
            }),
        };
        let multi = match v.get("multi") {
            None => None,
            Some(m) => Some(MultiTelemetry {
                n_ot2: need_u64(m, "n_ot2")? as usize,
                total_commands: need_u64(m, "total_commands")?,
                per_handler_samples: m
                    .get("per_handler")
                    .and_then(Value::as_seq)
                    .ok_or("multi.per_handler missing")?
                    .iter()
                    .map(|x| x.as_i64().map(|i| i as u32).ok_or("per_handler entry"))
                    .collect::<Result<Vec<u32>, _>>()?,
                time_per_color: SimDuration::from_micros(need_u64(m, "time_per_color_us")?),
            }),
        };
        Ok(ScenarioSummary {
            best_score: need_f64(v, "best_score")?,
            duration: SimDuration::from_micros(need_u64(v, "duration_us")?),
            samples: need_u64(v, "samples")? as u32,
            plates: need_u64(v, "plates")? as u32,
            robotic_commands: need_u64(v, "robotic_commands")?,
            solver_fallbacks: need_u64(v, "solver_fallbacks")?,
            single,
            multi,
        })
    }
}

fn termination_to_value(t: &TerminationReason) -> Value {
    let mut v = Value::map();
    match t {
        TerminationReason::BudgetExhausted => {
            v.set("kind", "budget");
        }
        TerminationReason::TargetMatched { score } => {
            v.set("kind", "matched");
            v.set("score", *score);
        }
        TerminationReason::OutOfPlates => {
            v.set("kind", "plates");
        }
    }
    v
}

fn termination_from_value(v: &Value) -> Result<TerminationReason, String> {
    match v.opt_str("kind") {
        Some("budget") => Ok(TerminationReason::BudgetExhausted),
        Some("matched") => Ok(TerminationReason::TargetMatched { score: need_f64(v, "score")? }),
        Some("plates") => Ok(TerminationReason::OutOfPlates),
        other => Err(format!("unknown termination kind {other:?}")),
    }
}

/// One campaign state transition. Field names match the JSONL keys.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// The campaign started; embeds every scenario spec so a log is a
    /// self-contained resume artifact.
    CampaignOpened {
        /// Campaign name.
        campaign: String,
        /// `"runner"` (thread pool) or `"scheduler"` (distributed).
        executor: String,
        /// Remote worker addresses (empty for the runner).
        workers: Vec<String>,
        /// `ScenarioSpec::to_value` for every scenario, input order.
        specs: Vec<Value>,
    },
    /// A worker claimed a scenario off the queue.
    ScenarioClaimed {
        /// Scenario input-order index.
        index: usize,
        /// Claiming worker's identity (URL or `local-N`).
        worker: String,
        /// `own` / `retry` / `stolen` / `local` / `fallback`.
        claim: String,
        /// Scenarios still queued after this claim.
        queue_depth: usize,
    },
    /// Scenario execution began.
    ScenarioStarted {
        /// Scenario input-order index.
        index: usize,
        /// Scenario label.
        label: String,
        /// 0 for the first execution; retries and resumes increment.
        attempt: u32,
        /// Executing worker's identity.
        worker: String,
    },
    /// The solver proposed a batch (appended before the lab acts on it).
    BatchAsked {
        /// Scenario input-order index.
        index: usize,
        /// Execution attempt.
        attempt: u32,
        /// 1-based iteration number.
        run: u32,
        /// Proposals in the batch.
        size: usize,
        /// Wall time the solver spent proposing, microseconds.
        propose_us: u64,
    },
    /// A batch's measurements came back (appended before grading).
    BatchTold {
        /// Scenario input-order index.
        index: usize,
        /// Execution attempt.
        attempt: u32,
        /// 1-based iteration number.
        run: u32,
        /// Measurements in the batch.
        size: usize,
        /// Virtual clock at measurement, microseconds.
        elapsed_us: u64,
        /// Virtual wall time the batch spent in the lab, microseconds.
        batch_wall_us: u64,
    },
    /// One graded sample, with everything replay verification needs.
    SamplePublished {
        /// Scenario input-order index.
        index: usize,
        /// Execution attempt.
        attempt: u32,
        /// 1-based iteration number.
        run: u32,
        /// Global 1-based sample number within the scenario.
        sample: u32,
        /// Well the sample was mixed in.
        well: String,
        /// Proposed dye ratios (bit-exact).
        ratios: Vec<f64>,
        /// Measured RGB.
        measured: [u8; 3],
        /// This sample's score.
        score: f64,
        /// Best score so far.
        best: f64,
        /// Virtual clock at measurement, microseconds.
        elapsed_us: u64,
        /// Virtual wall time of the enclosing batch, microseconds.
        batch_wall_us: u64,
    },
    /// A scenario completed; `summary` is authoritative for resume.
    ScenarioFinished {
        /// Scenario input-order index.
        index: usize,
        /// Scenario label.
        label: String,
        /// Execution attempt that completed.
        attempt: u32,
        /// Executing worker's identity.
        worker: String,
        /// Close telemetry.
        summary: ScenarioSummary,
    },
    /// A scenario failed for a non-transport reason.
    ScenarioFailed {
        /// Scenario input-order index.
        index: usize,
        /// Scenario label.
        label: String,
        /// Execution attempt that failed.
        attempt: u32,
        /// Executing worker's identity.
        worker: String,
        /// The error's display form (restored verbatim on resume).
        error: String,
    },
    /// A worker became unreachable; its in-flight scenario was requeued.
    WorkerEvicted {
        /// The evicted worker.
        worker: String,
        /// Index of the scenario returned to the queue.
        requeued: usize,
    },
    /// A previously evicted worker answered its health probe again.
    WorkerReadmitted {
        /// The readmitted worker.
        worker: String,
    },
    /// A scenario was stolen from a slower worker's queue.
    WorkerStolenFrom {
        /// The worker the scenario was dealt to.
        victim: String,
        /// The worker that took it.
        thief: String,
        /// The stolen scenario's index.
        index: usize,
    },
    /// A resume took over this log: `replayed` scenarios were restored
    /// from the log, `redriven` will re-execute below.
    CampaignResumed {
        /// Scenarios restored without re-execution.
        replayed: usize,
        /// Scenarios re-driven live.
        redriven: usize,
    },
    /// Terminal event: the campaign is over and the log is complete.
    CampaignClosed {
        /// Total scenarios.
        scenarios: usize,
        /// Scenarios that failed.
        failed: usize,
        /// Best score across successful scenarios.
        best_score: Option<f64>,
        /// Scheduler report (`SchedulerReport::to_value`) for distributed
        /// campaigns, including phase timings.
        scheduler: Option<Value>,
    },
}

impl CampaignEvent {
    /// The event's kind tag as written to the log.
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignEvent::CampaignOpened { .. } => "campaign_opened",
            CampaignEvent::ScenarioClaimed { .. } => "scenario_claimed",
            CampaignEvent::ScenarioStarted { .. } => "scenario_started",
            CampaignEvent::BatchAsked { .. } => "batch_asked",
            CampaignEvent::BatchTold { .. } => "batch_told",
            CampaignEvent::SamplePublished { .. } => "sample_published",
            CampaignEvent::ScenarioFinished { .. } => "scenario_finished",
            CampaignEvent::ScenarioFailed { .. } => "scenario_failed",
            CampaignEvent::WorkerEvicted { .. } => "worker_evicted",
            CampaignEvent::WorkerReadmitted { .. } => "worker_readmitted",
            CampaignEvent::WorkerStolenFrom { .. } => "worker_stolen_from",
            CampaignEvent::CampaignResumed { .. } => "campaign_resumed",
            CampaignEvent::CampaignClosed { .. } => "campaign_closed",
        }
    }

    /// True for events that force an immediate fsync: losing them would
    /// cost a resume more than re-running a batch.
    fn is_boundary(&self) -> bool {
        matches!(
            self,
            CampaignEvent::CampaignOpened { .. }
                | CampaignEvent::ScenarioFinished { .. }
                | CampaignEvent::ScenarioFailed { .. }
                | CampaignEvent::WorkerEvicted { .. }
                | CampaignEvent::CampaignResumed { .. }
                | CampaignEvent::CampaignClosed { .. }
        )
    }

    /// Encode as an `sdl-conf` value tree (the `event` key leads).
    pub fn to_value(&self) -> Value {
        let mut v = Value::map();
        v.set("event", self.kind());
        match self {
            CampaignEvent::CampaignOpened { campaign, executor, workers, specs } => {
                v.set("campaign", campaign.as_str());
                v.set("executor", executor.as_str());
                v.set("workers", workers.clone());
                v.set("specs", Value::Seq(specs.clone()));
            }
            CampaignEvent::ScenarioClaimed { index, worker, claim, queue_depth } => {
                v.set("index", *index);
                v.set("worker", worker.as_str());
                v.set("claim", claim.as_str());
                v.set("queue_depth", *queue_depth);
            }
            CampaignEvent::ScenarioStarted { index, label, attempt, worker } => {
                v.set("index", *index);
                v.set("label", label.as_str());
                v.set("attempt", *attempt);
                v.set("worker", worker.as_str());
            }
            CampaignEvent::BatchAsked { index, attempt, run, size, propose_us } => {
                v.set("index", *index);
                v.set("attempt", *attempt);
                v.set("run", *run);
                v.set("size", *size);
                v.set("propose_us", *propose_us as i64);
            }
            CampaignEvent::BatchTold { index, attempt, run, size, elapsed_us, batch_wall_us } => {
                v.set("index", *index);
                v.set("attempt", *attempt);
                v.set("run", *run);
                v.set("size", *size);
                v.set("elapsed_us", *elapsed_us as i64);
                v.set("batch_wall_us", *batch_wall_us as i64);
            }
            CampaignEvent::SamplePublished {
                index,
                attempt,
                run,
                sample,
                well,
                ratios,
                measured,
                score,
                best,
                elapsed_us,
                batch_wall_us,
            } => {
                v.set("index", *index);
                v.set("attempt", *attempt);
                v.set("run", *run);
                v.set("sample", *sample);
                v.set("well", well.as_str());
                v.set("ratios", ratios.clone());
                v.set("measured", measured.iter().map(|c| *c as i64).collect::<Vec<i64>>());
                v.set("score", *score);
                v.set("best", *best);
                v.set("elapsed_us", *elapsed_us as i64);
                v.set("batch_wall_us", *batch_wall_us as i64);
            }
            CampaignEvent::ScenarioFinished { index, label, attempt, worker, summary } => {
                v.set("index", *index);
                v.set("label", label.as_str());
                v.set("attempt", *attempt);
                v.set("worker", worker.as_str());
                v.set("summary", summary.to_value());
            }
            CampaignEvent::ScenarioFailed { index, label, attempt, worker, error } => {
                v.set("index", *index);
                v.set("label", label.as_str());
                v.set("attempt", *attempt);
                v.set("worker", worker.as_str());
                v.set("error", error.as_str());
            }
            CampaignEvent::WorkerEvicted { worker, requeued } => {
                v.set("worker", worker.as_str());
                v.set("requeued", *requeued);
            }
            CampaignEvent::WorkerReadmitted { worker } => {
                v.set("worker", worker.as_str());
            }
            CampaignEvent::WorkerStolenFrom { victim, thief, index } => {
                v.set("victim", victim.as_str());
                v.set("thief", thief.as_str());
                v.set("index", *index);
            }
            CampaignEvent::CampaignResumed { replayed, redriven } => {
                v.set("replayed", *replayed);
                v.set("redriven", *redriven);
            }
            CampaignEvent::CampaignClosed { scenarios, failed, best_score, scheduler } => {
                v.set("scenarios", *scenarios);
                v.set("failed", *failed);
                if let Some(b) = best_score {
                    v.set("best_score", *b);
                }
                if let Some(s) = scheduler {
                    v.set("scheduler", s.clone());
                }
            }
        }
        v
    }

    /// Decode from the `sdl-conf` form.
    pub fn from_value(v: &Value) -> Result<CampaignEvent, String> {
        let kind = v.opt_str("event").ok_or("missing event kind")?;
        Ok(match kind {
            "campaign_opened" => CampaignEvent::CampaignOpened {
                campaign: need_str(v, "campaign")?,
                executor: need_str(v, "executor")?,
                workers: v
                    .get("workers")
                    .and_then(Value::as_seq)
                    .ok_or("workers missing")?
                    .iter()
                    .map(|w| w.as_str().map(str::to_string).ok_or("workers entry"))
                    .collect::<Result<Vec<String>, _>>()?,
                specs: v.get("specs").and_then(Value::as_seq).ok_or("specs missing")?.to_vec(),
            },
            "scenario_claimed" => CampaignEvent::ScenarioClaimed {
                index: need_u64(v, "index")? as usize,
                worker: need_str(v, "worker")?,
                claim: need_str(v, "claim")?,
                queue_depth: need_u64(v, "queue_depth")? as usize,
            },
            "scenario_started" => CampaignEvent::ScenarioStarted {
                index: need_u64(v, "index")? as usize,
                label: need_str(v, "label")?,
                attempt: need_u64(v, "attempt")? as u32,
                worker: need_str(v, "worker")?,
            },
            "batch_asked" => CampaignEvent::BatchAsked {
                index: need_u64(v, "index")? as usize,
                attempt: need_u64(v, "attempt")? as u32,
                run: need_u64(v, "run")? as u32,
                size: need_u64(v, "size")? as usize,
                propose_us: need_u64(v, "propose_us")?,
            },
            "batch_told" => CampaignEvent::BatchTold {
                index: need_u64(v, "index")? as usize,
                attempt: need_u64(v, "attempt")? as u32,
                run: need_u64(v, "run")? as u32,
                size: need_u64(v, "size")? as usize,
                elapsed_us: need_u64(v, "elapsed_us")?,
                batch_wall_us: need_u64(v, "batch_wall_us")?,
            },
            "sample_published" => {
                let measured = v.get("measured").and_then(Value::as_seq).ok_or("measured")?;
                if measured.len() != 3 {
                    return Err("measured must have 3 channels".into());
                }
                CampaignEvent::SamplePublished {
                    index: need_u64(v, "index")? as usize,
                    attempt: need_u64(v, "attempt")? as u32,
                    run: need_u64(v, "run")? as u32,
                    sample: need_u64(v, "sample")? as u32,
                    well: need_str(v, "well")?,
                    ratios: v
                        .get("ratios")
                        .and_then(Value::as_seq)
                        .ok_or("ratios missing")?
                        .iter()
                        .map(|r| r.as_f64().ok_or("ratios entry"))
                        .collect::<Result<Vec<f64>, _>>()?,
                    measured: [
                        measured[0].as_i64().ok_or("measured entry")? as u8,
                        measured[1].as_i64().ok_or("measured entry")? as u8,
                        measured[2].as_i64().ok_or("measured entry")? as u8,
                    ],
                    score: need_f64(v, "score")?,
                    best: need_f64(v, "best")?,
                    elapsed_us: need_u64(v, "elapsed_us")?,
                    batch_wall_us: need_u64(v, "batch_wall_us")?,
                }
            }
            "scenario_finished" => CampaignEvent::ScenarioFinished {
                index: need_u64(v, "index")? as usize,
                label: need_str(v, "label")?,
                attempt: need_u64(v, "attempt")? as u32,
                worker: need_str(v, "worker")?,
                summary: ScenarioSummary::from_value(v.get("summary").ok_or("summary missing")?)?,
            },
            "scenario_failed" => CampaignEvent::ScenarioFailed {
                index: need_u64(v, "index")? as usize,
                label: need_str(v, "label")?,
                attempt: need_u64(v, "attempt")? as u32,
                worker: need_str(v, "worker")?,
                error: need_str(v, "error")?,
            },
            "worker_evicted" => CampaignEvent::WorkerEvicted {
                worker: need_str(v, "worker")?,
                requeued: need_u64(v, "requeued")? as usize,
            },
            "worker_readmitted" => {
                CampaignEvent::WorkerReadmitted { worker: need_str(v, "worker")? }
            }
            "worker_stolen_from" => CampaignEvent::WorkerStolenFrom {
                victim: need_str(v, "victim")?,
                thief: need_str(v, "thief")?,
                index: need_u64(v, "index")? as usize,
            },
            "campaign_resumed" => CampaignEvent::CampaignResumed {
                replayed: need_u64(v, "replayed")? as usize,
                redriven: need_u64(v, "redriven")? as usize,
            },
            "campaign_closed" => CampaignEvent::CampaignClosed {
                scenarios: need_u64(v, "scenarios")? as usize,
                failed: need_u64(v, "failed")? as usize,
                best_score: v.opt_f64("best_score"),
                scheduler: v.get("scheduler").cloned(),
            },
            other => return Err(format!("unknown event kind '{other}'")),
        })
    }
}

fn need_str(v: &Value, key: &str) -> Result<String, String> {
    v.opt_str(key).map(str::to_string).ok_or_else(|| format!("{key} missing"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.opt_i64(key)
        .filter(|i| *i >= 0)
        .map(|i| i as u64)
        .ok_or_else(|| format!("{key} missing or negative"))
}

fn need_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.opt_f64(key).ok_or_else(|| format!("{key} missing"))
}

/// One verified line of the log: sequence number plus decoded event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// 1-based position in the log.
    pub seq: u64,
    /// The decoded event.
    pub event: CampaignEvent,
}

impl EventRecord {
    /// Parse and verify one JSONL line (seq + checksum).
    pub fn from_line(line: &str) -> Result<EventRecord, String> {
        let v = from_json(line).map_err(|e| format!("bad json: {e}"))?;
        let seq = need_u64(&v, "seq")?;
        let crc = need_str(&v, "crc")?;
        let body = match &v {
            Value::Map(entries) => Value::Map(
                entries.iter().filter(|(k, _)| k != "seq" && k != "crc").cloned().collect(),
            ),
            _ => return Err("event line is not an object".into()),
        };
        let expect = format!("{:016x}", fnv1a64(to_json(&body).as_bytes()));
        if expect != crc {
            return Err(format!("checksum mismatch at seq {seq}"));
        }
        Ok(EventRecord { seq, event: CampaignEvent::from_value(&body)? })
    }
}

/// FNV-1a 64-bit, the log's line checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How a recovery scan ended.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Verified events accepted.
    pub events: usize,
    /// Bytes of the file covered by accepted lines (a resume truncates
    /// the file to this length before appending).
    pub valid_bytes: u64,
    /// Why the scan stopped early, if it did.
    pub torn: Option<String>,
}

struct LogState {
    /// Serialized lines (no trailing newline); `lines[i]` has seq `i + 1`.
    lines: Vec<String>,
    file: Option<BufWriter<File>>,
    unsynced: u32,
    closed: bool,
}

/// The durable, append-only campaign event log.
///
/// Thread-safe: campaign workers append concurrently; HTTP handlers and
/// the dashboard tail it with [`EventLog::wait_from`].
pub struct EventLog {
    state: Mutex<LogState>,
    grew: Condvar,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().unwrap();
        f.debug_struct("EventLog")
            .field("head", &(s.lines.len() as u64))
            .field("durable", &s.file.is_some())
            .field("closed", &s.closed)
            .finish()
    }
}

impl EventLog {
    /// An in-memory log (no file backing) — used by `serve --campaign`
    /// when no `--event-log` path is given, so `/events` always works.
    pub fn in_memory() -> EventLog {
        EventLog {
            state: Mutex::new(LogState {
                lines: Vec::new(),
                file: None,
                unsynced: 0,
                closed: false,
            }),
            grew: Condvar::new(),
        }
    }

    /// Create (or truncate) a durable log at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<EventLog, AppError> {
        let file = File::create(path.as_ref())
            .map_err(|e| AppError::Setup(format!("event log {}: {e}", path.as_ref().display())))?;
        Ok(EventLog {
            state: Mutex::new(LogState {
                lines: Vec::new(),
                file: Some(BufWriter::new(file)),
                unsynced: 0,
                closed: false,
            }),
            grew: Condvar::new(),
        })
    }

    /// Scan a log file, verifying newline termination, UTF-8 validity, seq
    /// contiguity and checksums; returns the accepted events and where the
    /// scan stopped. The scan is byte-based so corruption anywhere — even
    /// a bit flip that produces invalid UTF-8 — truncates to the clean
    /// prefix instead of failing the whole read.
    pub fn read(path: impl AsRef<Path>) -> Result<(Vec<EventRecord>, RecoveryReport), AppError> {
        let path = path.as_ref();
        let mut raw = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut raw))
            .map_err(|e| AppError::Setup(format!("event log {}: {e}", path.display())))?;
        let mut events = Vec::new();
        let mut report = RecoveryReport { events: 0, valid_bytes: 0, torn: None };
        let mut rest = raw.as_slice();
        while !rest.is_empty() {
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                report.torn = Some("unterminated final line".into());
                break;
            };
            let line = match std::str::from_utf8(&rest[..nl]) {
                Ok(line) => line,
                Err(_) => {
                    report.torn = Some("invalid UTF-8 line".into());
                    break;
                }
            };
            match EventRecord::from_line(line) {
                Ok(rec) if rec.seq == events.len() as u64 + 1 => {
                    events.push(rec);
                    report.valid_bytes += nl as u64 + 1;
                }
                Ok(rec) => {
                    report.torn =
                        Some(format!("seq {} where {} expected", rec.seq, events.len() + 1));
                    break;
                }
                Err(e) => {
                    report.torn = Some(e);
                    break;
                }
            }
            rest = &rest[nl + 1..];
        }
        report.events = events.len();
        Ok((events, report))
    }

    /// Recover a log for appending: scan, truncate any torn tail, and
    /// reopen positioned after the last verified line. Returns the log,
    /// the verified prefix, and the scan report.
    pub fn recover(
        path: impl AsRef<Path>,
    ) -> Result<(EventLog, Vec<EventRecord>, RecoveryReport), AppError> {
        let path = path.as_ref();
        let (events, report) = EventLog::read(path)?;
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| AppError::Setup(format!("event log {}: {e}", path.display())))?;
        file.set_len(report.valid_bytes)
            .and_then(|_| file.seek(SeekFrom::End(0)))
            .map_err(|e| AppError::Setup(format!("event log {}: {e}", path.display())))?;
        let closed =
            matches!(events.last().map(|r| &r.event), Some(CampaignEvent::CampaignClosed { .. }));
        let lines = events.iter().map(|r| to_line(&r.event, r.seq)).collect();
        let log = EventLog {
            state: Mutex::new(LogState {
                lines,
                file: Some(BufWriter::new(file)),
                unsynced: 0,
                closed,
            }),
            grew: Condvar::new(),
        };
        Ok((log, events, report))
    }

    /// Append one event; returns its sequence number. The line reaches the
    /// OS before this returns; fsync happens at least every
    /// `FSYNC_BATCH` (64) appends and immediately at boundary events.
    pub fn append(&self, event: &CampaignEvent) -> u64 {
        let mut s = self.state.lock().unwrap();
        let seq = s.lines.len() as u64 + 1;
        let line = to_line(event, seq);
        if let Some(w) = s.file.as_mut() {
            // Ignore write errors past creation: observability must never
            // sink the campaign itself.
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
            s.unsynced += 1;
            if event.is_boundary() || s.unsynced >= FSYNC_BATCH {
                if let Some(w) = s.file.as_mut() {
                    let _ = w.get_ref().sync_all();
                }
                s.unsynced = 0;
            }
        }
        s.lines.push(line);
        if matches!(event, CampaignEvent::CampaignClosed { .. }) {
            s.closed = true;
        }
        drop(s);
        self.grew.notify_all();
        seq
    }

    /// Force an fsync now.
    pub fn sync(&self) {
        let mut s = self.state.lock().unwrap();
        if let Some(w) = s.file.as_mut() {
            let _ = w.flush();
            let _ = w.get_ref().sync_all();
        }
        s.unsynced = 0;
    }

    /// The highest sequence number appended so far.
    pub fn head(&self) -> u64 {
        self.state.lock().unwrap().lines.len() as u64
    }

    /// True once the terminal `campaign_closed` event was appended.
    pub fn closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Lines with `seq >= from` (at most `limit`), plus the current head
    /// and closed flag.
    pub fn lines_from(&self, from: u64, limit: usize) -> (Vec<(u64, String)>, u64, bool) {
        let s = self.state.lock().unwrap();
        let head = s.lines.len() as u64;
        let start = from.max(1) - 1;
        let out = s
            .lines
            .iter()
            .enumerate()
            .skip(start as usize)
            .take(limit)
            .map(|(i, l)| (i as u64 + 1, l.clone()))
            .collect();
        (out, head, s.closed)
    }

    /// Like [`EventLog::lines_from`], but blocks up to `timeout` for the
    /// log to grow past `from - 1` (long-poll primitive).
    pub fn wait_from(
        &self,
        from: u64,
        limit: usize,
        timeout: Duration,
    ) -> (Vec<(u64, String)>, u64, bool) {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.state.lock().unwrap();
        loop {
            if s.lines.len() as u64 >= from.max(1) || s.closed {
                break;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timed_out) = self.grew.wait_timeout(s, deadline - now).unwrap();
            s = next;
            if timed_out.timed_out() {
                break;
            }
        }
        let head = s.lines.len() as u64;
        let start = (from.max(1) - 1) as usize;
        let out = s
            .lines
            .iter()
            .enumerate()
            .skip(start)
            .take(limit)
            .map(|(i, l)| (i as u64 + 1, l.clone()))
            .collect();
        (out, head, s.closed)
    }
}

/// Serialize an event with its envelope (no trailing newline).
fn to_line(event: &CampaignEvent, seq: u64) -> String {
    let mut v = event.to_value();
    let crc = fnv1a64(to_json(&v).as_bytes());
    v.set("seq", seq as i64);
    v.set("crc", format!("{crc:016x}"));
    to_json(&v)
}

/// A per-scenario handle workers hand to [`Experiment`](crate::Experiment)
/// so ask/tell emit into the campaign log with the right coordinates.
#[derive(Debug, Clone)]
pub struct EventScope {
    log: Arc<EventLog>,
    /// Scenario input-order index.
    pub index: usize,
    /// Execution attempt (0 first; retries and resumes increment).
    pub attempt: u32,
}

impl EventScope {
    /// Bind a log to one scenario execution.
    pub fn new(log: Arc<EventLog>, index: usize, attempt: u32) -> EventScope {
        EventScope { log, index, attempt }
    }

    /// Append one event.
    pub fn emit(&self, event: &CampaignEvent) -> u64 {
        self.log.append(event)
    }

    /// The underlying log.
    pub fn log(&self) -> &Arc<EventLog> {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<CampaignEvent> {
        vec![
            CampaignEvent::CampaignOpened {
                campaign: "t".into(),
                executor: "runner".into(),
                workers: vec![],
                specs: vec![],
            },
            CampaignEvent::ScenarioClaimed {
                index: 0,
                worker: "local-0".into(),
                claim: "own".into(),
                queue_depth: 1,
            },
            CampaignEvent::ScenarioStarted {
                index: 0,
                label: "a".into(),
                attempt: 0,
                worker: "local-0".into(),
            },
            CampaignEvent::BatchAsked { index: 0, attempt: 0, run: 1, size: 2, propose_us: 41 },
            CampaignEvent::SamplePublished {
                index: 0,
                attempt: 0,
                run: 1,
                sample: 1,
                well: "A1".into(),
                ratios: vec![0.25, 0.5, 0.125, 0.125],
                measured: [10, 200, 31],
                score: 12.75,
                best: 12.75,
                elapsed_us: 90_000_000,
                batch_wall_us: 45_000_000,
            },
            CampaignEvent::BatchTold {
                index: 0,
                attempt: 0,
                run: 1,
                size: 2,
                elapsed_us: 90_000_000,
                batch_wall_us: 45_000_000,
            },
            CampaignEvent::ScenarioFinished {
                index: 0,
                label: "a".into(),
                attempt: 0,
                worker: "local-0".into(),
                summary: ScenarioSummary {
                    best_score: 3.5,
                    duration: SimDuration::from_micros(123_456_789),
                    samples: 8,
                    plates: 1,
                    robotic_commands: 99,
                    solver_fallbacks: 0,
                    single: Some(SingleTelemetry {
                        termination: TerminationReason::TargetMatched { score: 3.5 },
                        twh: SimDuration::from_micros(1_000_001),
                        ccwh: 42,
                    }),
                    multi: None,
                },
            },
            CampaignEvent::ScenarioFailed {
                index: 1,
                label: "b".into(),
                attempt: 2,
                worker: "local-1".into(),
                error: "backend error: boom".into(),
            },
            CampaignEvent::WorkerEvicted { worker: "w:1".into(), requeued: 3 },
            CampaignEvent::WorkerReadmitted { worker: "w:1".into() },
            CampaignEvent::WorkerStolenFrom { victim: "w:1".into(), thief: "w:2".into(), index: 4 },
            CampaignEvent::CampaignResumed { replayed: 2, redriven: 3 },
            CampaignEvent::CampaignClosed {
                scenarios: 5,
                failed: 1,
                best_score: Some(3.5),
                scheduler: None,
            },
        ]
    }

    #[test]
    fn every_event_roundtrips_through_value_and_line() {
        for (i, e) in sample_events().iter().enumerate() {
            let back = CampaignEvent::from_value(&e.to_value())
                .unwrap_or_else(|err| panic!("event {i}: {err}"));
            assert_eq!(&back, e, "event {i}");
            let rec = EventRecord::from_line(&to_line(e, 7)).unwrap();
            assert_eq!(rec.seq, 7);
            assert_eq!(&rec.event, e);
        }
    }

    #[test]
    fn multi_summary_roundtrips_to_outcome() {
        let summary = ScenarioSummary {
            best_score: 9.25,
            duration: SimDuration::from_micros(777),
            samples: 12,
            plates: 2,
            robotic_commands: 30,
            solver_fallbacks: 1,
            single: None,
            multi: Some(MultiTelemetry {
                n_ot2: 3,
                total_commands: 40,
                per_handler_samples: vec![4, 4, 4],
                time_per_color: SimDuration::from_micros(64),
            }),
        };
        let back = ScenarioSummary::from_value(&summary.to_value()).unwrap();
        assert_eq!(back, summary);
        let out = back.to_multi_outcome().unwrap();
        assert_eq!(out.n_ot2, 3);
        assert_eq!(out.best_score, 9.25);
        assert_eq!(out.per_handler_samples, vec![4, 4, 4]);
    }

    #[test]
    fn score_bits_survive_the_line_format() {
        // Scores travel as JSON floats; the fingerprint compares IEEE bit
        // patterns, so the round trip must be bit-exact even for awkward
        // values.
        for raw in [0.1f64 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 255.0000000001] {
            let e = CampaignEvent::SamplePublished {
                index: 0,
                attempt: 0,
                run: 1,
                sample: 1,
                well: "A1".into(),
                ratios: vec![raw],
                measured: [0, 0, 0],
                score: raw,
                best: raw,
                elapsed_us: 1,
                batch_wall_us: 1,
            };
            match EventRecord::from_line(&to_line(&e, 1)).unwrap().event {
                CampaignEvent::SamplePublished { score, best, ratios, .. } => {
                    assert_eq!(score.to_bits(), raw.to_bits());
                    assert_eq!(best.to_bits(), raw.to_bits());
                    assert_eq!(ratios[0].to_bits(), raw.to_bits());
                }
                other => panic!("wrong event {other:?}"),
            }
        }
    }

    #[test]
    fn log_appends_and_tails() {
        let log = EventLog::in_memory();
        for e in sample_events() {
            log.append(&e);
        }
        assert_eq!(log.head(), sample_events().len() as u64);
        assert!(log.closed());
        let (lines, head, closed) = log.lines_from(1, 1000);
        assert_eq!(head, log.head());
        assert!(closed);
        assert_eq!(lines.len(), sample_events().len());
        assert_eq!(lines[0].0, 1);
        // Pagination.
        let (page, _, _) = log.lines_from(3, 2);
        assert_eq!(page.iter().map(|(s, _)| *s).collect::<Vec<u64>>(), vec![3, 4]);
        // Past the head: empty, immediate (log is closed).
        let (tail, _, _) = log.wait_from(head + 1, 10, Duration::from_millis(1));
        assert!(tail.is_empty());
    }

    #[test]
    fn wait_from_wakes_on_append() {
        let log = Arc::new(EventLog::in_memory());
        let tailer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_from(1, 10, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(20));
        log.append(&CampaignEvent::WorkerReadmitted { worker: "w".into() });
        let (lines, head, _) = tailer.join().unwrap();
        assert_eq!(head, 1);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn durable_log_recovers_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("sdl-evlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        {
            let log = EventLog::create(&path).unwrap();
            for e in sample_events() {
                log.append(&e);
            }
            log.sync();
        }
        let (events, report) = EventLog::read(&path).unwrap();
        assert_eq!(events.len(), sample_events().len());
        assert!(report.torn.is_none());
        assert_eq!(events.last().unwrap().event, sample_events().last().cloned().unwrap());

        // Flip one byte inside the middle of the file: the scan stops there.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        let corrupt = dir.join("corrupt.jsonl");
        std::fs::write(&corrupt, &bytes).unwrap();
        let (prefix, report) = EventLog::read(&corrupt).unwrap();
        assert!(prefix.len() < sample_events().len());
        assert!(report.torn.is_some(), "corruption went unnoticed");

        // Cut the file mid-line: the torn tail is dropped and recovery
        // resumes appending with a contiguous seq.
        let cut = bytes.len() - 7;
        std::fs::write(&corrupt, &bytes[..cut.min(mid - 1)]).unwrap();
        let (log, prefix, _) = EventLog::recover(&corrupt).unwrap();
        let next = log.append(&CampaignEvent::WorkerReadmitted { worker: "w".into() });
        assert_eq!(next, prefix.len() as u64 + 1);
        log.sync();
        let (events, report) = EventLog::read(&corrupt).unwrap();
        assert!(report.torn.is_none(), "recovered log must verify clean: {report:?}");
        assert_eq!(events.len(), prefix.len() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_closed_log_reports_closed() {
        let dir = std::env::temp_dir().join(format!("sdl-evclosed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        {
            let log = EventLog::create(&path).unwrap();
            for e in sample_events() {
                log.append(&e);
            }
        }
        let (log, _, _) = EventLog::recover(&path).unwrap();
        assert!(log.closed());
        std::fs::remove_dir_all(&dir).ok();
    }
}
