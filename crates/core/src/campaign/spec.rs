//! Scenario specifications and the declarative campaign matrix.

use crate::backend::BackendSpec;
use crate::config::{AppConfig, ConfigError};
use sdl_color::{MixKind, Objective, Rgb8};
use sdl_conf::{from_yaml, Value, ValueExt};
use sdl_desim::{FaultPlan, FaultRates, RngHub};
use sdl_solvers::SolverKind;
use sdl_vision::{DriftSpec, Fidelity};

/// How a scenario exercises the workcell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// The single closed-loop application (paper Figure 2).
    Single,
    /// The §4 future-work configuration: `n` OT-2s sharing one budget.
    MultiOt2(usize),
}

impl RunMode {
    /// Decode from the `n_ot2` config field. A *present* key always selects
    /// the multi-OT2 flow engine (even for one handler, which is a valid
    /// configuration of that engine); the single-loop app is encoded by the
    /// key's absence, so every mode round-trips.
    fn from_i64(n: i64) -> Result<RunMode, ConfigError> {
        if n >= 1 {
            Ok(RunMode::MultiOt2(n as usize))
        } else {
            Err(ConfigError(format!("n_ot2 must be >= 1, got {n}")))
        }
    }
}

/// One fully specified experiment inside a campaign: target color × solver
/// × seed × batch × sample budget × workcell configuration × fault profile.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Label used in reports and portal records.
    pub label: String,
    /// The full application configuration (workcell, faults, dyes included).
    pub config: AppConfig,
    /// Execution mode.
    pub mode: RunMode,
    /// Which lab executor runs the scenario (`sim`, `remote:<url>`,
    /// `replay:<path>`).
    pub backend: BackendSpec,
}

impl ScenarioSpec {
    /// A single-loop scenario.
    pub fn new(label: impl Into<String>, config: AppConfig) -> ScenarioSpec {
        ScenarioSpec {
            label: label.into(),
            config,
            mode: RunMode::Single,
            backend: BackendSpec::Sim,
        }
    }

    /// A multi-OT2 scenario with `n` liquid handlers.
    pub fn multi_ot2(label: impl Into<String>, config: AppConfig, n: usize) -> ScenarioSpec {
        assert!(n >= 1, "multi_ot2 needs at least one handler");
        ScenarioSpec {
            label: label.into(),
            config,
            mode: RunMode::MultiOt2(n),
            backend: BackendSpec::Sim,
        }
    }

    /// Builder: replace the execution mode.
    pub fn with_mode(mut self, mode: RunMode) -> ScenarioSpec {
        self.mode = mode;
        self
    }

    /// Builder: replace the lab executor.
    pub fn with_backend(mut self, backend: BackendSpec) -> ScenarioSpec {
        self.backend = backend;
        self
    }

    /// Encode as an `sdl-conf` value tree (the inverse of
    /// [`Self::from_value`]): `n_ot2` is present exactly when the scenario
    /// uses the multi-OT2 engine, so `MultiOt2(1)` and `Single` stay
    /// distinct through the round trip.
    pub fn to_value(&self) -> Value {
        let mut v = self.config.to_value();
        v.set("label", self.label.as_str());
        if let RunMode::MultiOt2(n) = self.mode {
            v.set("n_ot2", n as i64);
        }
        if self.backend != BackendSpec::Sim {
            v.set("backend", self.backend.to_string().as_str());
        }
        v
    }

    /// Decode a scenario from its `sdl-conf` form.
    pub fn from_value(v: &Value) -> Result<ScenarioSpec, ConfigError> {
        let config = AppConfig::from_value(v)?;
        let mode = match v.opt_i64("n_ot2") {
            Some(n) => RunMode::from_i64(n)?,
            None => RunMode::Single,
        };
        let backend = match v.opt_str("backend") {
            Some(s) => BackendSpec::parse(s)?,
            None => BackendSpec::Sim,
        };
        let label =
            v.opt_str("label").map(str::to_string).unwrap_or_else(|| config.experiment_id());
        Ok(ScenarioSpec { label, config, mode, backend })
    }

    /// Parse one scenario from a YAML document.
    pub fn from_yaml(src: &str) -> Result<ScenarioSpec, ConfigError> {
        let doc = from_yaml(src).map_err(|e| ConfigError(e.to_string()))?;
        ScenarioSpec::from_value(&doc)
    }
}

/// A declarative scenario matrix: every combination of the listed axes
/// becomes one [`ScenarioSpec`]. Axes left unspecified use the base
/// configuration's value, so a config that lists nothing describes exactly
/// one scenario.
///
/// ```yaml
/// name: solver-study
/// samples: 64
/// seed: 42            # master seed
/// solvers: [genetic, bayesian]
/// seeds: 8            # 8 per-scenario seeds derived from the master seed
/// batches: [1, 4]
/// targets: [[120, 120, 120], [200, 200, 200]]
/// objectives: [rgb, ciede2000]
/// drifts: [none, wb+gain]
/// fault_rates: [0.0, 0.05]
/// threads: 8
/// ```
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign name (used in labels and the portal campaign record).
    pub name: String,
    /// Base configuration each scenario starts from.
    pub base: AppConfig,
    /// Solver axis.
    pub solvers: Vec<SolverKind>,
    /// Seed axis (explicit values, or derived from the master seed).
    pub seeds: Vec<u64>,
    /// Batch-size axis.
    pub batches: Vec<u32>,
    /// Target-color axis.
    pub targets: Vec<Rgb8>,
    /// Mixing-model axis.
    pub mix_models: Vec<MixKind>,
    /// Camera-fidelity axis (`full` / `fast` / `lowres`), the
    /// resolution/render-path sweep.
    pub fidelities: Vec<Fidelity>,
    /// Objective axis (the perceptual-loss sweep: `rgb`, `cie76`, `cie94`,
    /// `ciede2000`, `cam16ucs`).
    pub objectives: Vec<Objective>,
    /// Illumination-drift axis; a `none` entry means a stable illuminant.
    pub drifts: Vec<Option<DriftSpec>>,
    /// Uniform command-fault-rate axis (reception rate; action = half).
    pub fault_rates: Vec<f64>,
    /// OT-2-count axis (1 = the single-loop app).
    pub n_ot2: Vec<usize>,
    /// Lab executor every scenario runs on (`sim`, `remote:<url>`,
    /// `replay:<path>`).
    pub backend: BackendSpec,
    /// Worker threads (None = one per core).
    pub threads: Option<usize>,
    /// Remote worker pool (`host:port` addresses). Non-empty selects the
    /// distributed [`CampaignScheduler`](crate::CampaignScheduler) instead
    /// of the thread-pool runner.
    pub workers: Vec<String>,
    /// Scheduler shard size (scenarios per deal unit; None = automatic).
    pub shard: Option<usize>,
}

impl CampaignConfig {
    /// A single-axis campaign around `base` (everything fixed).
    pub fn single(name: impl Into<String>, base: AppConfig) -> CampaignConfig {
        CampaignConfig {
            name: name.into(),
            base,
            solvers: Vec::new(),
            seeds: Vec::new(),
            batches: Vec::new(),
            targets: Vec::new(),
            mix_models: Vec::new(),
            fidelities: Vec::new(),
            objectives: Vec::new(),
            drifts: Vec::new(),
            fault_rates: Vec::new(),
            n_ot2: Vec::new(),
            backend: BackendSpec::Sim,
            threads: None,
            workers: Vec::new(),
            shard: None,
        }
    }

    /// Parse a campaign document.
    pub fn from_yaml(src: &str) -> Result<CampaignConfig, ConfigError> {
        let doc = from_yaml(src).map_err(|e| ConfigError(e.to_string()))?;
        CampaignConfig::from_value(&doc)
    }

    /// Decode from an `sdl-conf` value tree.
    pub fn from_value(doc: &Value) -> Result<CampaignConfig, ConfigError> {
        let base = AppConfig::from_value(doc)?;
        let mut cfg =
            CampaignConfig::single(doc.opt_str("name").unwrap_or("campaign").to_string(), base);

        // Axis keys must be sequences when present; a scalar is a user
        // mistake that must not silently drop the whole axis.
        let axis = |key: &'static str| -> Result<Option<&[Value]>, ConfigError> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => Ok(Some(v.as_seq().ok_or_else(|| {
                    ConfigError(format!("{key} must be a list, got {}", v.type_name()))
                })?)),
            }
        };

        if let Some(seq) = axis("solvers")? {
            for s in seq {
                let name = s
                    .as_str()
                    .ok_or_else(|| ConfigError("solvers entries must be names".into()))?;
                cfg.solvers.push(SolverKind::parse(name).ok_or_else(|| {
                    ConfigError(format!(
                        "unknown solver '{name}' (valid: {})",
                        SolverKind::valid_names()
                    ))
                })?);
            }
        }
        match doc.get("seeds") {
            Some(Value::Int(count)) => {
                // A bare count derives per-scenario seed streams from the
                // master seed, so the whole campaign remains a pure function
                // of the document.
                if *count <= 0 {
                    return Err(ConfigError("seeds count must be positive".into()));
                }
                let hub = RngHub::new(cfg.base.seed);
                cfg.seeds = (0..*count as u64)
                    .map(|i| hub.child("campaign.seed", i).master_seed())
                    .collect();
            }
            Some(Value::Seq(seq)) => {
                for s in seq {
                    let v = s.as_i64().filter(|v| *v >= 0).ok_or_else(|| {
                        ConfigError("seeds entries must be non-negative integers".into())
                    })?;
                    cfg.seeds.push(v as u64);
                }
            }
            Some(other) => {
                return Err(ConfigError(format!(
                    "seeds must be a count or a list, got {}",
                    other.type_name()
                )))
            }
            None => {}
        }
        if let Some(seq) = axis("batches")? {
            for b in seq {
                let v = b.as_i64().filter(|v| *v > 0).ok_or_else(|| {
                    ConfigError("batches entries must be positive integers".into())
                })?;
                cfg.batches.push(v as u32);
            }
        }
        if let Some(seq) = axis("targets")? {
            for t in seq {
                cfg.targets.push(crate::config::parse_rgb_triple(t, "targets entry")?);
            }
        }
        if let Some(seq) = axis("mix_models")? {
            for m in seq {
                let name = m
                    .as_str()
                    .ok_or_else(|| ConfigError("mix_models entries must be names".into()))?;
                cfg.mix_models.push(
                    MixKind::parse(name)
                        .ok_or_else(|| ConfigError(format!("unknown mix model '{name}'")))?,
                );
            }
        }
        if let Some(seq) = axis("fidelities")? {
            for f in seq {
                let name = f
                    .as_str()
                    .ok_or_else(|| ConfigError("fidelities entries must be names".into()))?;
                cfg.fidelities.push(Fidelity::parse(name).ok_or_else(|| {
                    ConfigError(format!(
                        "unknown fidelity '{name}' (valid: {})",
                        Fidelity::valid_names()
                    ))
                })?);
            }
        }
        if let Some(seq) = axis("objectives")? {
            for o in seq {
                let name = o
                    .as_str()
                    .ok_or_else(|| ConfigError("objectives entries must be names".into()))?;
                cfg.objectives.push(Objective::parse(name).ok_or_else(|| {
                    ConfigError(format!(
                        "unknown objective '{name}' (valid: {})",
                        Objective::valid_names()
                    ))
                })?);
            }
        }
        if let Some(seq) = axis("drifts")? {
            for d in seq {
                let name =
                    d.as_str().ok_or_else(|| ConfigError("drifts entries must be names".into()))?;
                if name == "none" {
                    cfg.drifts.push(None);
                } else {
                    cfg.drifts.push(Some(DriftSpec::parse(name).ok_or_else(|| {
                        ConfigError(format!(
                            "unknown drift '{name}' (valid: none, {})",
                            DriftSpec::valid_names()
                        ))
                    })?));
                }
            }
        }
        if let Some(seq) = axis("fault_rates")? {
            for r in seq {
                let v = r
                    .as_f64()
                    .filter(|v| (0.0..=1.0).contains(v))
                    .ok_or_else(|| ConfigError("fault_rates entries must be in [0, 1]".into()))?;
                cfg.fault_rates.push(v);
            }
        }
        if let Some(seq) = axis("n_ot2")? {
            for n in seq {
                let v = n
                    .as_i64()
                    .filter(|v| *v >= 1)
                    .ok_or_else(|| ConfigError("n_ot2 entries must be >= 1".into()))?;
                cfg.n_ot2.push(v as usize);
            }
        }
        if let Some(b) = doc.opt_str("backend") {
            cfg.backend = BackendSpec::parse(b)?;
        }
        if let Some(t) = doc.opt_i64("threads") {
            if t < 1 {
                return Err(ConfigError("threads must be positive".into()));
            }
            cfg.threads = Some(t as usize);
        }
        if let Some(seq) = axis("workers")? {
            for w in seq {
                let addr = w
                    .as_str()
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .ok_or_else(|| ConfigError("workers entries must be addresses".into()))?;
                cfg.workers.push(addr.to_string());
            }
        }
        if let Some(s) = doc.opt_i64("shard") {
            if s < 1 {
                return Err(ConfigError("shard must be positive".into()));
            }
            cfg.shard = Some(s as usize);
        }
        Ok(cfg)
    }

    /// Expand the matrix into concrete scenarios (row-major over the axes in
    /// declaration order: solver, batch, target, mix model, fidelity,
    /// objective, drift, fault rate, OT-2 count, seed).
    pub fn scenarios(&self) -> Vec<ScenarioSpec> {
        // An unspecified axis contributes exactly the base value.
        let solvers =
            if self.solvers.is_empty() { vec![self.base.solver] } else { self.solvers.clone() };
        let batches =
            if self.batches.is_empty() { vec![self.base.batch] } else { self.batches.clone() };
        let targets =
            if self.targets.is_empty() { vec![self.base.target] } else { self.targets.clone() };
        let mixes =
            if self.mix_models.is_empty() { vec![self.base.mix] } else { self.mix_models.clone() };
        let fidelities = if self.fidelities.is_empty() {
            vec![self.base.fidelity]
        } else {
            self.fidelities.clone()
        };
        let objectives = if self.objectives.is_empty() {
            vec![self.base.objective]
        } else {
            self.objectives.clone()
        };
        let drifts: Vec<Option<DriftSpec>> =
            if self.drifts.is_empty() { vec![self.base.drift] } else { self.drifts.clone() };
        let faults: Vec<Option<f64>> = if self.fault_rates.is_empty() {
            vec![None]
        } else {
            self.fault_rates.iter().copied().map(Some).collect()
        };
        let handlers = if self.n_ot2.is_empty() { vec![1usize] } else { self.n_ot2.clone() };
        let seeds = if self.seeds.is_empty() { vec![self.base.seed] } else { self.seeds.clone() };

        // The full cross product is a 10-deep loop; iterate the flattened
        // index space instead and decode row-major (seed fastest), matching
        // the declaration order above.
        let dims = [
            solvers.len(),
            batches.len(),
            targets.len(),
            mixes.len(),
            fidelities.len(),
            objectives.len(),
            drifts.len(),
            faults.len(),
            handlers.len(),
            seeds.len(),
        ];
        let total: usize = dims.iter().product();
        let mut out = Vec::with_capacity(total);
        for flat in 0..total {
            let mut idx = [0usize; 10];
            let mut rest = flat;
            for (slot, &dim) in idx.iter_mut().zip(&dims).rev() {
                *slot = rest % dim;
                rest /= dim;
            }
            let [si, bi, ti, mi, fi, oi, di, fri, ni, sdi] = idx;
            let (solver, batch, target) = (solvers[si], batches[bi], targets[ti]);
            let (mix, fidelity) = (mixes[mi], fidelities[fi]);
            let (objective, drift) = (objectives[oi], drifts[di]);
            let (fault, n, seed) = (faults[fri], handlers[ni], seeds[sdi]);

            let mut config = self.base.clone();
            config.solver = solver;
            config.batch = batch;
            config.target = target;
            config.mix = mix;
            config.fidelity = fidelity;
            config.objective = objective;
            config.drift = drift;
            config.seed = seed;
            if let Some(rate) = fault {
                config.faults = FaultPlan::uniform(FaultRates::new(rate, rate / 2.0));
            }
            let mut label = format!("{}/b{}", solver.name(), batch);
            if targets.len() > 1 {
                label.push_str(&format!("/t{target}"));
            }
            if mixes.len() > 1 {
                label.push_str(&format!("/{}", mix.name()));
            }
            if fidelities.len() > 1 {
                label.push_str(&format!("/{fidelity}"));
            }
            if objectives.len() > 1 {
                label.push_str(&format!("/{}", objective.name()));
            }
            if drifts.len() > 1 {
                match drift {
                    Some(d) => label.push_str(&format!("/drift-{}", d.name())),
                    None => label.push_str("/no-drift"),
                }
            }
            if let Some(rate) = fault {
                label.push_str(&format!("/f{rate}"));
            }
            if handlers.len() > 1 || n > 1 {
                label.push_str(&format!("/ot2x{n}"));
            }
            label.push_str(&format!("/s{seed}"));
            let mode = if n == 1 { RunMode::Single } else { RunMode::MultiOt2(n) };
            out.push(ScenarioSpec { label, config, mode, backend: self.backend.clone() });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_roundtrips_through_conf() {
        let mut config = AppConfig { sample_budget: 32, batch: 8, seed: 9, ..AppConfig::default() };
        config.solver = SolverKind::Bayesian;
        config.faults = FaultPlan::uniform(FaultRates::new(0.1, 0.05));
        let spec = ScenarioSpec::multi_ot2("dual", config, 2);
        let back = ScenarioSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back.label, "dual");
        assert_eq!(back.mode, RunMode::MultiOt2(2));
        assert_eq!(back.config.sample_budget, 32);
        assert_eq!(back.config.solver, SolverKind::Bayesian);
        assert_eq!(back.config.faults.rates_for("ot2"), FaultRates::new(0.1, 0.05));
    }

    #[test]
    fn backend_axis_roundtrips_through_conf() {
        let spec = ScenarioSpec::new("rem", AppConfig::default())
            .with_backend(BackendSpec::Remote("127.0.0.1:9".into()));
        let back = ScenarioSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back.backend, BackendSpec::Remote("127.0.0.1:9".into()));
        // The default backend stays implicit in the encoded form.
        let plain = ScenarioSpec::new("sim", AppConfig::default());
        assert!(plain.to_value().opt_str("backend").is_none());
        assert_eq!(ScenarioSpec::from_value(&plain.to_value()).unwrap().backend, BackendSpec::Sim);
    }

    #[test]
    fn campaign_backend_field_applies_to_every_scenario() {
        let cfg = CampaignConfig::from_yaml(
            "samples: 8\nbackend: 'remote:127.0.0.1:9'\nbatches: [1, 2]\n",
        )
        .unwrap();
        let scenarios = cfg.scenarios();
        assert_eq!(scenarios.len(), 2);
        assert!(scenarios.iter().all(|s| s.backend == BackendSpec::Remote("127.0.0.1:9".into())));
        assert!(CampaignConfig::from_yaml("backend: quantum\n").is_err());
    }

    #[test]
    fn single_handler_multi_mode_roundtrips() {
        // MultiOt2(1) is a real configuration of the flow engine (not the
        // single-loop app) and must survive the conf round trip.
        let spec = ScenarioSpec::multi_ot2("solo", AppConfig::default(), 1);
        let back = ScenarioSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back.mode, RunMode::MultiOt2(1));
    }

    #[test]
    fn scalar_axis_values_are_rejected() {
        for doc in [
            "n_ot2: 2\n",
            "batches: 4\n",
            "solvers: genetic\n",
            "fault_rates: 0.1\n",
            "targets: 3\n",
        ] {
            assert!(CampaignConfig::from_yaml(doc).is_err(), "accepted scalar axis: {doc}");
        }
    }

    #[test]
    fn fidelity_axis_expands_and_roundtrips() {
        let cfg = CampaignConfig::from_yaml(
            "name: fid\nsamples: 8\nfidelities: [full, fast, lowres]\nseeds: [1, 2]\n",
        )
        .unwrap();
        assert_eq!(cfg.fidelities, vec![Fidelity::Full, Fidelity::Fast, Fidelity::Lowres]);
        let scenarios = cfg.scenarios();
        assert_eq!(scenarios.len(), 6);
        for f in Fidelity::ALL {
            assert_eq!(scenarios.iter().filter(|s| s.config.fidelity == f).count(), 2);
            assert!(scenarios.iter().any(|s| s.label.contains(f.name())), "label axis tag");
        }
        // Scenario specs carry the profile through the conf round trip.
        let back = ScenarioSpec::from_value(&scenarios[0].to_value()).unwrap();
        assert_eq!(back.config.fidelity, scenarios[0].config.fidelity);
        // Bad names are rejected, scalars too.
        assert!(CampaignConfig::from_yaml("fidelities: [hd]\n").is_err());
        assert!(CampaignConfig::from_yaml("fidelities: fast\n").is_err());
        // The base `fidelity:` key seeds an unlisted axis.
        let cfg = CampaignConfig::from_yaml("fidelity: lowres\nbatches: [1, 2]\n").unwrap();
        assert!(cfg.scenarios().iter().all(|s| s.config.fidelity == Fidelity::Lowres));
    }

    #[test]
    fn objective_and_drift_axes_expand_and_roundtrip() {
        let cfg = CampaignConfig::from_yaml(
            "name: stress\nsamples: 8\nobjectives: [rgb, ciede2000]\ndrifts: [none, wb+gain]\n",
        )
        .unwrap();
        assert_eq!(cfg.objectives, vec![Objective::Rgb, Objective::Ciede2000]);
        assert_eq!(cfg.drifts, vec![None, Some(DriftSpec::WB_GAIN)]);
        let scenarios = cfg.scenarios();
        assert_eq!(scenarios.len(), 4);
        // Axis tags appear only when the axis is actually swept.
        assert!(scenarios.iter().any(|s| s.label.contains("/ciede2000")));
        assert!(scenarios.iter().any(|s| s.label.contains("/no-drift")));
        assert!(scenarios.iter().any(|s| s.label.contains("/drift-wb+gain")));
        // Specs carry the new fields through the conf round trip.
        for s in &scenarios {
            let back = ScenarioSpec::from_value(&s.to_value()).unwrap();
            assert_eq!(back.config.objective, s.config.objective);
            assert_eq!(back.config.drift, s.config.drift);
        }
        // An unswept campaign keeps the historical label shape.
        let plain = CampaignConfig::from_yaml("samples: 8\nbatches: [1, 2]\n").unwrap();
        assert!(plain.scenarios().iter().all(|s| !s.label.contains("drift")));
        // Bad entries and scalar axes are rejected.
        assert!(CampaignConfig::from_yaml("objectives: [vibes]\n").is_err());
        assert!(CampaignConfig::from_yaml("drifts: [vibes]\n").is_err());
        assert!(CampaignConfig::from_yaml("objectives: rgb\n").is_err());
        assert!(CampaignConfig::from_yaml("drifts: none\n").is_err());
    }

    #[test]
    fn matrix_expands_the_product() {
        let cfg = CampaignConfig::from_yaml(
            "name: m\nsamples: 8\nsolvers: [genetic, random]\nseeds: [1, 2, 3]\nbatches: [1, 4]\n",
        )
        .unwrap();
        let scenarios = cfg.scenarios();
        assert_eq!(scenarios.len(), 2 * 3 * 2);
        assert!(scenarios.iter().all(|s| s.config.sample_budget == 8));
        // Labels are unique.
        let labels: std::collections::HashSet<&str> =
            scenarios.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels.len(), scenarios.len());
    }

    #[test]
    fn seed_count_derives_from_master_seed() {
        let a = CampaignConfig::from_yaml("seed: 5\nseeds: 4\n").unwrap();
        let b = CampaignConfig::from_yaml("seed: 5\nseeds: 4\n").unwrap();
        let c = CampaignConfig::from_yaml("seed: 6\nseeds: 4\n").unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_ne!(a.seeds, c.seeds);
        assert_eq!(a.seeds.len(), 4);
    }

    #[test]
    fn empty_matrix_is_one_scenario() {
        let cfg = CampaignConfig::from_yaml("samples: 16\n").unwrap();
        assert_eq!(cfg.scenarios().len(), 1);
        assert_eq!(cfg.scenarios()[0].mode, RunMode::Single);
    }

    #[test]
    fn bad_axis_entries_are_rejected() {
        assert!(CampaignConfig::from_yaml("solvers: [quantum]\n").is_err());
        assert!(CampaignConfig::from_yaml("fault_rates: [2.0]\n").is_err());
        assert!(CampaignConfig::from_yaml("targets: [[1, 2]]\n").is_err());
        assert!(CampaignConfig::from_yaml("seeds: 0\n").is_err());
        assert!(CampaignConfig::from_yaml("n_ot2: [0]\n").is_err());
    }
}
